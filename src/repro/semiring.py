"""Commutative semirings for K-relation annotations.

The paper's algebras compute *set* (boolean) semantics, but every
operation they use — join, union, projection, recursion — generalizes
verbatim to relations annotated over a commutative semiring
``(K, ⊕, ⊗, 0, 1)`` (Green–Karvounarakis–Tannen K-relations; see
PAPERS.md, *Codd's Theorem for Databases over Semirings*).  A joined
row multiplies its inputs' annotations, alternative derivations add,
and an absent row carries ``0``.  This module is the pluggable
annotation algebra the datalog engines and the service tier thread
through: each :class:`Semiring` packages the carrier operations plus
the wire encoding the line protocol and WAL use.

Shipped semirings:

``bool``
    Today's set semantics.  The default, and the zero-overhead fast
    path: boolean views never construct annotation maps at all.
``naturals``
    Bag semantics — the annotation of a derived row counts its
    derivation trees, unifying with the counting-maintenance weights
    (the dbsp circuit's Z-set weights are exactly this carrier embedded
    in ℤ).  **Convergence condition:** recursive programs only have a
    finite annotation when the data is derivation-finite (e.g. acyclic
    graphs under transitive closure); a cyclic derivation space makes
    the fixpoint diverge and evaluation raises
    :class:`~repro.robustness.BudgetExceeded` at the round cap.
``tropical``
    Min-plus: ``⊕ = min``, ``⊗ = +``, ``0 = +∞``, ``1 = 0``.  Weighted
    recursion (shortest derivation cost).  **Convergence condition:**
    with non-negative weights the per-row minimum is reached after at
    most ``|rows|`` rounds (Bellman–Ford); the wire parser therefore
    rejects negative weights.
``why``
    Why-provenance: each annotation is a set of *witnesses*, each
    witness the set of base facts jointly sufficient for the
    derivation.  ``⊕ = ∪``, ``⊗ = pairwise ∪``, ``0 = ∅``,
    ``1 = {∅}``.  The carrier over a finite database is finite, so
    recursive fixpoints always converge (unlike full provenance
    polynomials ℕ[X]).  Served to clients through the ``explain``
    lines of the ``query`` verb.

Annotations on EDB inserts are *absolute*, not increments: re-applying
``+view edge(a, b) @ 2`` is idempotent (it sets the multiplicity to 2).
This is load-bearing — WAL replay after a crash may re-apply a suffix
of already-checkpointed updates, and replay must converge.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, Optional, Tuple

__all__ = [
    "Semiring",
    "BooleanSemiring",
    "NaturalsSemiring",
    "TropicalSemiring",
    "WhyProvenanceSemiring",
    "SEMIRINGS",
    "get_semiring",
    "register_semiring",
    "canonical_annotation",
]


class Semiring:
    """A commutative semiring ``(K, ⊕, ⊗, 0, 1)`` plus wire codecs.

    Subclasses define the carrier operations; the laws the property
    suite (``tests/property/test_semiring_laws.py``) holds every
    implementation to are: ``⊕`` and ``⊗`` associative and commutative,
    ``0`` the ``⊕``-identity and ``⊗``-annihilator, ``1`` the
    ``⊗``-identity, and ``⊗`` distributing over ``⊕``.
    """

    #: Registry key and the value of the ``--semiring`` flags.
    name: str = "abstract"
    #: True when the carrier embeds in a ring of differences (ℤ for the
    #: naturals) so incremental maintenance can propagate weighted
    #: deltas through the circuit; False forces recompute-on-update.
    admits_differences: bool = False
    #: True when ``a ⊕ a = a`` — idempotent semirings reach their
    #: recursive fixpoint regardless of derivation multiplicity.
    idempotent: bool = False

    @property
    def zero(self):
        raise NotImplementedError

    @property
    def one(self):
        raise NotImplementedError

    def add(self, a, b):
        """``a ⊕ b`` — combine alternative derivations."""
        raise NotImplementedError

    def mul(self, a, b):
        """``a ⊗ b`` — combine joint (conjunctive) uses."""
        raise NotImplementedError

    def is_zero(self, a) -> bool:
        """Is ``a`` the absent-row annotation?  (Maps are kept
        zero-free: a stored row always has a non-zero annotation.)"""
        return a == self.zero

    def from_edb(self, predicate: str, row: Tuple) -> object:
        """The default annotation of a base fact inserted without an
        explicit one.  ``1`` for most semirings; why-provenance mints
        the singleton witness naming the fact itself."""
        return self.one

    # -- wire encoding -------------------------------------------------------

    def parse(self, text: str):
        """Decode a client-supplied ``@ <annotation>`` suffix.

        Raises :class:`ValueError` on malformed input or when the
        semiring's annotations are derived, not supplied (``why``).
        """
        raise NotImplementedError

    def format(self, a) -> str:
        """Canonical wire text of an annotation (``explain`` lines,
        WAL records, checkpoint documents)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Semiring {self.name}>"


class BooleanSemiring(Semiring):
    """Set semantics: ``({False, True}, ∨, ∧, False, True)``."""

    name = "bool"
    idempotent = True

    @property
    def zero(self):
        return False

    @property
    def one(self):
        return True

    def add(self, a, b):
        return a or b

    def mul(self, a, b):
        return a and b

    def parse(self, text: str):
        text = text.strip().lower()
        if text in ("true", "1"):
            return True
        if text in ("false", "0"):
            return False
        raise ValueError(f"not a boolean annotation: {text!r}")

    def format(self, a) -> str:
        return "true" if a else "false"


class NaturalsSemiring(Semiring):
    """Bag semantics: ``(ℕ, +, ×, 0, 1)`` — derivation counting."""

    name = "naturals"
    admits_differences = True

    @property
    def zero(self):
        return 0

    @property
    def one(self):
        return 1

    def add(self, a, b):
        return a + b

    def mul(self, a, b):
        return a * b

    def parse(self, text: str):
        try:
            value = int(text.strip())
        except ValueError:
            raise ValueError(f"not a natural-number annotation: {text!r}")
        if value < 0:
            raise ValueError(f"natural annotations must be >= 0: {text!r}")
        return value

    def format(self, a) -> str:
        return str(int(a))


class TropicalSemiring(Semiring):
    """Min-plus: ``(ℝ≥0 ∪ {∞}, min, +, ∞, 0)`` — shortest derivation."""

    name = "tropical"
    idempotent = True

    @property
    def zero(self):
        return math.inf

    @property
    def one(self):
        return 0

    def add(self, a, b):
        return a if a <= b else b

    def mul(self, a, b):
        return a + b

    def parse(self, text: str):
        text = text.strip()
        if text in ("inf", "infinity"):
            return math.inf
        try:
            value = int(text)
        except ValueError:
            try:
                value = float(text)
            except ValueError:
                raise ValueError(f"not a tropical annotation: {text!r}")
        if value < 0:
            # The documented convergence condition: non-negative weights
            # make the recursive min-plus fixpoint Bellman-Ford-finite.
            raise ValueError(
                f"tropical annotations must be >= 0 (convergence): {text!r}"
            )
        if isinstance(value, float) and value.is_integer():
            # Normalize integral floats so parse(format(a)) is a fixed
            # point — "3.0" and "3" must store the same carrier value,
            # or WAL replay would restore a fingerprint-divergent
            # database.
            value = int(value)
        return value

    def format(self, a) -> str:
        if a == math.inf:
            return "inf"
        if isinstance(a, float) and a.is_integer():
            return str(int(a))
        return str(a)


#: A why-provenance annotation: a set of witnesses, each witness a set
#: of base-fact tokens (the canonical ``pred(args)`` text).
Witnesses = FrozenSet[FrozenSet[str]]


class WhyProvenanceSemiring(Semiring):
    """Why-provenance: sets of witness sets of base facts.

    ``a ⊕ b = a ∪ b`` (either derivation works); ``a ⊗ b`` unions each
    pair of witnesses (a joint derivation needs both supports).  The
    absorbing ``0 = ∅`` (no way to derive) and ``1 = {∅}`` (derivable
    from nothing).  Finite carrier over a finite EDB ⇒ recursive
    fixpoints converge.
    """

    name = "why"
    idempotent = True

    @property
    def zero(self) -> Witnesses:
        return frozenset()

    @property
    def one(self) -> Witnesses:
        return frozenset({frozenset()})

    def add(self, a: Witnesses, b: Witnesses) -> Witnesses:
        return a | b

    def mul(self, a: Witnesses, b: Witnesses) -> Witnesses:
        return frozenset(x | y for x in a for y in b)

    def from_edb(self, predicate: str, row: Tuple) -> Witnesses:
        from .relations.values import format_value

        token = f"{predicate}({', '.join(format_value(v) for v in row)})"
        return frozenset({frozenset({token})})

    def parse(self, text: str):
        raise ValueError(
            "why-provenance annotations are derived from the base facts, "
            "not supplied on inserts"
        )

    def format(self, a: Witnesses) -> str:
        witnesses = sorted("{" + ", ".join(sorted(w)) + "}" for w in a)
        return "{" + ", ".join(witnesses) + "}"


#: Name → instance registry backing the ``--semiring`` flags.  Third
#: parties extend it with :func:`register_semiring`; the laws property
#: suite parametrizes over this dict, so every registered semiring is
#: automatically held to the axioms (and CI fails when a new
#: implementation lacks a laws-suite strategy registration).
SEMIRINGS: Dict[str, Semiring] = {}


def register_semiring(semiring: Semiring) -> Semiring:
    """Add a semiring to the registry (returns it, decorator-style)."""
    if not semiring.name or semiring.name == "abstract":
        raise ValueError("semiring must define a concrete name")
    SEMIRINGS[semiring.name] = semiring
    return semiring


register_semiring(BooleanSemiring())
register_semiring(NaturalsSemiring())
register_semiring(TropicalSemiring())
register_semiring(WhyProvenanceSemiring())


def get_semiring(name: str) -> Semiring:
    """Look up a registered semiring by name (``ValueError`` on miss)."""
    try:
        return SEMIRINGS[name]
    except KeyError:
        known = ", ".join(sorted(SEMIRINGS))
        raise ValueError(f"unknown semiring {name!r} (known: {known})")


def canonical_annotation(value) -> str:
    """A deterministic text form of any carrier value, for content
    hashing (``Database.fingerprint``).  ``repr`` is unstable for
    frozensets (iteration order varies per process), so set-like
    carriers are rendered sorted and recursively."""
    if isinstance(value, (frozenset, set)):
        return "{" + ",".join(sorted(canonical_annotation(v) for v in value)) + "}"
    return repr(value)
