"""Definitions, programs, queries, and dialect validation (Section 3.2).

An ``algebra=`` program is a collection of definitions

    ``f_i(x_1, ..., x_n) = exp_i(x_1, ..., x_n)``

— one equation per new operation name, input/output of set type only, and
``exp_i`` an algebra expression over the parameters, the database
relations, and (this is the extension) the defined names themselves.

Four dialects:

=================  ==========================================================
``ALGEBRA``        no IFP, definitions must be non-recursive (pure sugar)
``IFP_ALGEBRA``    IFP allowed, definitions non-recursive
``ALGEBRA_EQ``     recursive definitions, no IFP        (``algebra=``)
``IFP_ALGEBRA_EQ`` recursive definitions and IFP        (``IFP-algebra=``)
=================  ==========================================================

Theorem 3.5 / Corollary 3.6 prove ``IFP-algebra ⊂ algebra= =
IFP-algebra=``; the benchmarks exercise those inclusions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from .expressions import Call, Expr, Ifp, RelVar, called_names, free_rel_vars, substitute, walk

__all__ = [
    "Dialect",
    "Definition",
    "AlgebraProgram",
    "AlgebraQuery",
    "ProgramError",
    "ExpansionLimitExceeded",
]


class Dialect(enum.Enum):
    """The four language dialects of Section 3."""
    ALGEBRA = "algebra"
    IFP_ALGEBRA = "IFP-algebra"
    ALGEBRA_EQ = "algebra="
    IFP_ALGEBRA_EQ = "IFP-algebra="

    @property
    def allows_ifp(self) -> bool:
        """Does this dialect include the IFP operator?"""
        return self in (Dialect.IFP_ALGEBRA, Dialect.IFP_ALGEBRA_EQ)

    @property
    def allows_recursion(self) -> bool:
        """Does this dialect allow recursive definitions?"""
        return self in (Dialect.ALGEBRA_EQ, Dialect.IFP_ALGEBRA_EQ)


class ProgramError(ValueError):
    """A structurally invalid algebra program."""


class ExpansionLimitExceeded(ProgramError):
    """Inlining parameterised recursive calls did not terminate."""


@dataclass(frozen=True)
class Definition:
    """One equation ``name(params...) = body``.

    The paper's restriction: "for each new operation name f_i we have only
    one equation f_i(x1,...,xn) = exp(x1,...,xn), where exp is an algebraic
    expression that contains no variables other than x1,...,xn" — enforced
    at program construction (free names of the body must be parameters,
    database relations, or defined names).
    """

    name: str
    params: Tuple[str, ...]
    body: Expr

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))
        if len(set(self.params)) != len(self.params):
            raise ProgramError(f"duplicate parameters in {self.name}")
        if self.name in self.params:
            raise ProgramError(f"{self.name}: definition name shadows a parameter")

    @property
    def arity(self) -> int:
        """Number of parameters."""
        return len(self.params)

    def __repr__(self) -> str:
        header = self.name
        if self.params:
            header += "(" + ", ".join(self.params) + ")"
        return f"{header} = {self.body!r}"


@dataclass(frozen=True)
class AlgebraProgram:
    """A set of definitions plus the database relation names they may use."""

    definitions: Tuple[Definition, ...]
    database_relations: FrozenSet[str] = frozenset()
    dialect: Dialect = Dialect.IFP_ALGEBRA_EQ
    name: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "definitions", tuple(self.definitions))
        object.__setattr__(
            self, "database_relations", frozenset(self.database_relations)
        )
        self._validate()

    @classmethod
    def of(
        cls,
        *definitions: Definition,
        database_relations: Sequence[str] = (),
        dialect: Dialect = Dialect.IFP_ALGEBRA_EQ,
        name: Optional[str] = None,
    ) -> "AlgebraProgram":
        """Build a program from definitions."""
        return cls(tuple(definitions), frozenset(database_relations), dialect, name)

    # -- validation -----------------------------------------------------------

    def _validate(self) -> None:
        seen: Set[str] = set()
        for definition in self.definitions:
            if definition.name in seen:
                raise ProgramError(f"multiple equations for {definition.name}")
            if definition.name in self.database_relations:
                raise ProgramError(
                    f"{definition.name} is both defined and a database relation"
                )
            seen.add(definition.name)

        arities = {d.name: d.arity for d in self.definitions}
        for definition in self.definitions:
            allowed = set(definition.params) | self.database_relations
            loose = free_rel_vars(definition.body) - allowed
            if loose:
                raise ProgramError(
                    f"{definition.name}: free relation variables {sorted(loose)} "
                    f"are neither parameters nor database relations"
                )
            for node in walk(definition.body):
                if isinstance(node, Call):
                    if node.name not in arities:
                        raise ProgramError(
                            f"{definition.name}: call to undefined operation "
                            f"{node.name!r}"
                        )
                    if len(node.args) != arities[node.name]:
                        raise ProgramError(
                            f"{definition.name}: {node.name} called with "
                            f"{len(node.args)} arguments, expected {arities[node.name]}"
                        )
                if isinstance(node, Ifp) and not self.dialect.allows_ifp:
                    raise ProgramError(
                        f"{definition.name}: IFP is not part of {self.dialect.value}"
                    )
        if not self.dialect.allows_recursion and self.is_recursive():
            raise ProgramError(
                f"recursive definitions are not part of {self.dialect.value}"
            )

    # -- structure --------------------------------------------------------------

    def definition(self, name: str) -> Definition:
        """Look up a definition by name."""
        for definition in self.definitions:
            if definition.name == name:
                return definition
        raise KeyError(f"no definition named {name!r}")

    def defined_names(self) -> FrozenSet[str]:
        """Names of all defined operations."""
        return frozenset(d.name for d in self.definitions)

    def call_graph(self) -> nx.DiGraph:
        """Edge ``f → g`` when the body of ``f`` calls ``g``."""
        graph = nx.DiGraph()
        for definition in self.definitions:
            graph.add_node(definition.name)
            for callee in called_names(definition.body):
                graph.add_edge(definition.name, callee)
        return graph

    def is_recursive(self) -> bool:
        """Does the call graph contain a cycle?"""
        graph = self.call_graph()
        if any(graph.has_edge(node, node) for node in graph):
            return True
        return any(len(scc) > 1 for scc in nx.strongly_connected_components(graph))

    def recursive_names(self) -> FrozenSet[str]:
        """Definitions involved in some call-graph cycle."""
        graph = self.call_graph()
        cyclic: Set[str] = set()
        for component in nx.strongly_connected_components(graph):
            if len(component) > 1:
                cyclic |= component
            else:
                node = next(iter(component))
                if graph.has_edge(node, node):
                    cyclic.add(node)
        return frozenset(cyclic)

    def uses_ifp(self) -> bool:
        """Does any definition body contain an IFP?"""
        return any(
            isinstance(node, Ifp)
            for definition in self.definitions
            for node in walk(definition.body)
        )

    # -- inlining -----------------------------------------------------------------

    def inline_nonrecursive(self, expr: Expr) -> Expr:
        """Expand every call to a *non-recursive* definition in ``expr``.

        For the plain ``algebra``/``IFP-algebra`` dialects this realises the
        paper's observation that non-recursive definitions are syntactic
        sugar: the result contains no calls.
        """
        recursive = self.recursive_names()

        def expand(node: Expr, depth: int) -> Expr:
            if depth > 500:
                raise ExpansionLimitExceeded("non-recursive inlining looped")
            if isinstance(node, Call) and node.name not in recursive:
                definition = self.definition(node.name)
                args = tuple(expand(arg, depth + 1) for arg in node.args)
                mapping = dict(zip(definition.params, args))
                return expand(substitute(definition.body, mapping), depth + 1)
            if isinstance(node, Call):
                return Call(node.name, tuple(expand(a, depth + 1) for a in node.args))
            from .expressions import Diff, Map, Product, Select, Union

            if isinstance(node, Union):
                return Union(expand(node.left, depth), expand(node.right, depth))
            if isinstance(node, Diff):
                return Diff(expand(node.left, depth), expand(node.right, depth))
            if isinstance(node, Product):
                return Product(expand(node.left, depth), expand(node.right, depth))
            if isinstance(node, Select):
                return Select(expand(node.child, depth), node.test)
            if isinstance(node, Map):
                return Map(expand(node.child, depth), node.func)
            if isinstance(node, Ifp):
                return Ifp(node.param, expand(node.body, depth))
            return node

        return expand(expr, 0)

    def to_constant_system(self, max_expansions: int = 2_000) -> "AlgebraProgram":
        """Normalise to a system of 0-ary recursive definitions.

        Parameterised calls are specialised per call site (the paper's
        Proposition 5.4 builds one predicate per call expression).  The
        result has only 0-ary recursive constants, which is the form the
        native three-valued evaluator and the translators consume.  Raises
        :class:`ExpansionLimitExceeded` when specialisation does not close
        off (a genuinely parameter-recursive program).
        """
        recursive = self.recursive_names()
        for name in recursive:
            if self.definition(name).arity > 0:
                return self._specialise(max_expansions)
        # Only 0-ary recursion: inline all non-recursive calls.
        new_defs = []
        for definition in self.definitions:
            if definition.name in recursive or definition.arity == 0:
                new_defs.append(
                    Definition(
                        definition.name,
                        definition.params,
                        self.inline_nonrecursive(definition.body)
                        if definition.name not in recursive
                        else self._inline_nonrec_only(definition.body, recursive),
                    )
                )
        kept = [d for d in new_defs if d.arity == 0]
        return AlgebraProgram(
            tuple(kept), self.database_relations, self.dialect, self.name
        )

    def _inline_nonrec_only(self, expr: Expr, recursive: FrozenSet[str]) -> Expr:
        return self.inline_nonrecursive(expr)

    def _specialise(self, max_expansions: int) -> "AlgebraProgram":
        raise ExpansionLimitExceeded(
            "parameter-recursive definitions cannot be normalised to a "
            "finite constant system; see DESIGN.md (call-site "
            "specialisation is bounded to recursion through 0-ary names)"
        )

    def __repr__(self) -> str:
        label = self.name or "program"
        return f"<AlgebraProgram {label}: {len(self.definitions)} definitions>"

    def pretty(self) -> str:
        """Render the definitions, one per line."""
        return "\n".join(repr(d) for d in self.definitions)


@dataclass(frozen=True)
class AlgebraQuery:
    """A program plus a result: either a defined constant's name or an
    expression over the program (Section 3: "a query is represented by a
    constant Q defined using an equation Q = exp")."""

    program: AlgebraProgram
    result: str

    def __post_init__(self) -> None:
        self.program.definition(self.result)  # must exist

    def __repr__(self) -> str:
        return f"<AlgebraQuery {self.result} over {self.program!r}>"
