"""Stable-model semantics for ``algebra=`` programs (Section 7).

    "The results of this work can be easily adjusted to capture other
    semantics for negation, e.g. the well-founded or the stable-model
    semantics, by modifying the definition of the initial valid model
    accordingly."

This module performs that adjustment for the stable-model semantics, in
both styles:

* **native** (:func:`stable_set_models`) — a total membership assignment
  ``M`` for the defined sets is *stable* when it reproduces itself as the
  least fixpoint of the equations with all negative (subtracted)
  references answered by ``M`` — the Gelfond–Lifschitz construction
  transplanted onto set equations.  The search space is pruned by the
  valid model (its decided memberships hold in every stable assignment).

* **translated** (:func:`algebra_answers_stable`) — Proposition 5.4
  translation followed by the ground stable-model solver; answers are
  reported as *cautious* (in every stable model) and *brave* (in some).

The two agree (tests); and on programs whose valid model is total, the
unique stable assignment coincides with it — e.g. the WIN game on an
even cycle has two stable assignments (the two alternating colourings)
while the valid model leaves everything undefined.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..relations.relation import Relation
from ..relations.universe import FunctionRegistry, Universe
from ..relations.values import Value
from ..datalog.semantics.stable import TooManyChoiceAtoms, stable_models
from .algebra_to_datalog import translate_program, translation_registry
from .encoding import environment_to_database
from .programs import AlgebraProgram
from .valid_eval import EvalLimits, _System, _eliminate_ifp, valid_evaluate

__all__ = [
    "StableSetModel",
    "StableAnswers",
    "stable_set_models",
    "algebra_answers_stable",
]


@dataclass(frozen=True)
class StableSetModel:
    """One stable (total) membership assignment for the defined sets."""

    members: Mapping[str, FrozenSet[Value]]

    def relation(self, name: str) -> Relation:
        """One defined set of this model, as a relation."""
        return Relation(self.members[name], name=name)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}:{len(values)}" for name, values in sorted(self.members.items())
        )
        return f"<StableSetModel {inner}>"


def stable_set_models(
    program: AlgebraProgram,
    environment: Mapping[str, Relation],
    registry: Optional[FunctionRegistry] = None,
    universe: Optional[Universe] = None,
    limits: EvalLimits = EvalLimits(),
    max_choice_memberships: int = 20,
    max_ifp_iterations: int = 10_000,
) -> List[StableSetModel]:
    """All stable membership assignments, natively on the set equations.

    The valid model prunes the search: decided memberships are fixed, and
    only the undefined ones are guessed (Gelfond–Lifschitz transplanted).
    Raises :class:`TooManyChoiceAtoms` past ``max_choice_memberships``
    undefined memberships.
    """
    system_program = program.to_constant_system()
    recursive = system_program.recursive_names()
    equations = {
        definition.name: _eliminate_ifp(
            definition.body,
            recursive,
            environment,
            system_program,
            registry,
            max_ifp_iterations,
        )
        for definition in system_program.definitions
    }
    system = _System(equations, environment, registry, limits, universe)

    valid = valid_evaluate(
        program, environment, registry=registry, universe=universe, limits=limits
    )
    choices: List[Tuple[str, Value]] = [
        (name, value)
        for name in sorted(valid.undefined)
        for value in sorted(valid.undefined[name], key=repr)
    ]
    if len(choices) > max_choice_memberships:
        raise TooManyChoiceAtoms(
            f"{len(choices)} undefined memberships exceed the bound "
            f"{max_choice_memberships}"
        )

    models: List[StableSetModel] = []
    seen: set = set()
    for assignment in itertools.product((False, True), repeat=len(choices)):
        guessed_true = {
            choice for choice, flag in zip(choices, assignment) if flag
        }

        def oracle(name: str, value: Value) -> bool:
            """May we assume value ∉ name?  Read the candidate total model."""
            if value in valid.true[name]:
                return False
            if (name, value) in guessed_true:
                return False
            return True

        candidate = system.derive(oracle)
        frozen = tuple(sorted((n, frozenset(v)) for n, v in candidate.items()))
        if frozen in seen:
            continue
        # Gelfond–Lifschitz check: the guess must reproduce itself.
        reproduced = all(
            (value in candidate[name]) == ((name, value) in guessed_true)
            for name, value in choices
        ) and all(valid.true[name] <= candidate[name] for name in candidate)
        if not reproduced:
            continue
        # Exact stability: re-derive against the candidate itself.
        verify = system.derive(
            lambda name, value: value not in candidate[name]
        )
        if verify == candidate:
            seen.add(frozen)
            models.append(
                StableSetModel({n: frozenset(v) for n, v in candidate.items()})
            )
    models.sort(key=lambda m: tuple(sorted((n, tuple(sorted(map(repr, v)))) for n, v in m.members.items())))
    return models


@dataclass
class StableAnswers:
    """Cautious/brave consequences over the stable models."""

    models: int
    cautious: Dict[str, FrozenSet[Value]]
    brave: Dict[str, FrozenSet[Value]]


def algebra_answers_stable(
    program: AlgebraProgram,
    environment: Mapping[str, Relation],
    registry: Optional[FunctionRegistry] = None,
    max_choice_atoms: int = 20,
) -> StableAnswers:
    """Stable-model answers via the Proposition 5.4 translation."""
    registry = registry or translation_registry()
    translation = translate_program(program)
    database = environment_to_database(environment, {})
    for name in program.database_relations:
        if name not in database.predicates():
            database.declare(name)
    from ..datalog.grounding import ground

    ground_program = ground(translation.program, database, registry=registry)
    interpretations = stable_models(ground_program, max_choice_atoms=max_choice_atoms)

    names = list(translation.predicate_of)
    per_model: List[Dict[str, FrozenSet[Value]]] = []
    for interpretation in interpretations:
        model: Dict[str, FrozenSet[Value]] = {}
        for name in names:
            predicate = translation.predicate_of[name]
            model[name] = frozenset(
                row[0]
                for row in interpretation.true_rows(ground_program, predicate)
            )
        per_model.append(model)

    if per_model:
        cautious = {
            name: frozenset.intersection(*(m[name] for m in per_model))
            for name in names
        }
        brave = {
            name: frozenset.union(*(m[name] for m in per_model)) for name in names
        }
    else:
        cautious = {name: frozenset() for name in names}
        brave = {name: frozenset() for name in names}
    return StableAnswers(len(per_model), cautious, brave)
