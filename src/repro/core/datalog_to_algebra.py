"""From deduction to algebra (Section 6, Proposition 6.1).

Every *safe* deductive program has an equivalent ``algebra=`` program:
each predicate ``P_i`` is represented by a set constant; a single
derivation step of its rules is a calculus query, which "can be expressed
by the algebra [5]"; and the constant is defined as the fixed point of the
resulting *simulation function*:

    ``P_i = exp_i(P_1, ..., P_n, R_1, ..., R_m)``

The calculus→algebra step is the classical one: joins are
product-plus-selection, variable bindings become component paths into the
accumulating nested-pair tuple, ``y = f(x̄)`` extends the tuple via MAP,
negative literals subtract the matching sub-join, and the head is
reconstructed with MAP.  We drive it with the same binding-order analysis
the grounder uses, so exactly the safe rules (Definition 4.1) are
translatable — :class:`~repro.datalog.grounding.UnsafeRuleError` is raised
otherwise, matching Proposition 4.2's insistence on safety.

Predicates are encoded as in :mod:`repro.core.encoding`: arity 1 → the
set of member values, arity ≥ 2 → a set of width-n tuples, arity 0 → a
set containing :data:`~repro.core.encoding.UNIT` when true.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..datalog.ast import (
    Comparison,
    Const,
    FuncTerm,
    Literal,
    Program,
    Rule,
    Term,
    Var,
)
from ..datalog.grounding import UnsafeRuleError, binding_order
from .encoding import UNIT
from .expressions import (
    Call,
    Diff,
    Expr,
    Map,
    Product,
    RelVar,
    Select,
    SetConst,
    Union,
)
from .funcs import (
    AndTest,
    Apply,
    Arg,
    Comp,
    CompareTest,
    Lit,
    MkTup,
    ScalarExpr,
    TrueTest,
)
from .programs import AlgebraProgram, Definition, Dialect

__all__ = ["DatalogToAlgebraResult", "datalog_to_algebra", "rule_to_expression"]


Path = Tuple[int, ...]


def _path_expr(path: Path) -> ScalarExpr:
    expr: ScalarExpr = Arg()
    for index in path:
        expr = Comp(expr, index)
    return expr


def _term_to_scalar(term: Term, env: Mapping[Var, Path]) -> ScalarExpr:
    if isinstance(term, Var):
        if term not in env:
            raise UnsafeRuleError(f"variable {term.name} used before being bound")
        return _path_expr(env[term])
    if isinstance(term, Const):
        return Lit(term.value)
    if isinstance(term, FuncTerm):
        args = tuple(_term_to_scalar(arg, env) for arg in term.args)
        if term.name == "tuple":
            return MkTup(args)
        return Apply(term.name, args)
    raise TypeError(f"not a term: {term!r}")


def _conjoin(tests: List) -> object:
    if not tests:
        return TrueTest()
    result = tests[0]
    for test in tests[1:]:
        result = AndTest(result, test)
    return result


class _RuleCompiler:
    """Compile one safe rule body into an algebra expression producing the
    encoded head members."""

    def __init__(self, idb: FrozenSet[str], arities: Mapping[str, int]):
        self.idb = idb
        self.arities = arities

    def _base(self, predicate: str) -> Expr:
        if predicate in self.idb:
            return Call(predicate)
        return RelVar(predicate)

    def compile(self, rule: Rule) -> Expr:
        """The simulation expression for one safe rule."""
        order = binding_order(rule)  # raises UnsafeRuleError when unsafe
        join: Optional[Expr] = None
        # The *frame* mirrors ``join`` minus the negative-literal
        # subtractions.  Subtrahends are built from it rather than from
        # ``join`` so no subexpression is duplicated at both polarities:
        # under three-valued evaluation a repeated subterm loses the
        # classical ``φ ∧ ¬φ = false`` (it is undefined when φ is), which
        # would make valid_evaluate strictly less precise than deduction.
        # Since join ⊆ frame and both share one tuple shape,
        # ``join − {t ∈ frame | cond}`` equals ``join − {t ∈ join | cond}``.
        frame: Optional[Expr] = None
        env: Dict[Var, Path] = {}

        def seed() -> Expr:
            return SetConst(frozenset((UNIT,)))

        def prefix_env() -> None:
            for variable in list(env):
                env[variable] = (1,) + env[variable]

        for kind, payload in order:
            if kind == "match":
                literal: Literal = payload
                predicate = literal.atom.predicate
                arity = len(literal.atom.args)
                base = self._base(predicate)
                if join is None:
                    join = base
                    frame = base
                    root: Path = ()
                else:
                    join = Product(join, base)
                    frame = Product(frame, base)
                    prefix_env()
                    root = (2,)
                for position, arg in enumerate(literal.atom.args):
                    component_path = root + ((position + 1,) if arity >= 2 else ())
                    if isinstance(arg, Var) and arg not in env:
                        env[arg] = component_path
                    else:
                        test = CompareTest(
                            "=",
                            _path_expr(component_path),
                            _term_to_scalar(arg, env),
                        )
                        join = Select(join, test)
                        frame = Select(frame, test)
            elif kind == "assign":
                mode, comparison = payload
                if mode == "assign-left":
                    variable, expr = comparison.left, comparison.right
                else:
                    variable, expr = comparison.right, comparison.left
                scalar = _term_to_scalar(expr, env)
                if join is None:
                    join = seed()
                    frame = join
                extend = MkTup((Arg(), scalar))
                join = Map(join, extend)
                frame = Map(frame, extend)
                prefix_env()
                env[variable] = (2,)
            elif kind == "test":
                comparison = payload
                if join is None:
                    join = seed()
                    frame = join
                test = CompareTest(
                    comparison.op,
                    _term_to_scalar(comparison.left, env),
                    _term_to_scalar(comparison.right, env),
                )
                join = Select(join, test)
                frame = Select(frame, test)
            elif kind == "negtest":
                literal = payload
                predicate = literal.atom.predicate
                arity = len(literal.atom.args)
                base = self._base(predicate)
                if join is None:
                    join = seed()
                    frame = join
                paired = Product(frame, base)
                tests = []
                for position, arg in enumerate(literal.atom.args):
                    component: ScalarExpr = Comp(Arg(), 2)
                    if arity >= 2:
                        component = Comp(component, position + 1)
                    shifted = {v: (1,) + path for v, path in env.items()}
                    tests.append(
                        CompareTest("=", component, _term_to_scalar(arg, shifted))
                    )
                matched = Map(Select(paired, _conjoin(tests)), Comp(Arg(), 1))
                join = Diff(join, matched)
            else:  # pragma: no cover — binding_order only emits these kinds
                raise AssertionError(kind)

        if join is None:
            join = seed()

        # Head reconstruction.
        head_args = rule.head.args
        if len(head_args) == 0:
            return Map(join, Lit(UNIT))
        if len(head_args) == 1:
            return Map(join, _term_to_scalar(head_args[0], env))
        return Map(
            join, MkTup(tuple(_term_to_scalar(arg, env) for arg in head_args))
        )


def rule_to_expression(
    rule: Rule, idb: FrozenSet[str], arities: Mapping[str, int]
) -> Expr:
    """The algebra expression simulating one derivation step of ``rule``."""
    return _RuleCompiler(idb, arities).compile(rule)


@dataclass
class DatalogToAlgebraResult:
    """An ``algebra=`` program equivalent to the source deductive program.

    Defined set names coincide with IDB predicate names; database relation
    names coincide with EDB predicate names (encode a
    :class:`~repro.datalog.database.Database` with
    :func:`~repro.core.encoding.database_to_environment`).
    """

    program: AlgebraProgram
    arities: Dict[str, int]

    def decode_rows(self, relation) -> FrozenSet[Tuple]:
        """Decode an answer relation back into predicate rows."""
        from .encoding import relation_rows

        return relation_rows(relation, self.arities.get(relation.name, 1))


def datalog_to_algebra(program: Program) -> DatalogToAlgebraResult:
    """Proposition 6.1: compile a safe deductive program to ``algebra=``.

    Each IDB predicate becomes a recursive set constant whose body is the
    union of its rules' simulation expressions.  Raises
    :class:`~repro.datalog.grounding.UnsafeRuleError` on unsafe rules.
    """
    idb = program.idb_predicates()
    arities = program.arities()
    compiler = _RuleCompiler(idb, arities)

    definitions: List[Definition] = []
    for predicate in sorted(idb):
        alternatives = [compiler.compile(rule) for rule in program.rules_for(predicate)]
        body = alternatives[0]
        for alternative in alternatives[1:]:
            body = Union(body, alternative)
        definitions.append(Definition(predicate, (), body))

    algebra_program = AlgebraProgram.of(
        *definitions,
        database_relations=sorted(program.edb_predicates()),
        dialect=Dialect.ALGEBRA_EQ,
        name=(program.name or "program") + "-as-algebra",
    )
    return DatalogToAlgebraResult(algebra_program, dict(arities))
