"""Algebra expression syntax (Section 3).

An expression denotes a set.  The operators are exactly the paper's:
union, difference, cartesian product, selection, MAP, the inflationary
fixed point ``IFP``, plus:

* ``RelVar(name)`` — a reference to a database relation or to a
  parameter of the enclosing definition;
* ``SetConst(values)`` — a set constant such as ``{0}`` ("since {0} is a
  constant of the algebra", Example 3);
* ``Call(name, args)`` — application of a *defined* operation, the
  ``algebra=`` extension of Section 3.2.

Expressions are immutable; helpers compute free relation variables,
called operation names, and perform (capture-avoiding) substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple

from ..relations.values import Value, format_value, is_value
from .funcs import Comp, Arg, ScalarExpr, Test, TrueTest, component

__all__ = [
    "Expr",
    "RelVar",
    "SetConst",
    "Union",
    "Diff",
    "Product",
    "Select",
    "Map",
    "Ifp",
    "Call",
    "walk",
    "free_rel_vars",
    "called_names",
    "substitute",
    "rel",
    "setconst",
    "empty",
    "union",
    "diff",
    "intersect",
    "product",
    "select",
    "map_",
    "project",
    "ifp",
    "call",
]


class Expr:
    """Base class for algebra expressions."""

    __slots__ = ()

    # Operator sugar for building expressions fluently.
    def __or__(self, other: "Expr") -> "Union":
        return Union(self, other)

    def __sub__(self, other: "Expr") -> "Diff":
        return Diff(self, other)

    def __mul__(self, other: "Expr") -> "Product":
        return Product(self, other)


@dataclass(frozen=True, slots=True)
class RelVar(Expr):
    """A named relation: a database relation or a definition parameter."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("relation variable must be named")

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class SetConst(Expr):
    """A set constant, e.g. ``{a}`` or ``{0}`` (EMPTY is ``SetConst(())``)."""

    values: FrozenSet[Value]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", frozenset(self.values))
        for value in self.values:
            if not is_value(value):
                raise TypeError(f"not a value: {value!r}")

    def __repr__(self) -> str:
        from ..relations.values import sorted_values

        return "{" + ", ".join(format_value(v) for v in sorted_values(self.values)) + "}"


@dataclass(frozen=True, slots=True)
class Union(Expr):
    """Set union ``left ∪ right``."""
    left: Expr
    right: Expr

    def __repr__(self) -> str:
        return f"({self.left!r} ∪ {self.right!r})"


@dataclass(frozen=True, slots=True)
class Diff(Expr):
    """Set difference ``left − right`` (the negative operator)."""
    left: Expr
    right: Expr

    def __repr__(self) -> str:
        return f"({self.left!r} − {self.right!r})"


@dataclass(frozen=True, slots=True)
class Product(Expr):
    """Cartesian product ``left × right`` (members become pairs)."""
    left: Expr
    right: Expr

    def __repr__(self) -> str:
        return f"({self.left!r} × {self.right!r})"


@dataclass(frozen=True, slots=True)
class Select(Expr):
    """Selection ``σ_test(child)``."""
    child: Expr
    test: Test

    def __repr__(self) -> str:
        return f"σ[{self.test!r}]({self.child!r})"


@dataclass(frozen=True, slots=True)
class Map(Expr):
    """Restructuring ``MAP_func(child)``."""
    child: Expr
    func: ScalarExpr

    def __repr__(self) -> str:
        return f"MAP[{self.func!r}]({self.child!r})"


@dataclass(frozen=True, slots=True)
class Ifp(Expr):
    """``IFP_exp``: the inflationary fixed point of ``λ param. body``.

    Starting from the empty set, ``body`` is applied repeatedly with
    ``param`` bound to the accumulated result (Section 3.1).
    """

    param: str
    body: Expr

    def __repr__(self) -> str:
        return f"IFP[{self.param}. {self.body!r}]"


@dataclass(frozen=True, slots=True)
class Call(Expr):
    """Application of a defined operation (``algebra=``, Section 3.2).

    A recursive set constant like ``WIN`` is a 0-ary call ``Call('WIN')``.
    """

    name: str
    args: Tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    def __repr__(self) -> str:
        if not self.args:
            return self.name
        inner = ", ".join(repr(arg) for arg in self.args)
        return f"{self.name}({inner})"


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and all subexpressions, pre-order."""
    yield expr
    if isinstance(expr, (Union, Diff, Product)):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, (Select, Map)):
        yield from walk(expr.child)
    elif isinstance(expr, Ifp):
        yield from walk(expr.body)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk(arg)


def free_rel_vars(expr: Expr) -> FrozenSet[str]:
    """Relation-variable names free in ``expr`` (Ifp binds its parameter)."""
    if isinstance(expr, RelVar):
        return frozenset((expr.name,))
    if isinstance(expr, SetConst):
        return frozenset()
    if isinstance(expr, (Union, Diff, Product)):
        return free_rel_vars(expr.left) | free_rel_vars(expr.right)
    if isinstance(expr, (Select, Map)):
        return free_rel_vars(expr.child)
    if isinstance(expr, Ifp):
        return free_rel_vars(expr.body) - {expr.param}
    if isinstance(expr, Call):
        result: FrozenSet[str] = frozenset()
        for arg in expr.args:
            result |= free_rel_vars(arg)
        return result
    raise TypeError(f"not an expression: {expr!r}")


def called_names(expr: Expr) -> FrozenSet[str]:
    """Names of defined operations applied anywhere in ``expr``."""
    return frozenset(node.name for node in walk(expr) if isinstance(node, Call))


def substitute(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace free relation variables by expressions (capture-avoiding:
    an ``Ifp`` parameter shadows any mapping entry of the same name)."""
    if isinstance(expr, RelVar):
        return mapping.get(expr.name, expr)
    if isinstance(expr, SetConst):
        return expr
    if isinstance(expr, Union):
        return Union(substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, Diff):
        return Diff(substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, Product):
        return Product(substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, Select):
        return Select(substitute(expr.child, mapping), expr.test)
    if isinstance(expr, Map):
        return Map(substitute(expr.child, mapping), expr.func)
    if isinstance(expr, Ifp):
        inner = {name: value for name, value in mapping.items() if name != expr.param}
        return Ifp(expr.param, substitute(expr.body, inner))
    if isinstance(expr, Call):
        return Call(expr.name, tuple(substitute(arg, mapping) for arg in expr.args))
    raise TypeError(f"not an expression: {expr!r}")


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


def rel(name: str) -> RelVar:
    """A relation variable reference."""
    return RelVar(name)


def setconst(*values: Value) -> SetConst:
    """A set constant from its members."""
    return SetConst(frozenset(values))


def empty() -> SetConst:
    """EMPTY."""
    return SetConst(frozenset())


def union(left: Expr, right: Expr) -> Union:
    """Build ``left ∪ right``."""
    return Union(left, right)


def diff(left: Expr, right: Expr) -> Diff:
    """Build ``left − right``."""
    return Diff(left, right)


def intersect(left: Expr, right: Expr) -> Diff:
    """Example 3's derived ``∩``: ``x ∩ y = x − (x − y)``."""
    return Diff(left, Diff(left, right))


def product(left: Expr, right: Expr) -> Product:
    """Build ``left × right``."""
    return Product(left, right)


def select(child: Expr, test: Test) -> Select:
    """Build ``σ_test(child)``."""
    return Select(child, test)


def map_(child: Expr, func: ScalarExpr) -> Map:
    """Build ``MAP_func(child)``."""
    return Map(child, func)


def project(child: Expr, index: int) -> Map:
    """``π_i`` — the paper's shorthand ``MAP_{x.i}``."""
    return Map(child, component(index))


def ifp(param: str, body: Expr) -> Ifp:
    """Build ``IFP`` of ``λ param. body``."""
    return Ifp(param, body)


def call(name: str, *args: Expr) -> Call:
    """Apply a defined operation."""
    return Call(name, tuple(args))
