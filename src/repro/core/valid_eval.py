"""Native three-valued evaluation of ``algebra=`` programs.

The semantics of a recursive program ``{S_i = exp_i(...)}`` is the valid
model of its specification (Section 3.2): membership facts are derived by
the Section 2.2 valid computation, where the subtraction operator "performs
inversion of membership" — a membership may be used *negatively* (inside
the right operand of a ``−``) only once it is certainly false.

This module realises that computation directly on the set equations,
without translating to a deductive program:

1. **Candidate universe** — an inflationary over-approximation of every
   (sub)expression's possible members, obtained by ignoring subtraction.
   Everything outside it is certainly false in every reading.
2. **Polarity-split derivation** — ``holds(v, exp, sign)`` evaluates
   membership where system-set references at *positive* polarity read the
   current derivation state and references at *negative* polarity (under
   an odd number of ``−``-right nestings) are answered by a negation
   oracle.  Double subtraction therefore flips polarity back, exactly as
   the membership-inversion equations of [5] do.
3. **Alternating fixpoint** — the paper's valid loop: an overestimate pass
   (negatives allowed unless already true), certainly-false harvesting,
   then an underestimate pass (negatives allowed only on certainly-false
   facts), repeated until stable.

The result is three-valued per defined set; a program is *well-defined on
the given database* when no membership is left undefined (``S = {a} − S``
and the cyclic WIN game of Section 3.2 come out undefined, as the paper
requires).

``IFP`` nodes are pre-eliminated when their bodies do not reach a
recursive name (they are then ordinary IFP-algebra subqueries, total by
Theorem 3.1); programs that recurse *through* an IFP are evaluated via the
translation route (Corollary 3.6), and this evaluator refuses them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from ..relations.relation import Relation
from ..relations.universe import FunctionRegistry, Universe
from ..relations.values import Tup, Value
from ..datalog.semantics.interpretations import Truth
from .evaluator import NonTerminating, evaluate
from .expressions import (
    Call,
    Diff,
    Expr,
    Ifp,
    Map,
    Product,
    RelVar,
    Select,
    SetConst,
    Union,
    called_names,
    walk,
)
from .funcs import eval_scalar, eval_test
from .programs import AlgebraProgram, ProgramError

__all__ = ["EvalLimits", "ValidEvalResult", "valid_evaluate", "IfpThroughRecursion"]


class IfpThroughRecursion(ProgramError):
    """An IFP body reaches a recursive name; use the translation route."""


@dataclass(frozen=True)
class EvalLimits:
    """Bounds for the candidate-universe closure."""

    max_rounds: int = 500
    max_values: int = 200_000


@dataclass
class ValidEvalResult:
    """Three-valued memberships of every defined set constant."""

    true: Dict[str, FrozenSet[Value]]
    undefined: Dict[str, FrozenSet[Value]]
    candidates: Dict[str, FrozenSet[Value]]
    rounds: int

    def names(self) -> FrozenSet[str]:
        """Names of the defined set constants."""
        return frozenset(self.true)

    def truth_of(self, name: str, value: Value) -> Truth:
        """MEM(value, name) in the valid interpretation.

        Values outside the candidate universe are certainly false: they
        have no possible derivation.
        """
        if value in self.true[name]:
            return Truth.TRUE
        if value in self.undefined[name]:
            return Truth.UNDEFINED
        return Truth.FALSE

    def relation(self, name: str) -> Relation:
        """The certainly-true members of a defined set, as a relation."""
        return Relation(self.true[name], name=name)

    def undefined_members(self, name: str) -> FrozenSet[Value]:
        """Members whose status the valid model leaves open."""
        return self.undefined[name]

    def is_well_defined(self) -> bool:
        """No membership undefined: the program has an initial valid model
        on this database (the executable reading of Section 3.2's
        well-definedness)."""
        return not any(self.undefined.values())

    def __repr__(self) -> str:
        parts = [
            f"{name}: {len(self.true[name])} true"
            + (f", {len(self.undefined[name])} undefined" if self.undefined[name] else "")
            for name in sorted(self.true)
        ]
        return f"<ValidEvalResult {'; '.join(parts)}>"


# ---------------------------------------------------------------------------
# IFP pre-elimination
# ---------------------------------------------------------------------------


def _eliminate_ifp(
    expr: Expr,
    recursive: FrozenSet[str],
    environment: Mapping[str, Relation],
    program: AlgebraProgram,
    registry: Optional[FunctionRegistry],
    max_iterations: int,
) -> Expr:
    """Replace IFP nodes that do not reach a recursive name by their
    (two-valued, total — Theorem 3.1) value."""
    if isinstance(expr, Ifp):
        reached = called_names(expr.body)
        if reached & recursive:
            raise IfpThroughRecursion(
                f"IFP over {sorted(reached & recursive)} recursive names; "
                f"evaluate via algebra_to_datalog instead (Corollary 3.6)"
            )
        body = _eliminate_ifp(
            expr.body, recursive, environment, program, registry, max_iterations
        )
        value = evaluate(
            Ifp(expr.param, body),
            environment,
            registry=registry,
            program=program,
            max_iterations=max_iterations,
        )
        return SetConst(value.items)
    if isinstance(expr, Union):
        return Union(
            _eliminate_ifp(expr.left, recursive, environment, program, registry, max_iterations),
            _eliminate_ifp(expr.right, recursive, environment, program, registry, max_iterations),
        )
    if isinstance(expr, Diff):
        return Diff(
            _eliminate_ifp(expr.left, recursive, environment, program, registry, max_iterations),
            _eliminate_ifp(expr.right, recursive, environment, program, registry, max_iterations),
        )
    if isinstance(expr, Product):
        return Product(
            _eliminate_ifp(expr.left, recursive, environment, program, registry, max_iterations),
            _eliminate_ifp(expr.right, recursive, environment, program, registry, max_iterations),
        )
    if isinstance(expr, Select):
        return Select(
            _eliminate_ifp(expr.child, recursive, environment, program, registry, max_iterations),
            expr.test,
        )
    if isinstance(expr, Map):
        return Map(
            _eliminate_ifp(expr.child, recursive, environment, program, registry, max_iterations),
            expr.func,
        )
    if isinstance(expr, Call):
        return Call(
            expr.name,
            tuple(
                _eliminate_ifp(a, recursive, environment, program, registry, max_iterations)
                for a in expr.args
            ),
        )
    return expr


def _positive_call_names(expr: Expr, positive: bool = True) -> FrozenSet[str]:
    """System names occurring at positive polarity (even subtraction
    nesting) in an expression."""
    if isinstance(expr, Call):
        return frozenset((expr.name,)) if positive else frozenset()
    if isinstance(expr, (RelVar, SetConst)):
        return frozenset()
    if isinstance(expr, (Union, Product)):
        return _positive_call_names(expr.left, positive) | _positive_call_names(
            expr.right, positive
        )
    if isinstance(expr, Diff):
        return _positive_call_names(expr.left, positive) | _positive_call_names(
            expr.right, not positive
        )
    if isinstance(expr, (Select, Map)):
        return _positive_call_names(expr.child, positive)
    if isinstance(expr, Ifp):  # pragma: no cover — eliminated before use
        return _positive_call_names(expr.body, positive)
    raise TypeError(f"not an expression: {expr!r}")


# ---------------------------------------------------------------------------
# The equation system
# ---------------------------------------------------------------------------


class _System:
    """A normalised system of 0-ary set equations, plus its candidate
    universe and per-node evaluation indexes."""

    def __init__(
        self,
        equations: Dict[str, Expr],
        environment: Mapping[str, Relation],
        registry: Optional[FunctionRegistry],
        limits: EvalLimits,
        universe: Optional[Universe],
    ):
        self.equations = equations
        self.environment = environment
        self.registry = registry
        self.limits = limits
        self.universe = universe
        self.cand_sys: Dict[str, FrozenSet[Value]] = {}
        self.node_cand: Dict[int, FrozenSet[Value]] = {}
        self._node_index: Dict[int, Expr] = {}
        self.map_preimages: Dict[int, Dict[Value, List[Value]]] = {}
        self._compute_candidates()
        self._index_maps()
        # Positive dependencies: S depends on T when T occurs at positive
        # polarity in S's equation (negative occurrences read the static
        # oracle, so they cannot trigger re-derivation within a pass).
        self._positive_deps: Dict[str, FrozenSet[str]] = {
            name: _positive_call_names(body) for name, body in equations.items()
        }

    # -- candidate universe -------------------------------------------------

    def _over_eval(self, node: Expr, cand: Mapping[str, FrozenSet[Value]]) -> FrozenSet[Value]:
        """Over-approximate members, ignoring subtraction."""
        if isinstance(node, RelVar):
            return self.environment[node.name].items
        if isinstance(node, SetConst):
            return node.values
        if isinstance(node, Union):
            return self._over_eval(node.left, cand) | self._over_eval(node.right, cand)
        if isinstance(node, Diff):
            return self._over_eval(node.left, cand)
        if isinstance(node, Product):
            left = self._over_eval(node.left, cand)
            right = self._over_eval(node.right, cand)
            return frozenset(Tup((a, b)) for a in left for b in right)
        if isinstance(node, Select):
            child = self._over_eval(node.child, cand)
            return frozenset(
                v for v in child if eval_test(node.test, v, self.registry)
            )
        if isinstance(node, Map):
            child = self._over_eval(node.child, cand)
            images = set()
            for member in child:
                image = eval_scalar(node.func, member, self.registry)
                if image is not None and (self.universe is None or image in self.universe):
                    images.add(image)
            return frozenset(images)
        if isinstance(node, Call):
            return cand.get(node.name, frozenset())
        raise TypeError(f"unexpected node in normalised system: {node!r}")

    def _compute_candidates(self) -> None:
        cand: Dict[str, FrozenSet[Value]] = {name: frozenset() for name in self.equations}
        for round_index in range(self.limits.max_rounds):
            new_cand = {
                name: self._over_eval(body, cand)
                for name, body in self.equations.items()
            }
            total = sum(len(v) for v in new_cand.values())
            if total > self.limits.max_values:
                raise NonTerminating(
                    f"candidate universe exceeded {self.limits.max_values} values"
                    " — the program may define an infinite set; restrict it with"
                    " a selection or pass a bounding Universe"
                )
            # Candidates grow monotonically: keep the union to be safe
            # against non-monotone tests (there are none, but cheap).
            new_cand = {
                name: cand[name] | members for name, members in new_cand.items()
            }
            if new_cand == cand:
                self.cand_sys = cand
                break
            cand = new_cand
        else:
            raise NonTerminating(
                f"candidate universe did not converge within "
                f"{self.limits.max_rounds} rounds — the program may define an "
                f"infinite set; restrict it or pass a bounding Universe"
            )
        # Final per-node candidate pass.
        for body in self.equations.values():
            self._node_candidates(body)

    def _node_candidates(self, node: Expr) -> FrozenSet[Value]:
        key = id(node)
        if key in self.node_cand:
            return self.node_cand[key]
        if isinstance(node, (Union, Diff, Product)):
            self._node_candidates(node.left)
            self._node_candidates(node.right)
        elif isinstance(node, (Select, Map)):
            self._node_candidates(node.child)
        result = self._over_eval(node, self.cand_sys)
        self.node_cand[key] = result
        self._node_index[key] = node
        return result

    def _index_maps(self) -> None:
        """Precompute image → preimages for every MAP node."""
        for key, node in self._node_index.items():
            if not isinstance(node, Map):
                continue
            preimages: Dict[Value, List[Value]] = {}
            for member in self.node_cand[id(node.child)]:
                image = eval_scalar(node.func, member, self.registry)
                if image is None:
                    continue
                if self.universe is not None and image not in self.universe:
                    continue
                preimages.setdefault(image, []).append(member)
            self.map_preimages[key] = preimages

    # -- polarity-split membership -----------------------------------------------

    def holds(
        self,
        value: Value,
        node: Expr,
        state: Mapping[str, Set[Value]],
        oracle: Callable[[str, Value], bool],
        positive: bool,
    ) -> bool:
        """Membership of ``value`` in ``node``.

        System-set references read ``state`` at positive polarity; at
        negative polarity ``value ∈ S`` is *false* exactly when the oracle
        licenses the assumption ``value ∉ S`` (and true otherwise, i.e.
        possibly-true memberships block subtraction).
        """
        if isinstance(node, RelVar):
            return value in self.environment[node.name].items
        if isinstance(node, SetConst):
            return value in node.values
        if isinstance(node, Union):
            return self.holds(value, node.left, state, oracle, positive) or self.holds(
                value, node.right, state, oracle, positive
            )
        if isinstance(node, Diff):
            if not self.holds(value, node.left, state, oracle, positive):
                return False
            return not self.holds(value, node.right, state, oracle, not positive)
        if isinstance(node, Product):
            if not isinstance(value, Tup) or len(value) != 2:
                return False
            return self.holds(
                value.component(1), node.left, state, oracle, positive
            ) and self.holds(value.component(2), node.right, state, oracle, positive)
        if isinstance(node, Select):
            if not eval_test(node.test, value, self.registry):
                return False
            return self.holds(value, node.child, state, oracle, positive)
        if isinstance(node, Map):
            for preimage in self.map_preimages.get(id(node), {}).get(value, ()):
                if self.holds(preimage, node.child, state, oracle, positive):
                    return True
            return False
        if isinstance(node, Call):
            if positive:
                return value in state[node.name]
            return not oracle(node.name, value)
        raise TypeError(f"unexpected node: {node!r}")

    # -- derivation passes ----------------------------------------------------------

    def derive(self, oracle: Callable[[str, Value], bool]) -> Dict[str, FrozenSet[Value]]:
        """Least fixpoint of simultaneous derivation under a negation
        oracle, with dependency-aware re-evaluation: after the first
        sweep, an equation is revisited only when a set it reads at
        positive polarity gained members."""
        state: Dict[str, Set[Value]] = {name: set() for name in self.equations}
        dirty: Set[str] = set(self.equations)
        while dirty:
            grew: Set[str] = set()
            for name in sorted(dirty):
                body = self.equations[name]
                for value in self.cand_sys[name]:
                    if value in state[name]:
                        continue
                    if self.holds(value, body, state, oracle, True):
                        state[name].add(value)
                        grew.add(name)
            dirty = {
                name
                for name in self.equations
                if self._positive_deps[name] & grew or name in grew
            }
        return {name: frozenset(members) for name, members in state.items()}


def valid_evaluate(
    program: AlgebraProgram,
    environment: Mapping[str, Relation],
    registry: Optional[FunctionRegistry] = None,
    limits: EvalLimits = EvalLimits(),
    universe: Optional[Universe] = None,
    max_ifp_iterations: int = 10_000,
) -> ValidEvalResult:
    """Compute the valid interpretation of an ``algebra=`` program.

    ``environment`` binds the database relations.  ``universe``, when
    given, bounds value creation by MAP (the window of the bounded-universe
    discipline); without it, programs that generate unboundedly raise
    :class:`~repro.core.evaluator.NonTerminating`.
    """
    system_program = program.to_constant_system()
    recursive = system_program.recursive_names()

    equations: Dict[str, Expr] = {}
    for definition in system_program.definitions:
        body = _eliminate_ifp(
            definition.body,
            recursive,
            environment,
            system_program,
            registry,
            max_ifp_iterations,
        )
        equations[definition.name] = body

    system = _System(equations, environment, registry, limits, universe)

    # The paper's Section 2.2 loop, on set equations.
    true_state: Dict[str, FrozenSet[Value]] = {
        name: frozenset() for name in equations
    }
    rounds = 0
    while True:
        rounds += 1
        over = system.derive(
            lambda name, value: value not in true_state[name]
        )
        next_true = system.derive(lambda name, value: value not in over[name])
        if next_true == true_state:
            break
        true_state = next_true

    undefined = {
        name: over[name] - true_state[name] for name in equations
    }
    return ValidEvalResult(
        true=true_state,
        undefined=undefined,
        candidates=dict(system.cand_sys),
        rounds=rounds,
    )
