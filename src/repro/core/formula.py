"""First-order formulas over membership predicates — the calculus layer.

Both translation directions of the paper route through a calculus:
Section 6 represents "a single derivation of the rules of P_i" as a
calculus query and cites "every calculus query can be expressed by the
algebra [5]"; Section 5's algebra→deduction direction needs each set
equation rendered as rules, which we obtain by building the membership
*formula* of the expression, normalising (NNF with double-negation
elimination — this is what makes the translation respect the
membership-inversion semantics of subtraction), and emitting safe rules.

Formula terms are the deductive engine's terms (:mod:`repro.datalog.ast`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..datalog.ast import (
    Comparison,
    Const,
    FuncTerm,
    Literal,
    PredAtom,
    Rule,
    Term,
    Var,
    substitute_term,
    term_vars,
)

__all__ = [
    "Formula",
    "MemAtom",
    "Cmp",
    "FAnd",
    "FOr",
    "FNot",
    "FExists",
    "TRUE_FORMULA",
    "FALSE_FORMULA",
    "free_vars",
    "substitute_formula",
    "to_nnf",
    "FreshNames",
    "formula_to_rules",
    "DnfBlowup",
    "COMPLEMENT_OP",
]


class Formula:
    """Base class for formulas."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class MemAtom(Formula):
    """``term ∈ set_name`` — membership in a named set/predicate."""

    set_name: str
    term: Term

    def __repr__(self) -> str:
        return f"{self.term!r} ∈ {self.set_name}"


@dataclass(frozen=True, slots=True)
class Cmp(Formula):
    """A built-in comparison between terms."""

    op: str
    left: Term
    right: Term

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


@dataclass(frozen=True, slots=True)
class FAnd(Formula):
    """Conjunction (empty = true)."""
    items: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))

    def __repr__(self) -> str:
        if not self.items:
            return "⊤"
        return "(" + " ∧ ".join(repr(item) for item in self.items) + ")"


@dataclass(frozen=True, slots=True)
class FOr(Formula):
    """Disjunction (empty = false)."""
    items: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))

    def __repr__(self) -> str:
        if not self.items:
            return "⊥"
        return "(" + " ∨ ".join(repr(item) for item in self.items) + ")"


@dataclass(frozen=True, slots=True)
class FNot(Formula):
    """Negation."""
    child: Formula

    def __repr__(self) -> str:
        return f"¬{self.child!r}"


@dataclass(frozen=True, slots=True)
class FExists(Formula):
    """Existential quantification."""
    vars: Tuple[Var, ...]
    child: Formula

    def __post_init__(self) -> None:
        object.__setattr__(self, "vars", tuple(self.vars))

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.vars)
        return f"∃{names}. {self.child!r}"


TRUE_FORMULA = FAnd(())
FALSE_FORMULA = FOr(())

COMPLEMENT_OP = {"=": "!=", "!=": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}


def free_vars(formula: Formula) -> FrozenSet[Var]:
    """Free variables of a formula."""
    if isinstance(formula, MemAtom):
        return term_vars(formula.term)
    if isinstance(formula, Cmp):
        return term_vars(formula.left) | term_vars(formula.right)
    if isinstance(formula, (FAnd, FOr)):
        result: FrozenSet[Var] = frozenset()
        for item in formula.items:
            result |= free_vars(item)
        return result
    if isinstance(formula, FNot):
        return free_vars(formula.child)
    if isinstance(formula, FExists):
        return free_vars(formula.child) - frozenset(formula.vars)
    raise TypeError(f"not a formula: {formula!r}")


def substitute_formula(formula: Formula, subst: Dict[Var, Term]) -> Formula:
    """Apply a variable substitution to a formula."""
    if isinstance(formula, MemAtom):
        return MemAtom(formula.set_name, substitute_term(formula.term, subst))
    if isinstance(formula, Cmp):
        return Cmp(
            formula.op,
            substitute_term(formula.left, subst),
            substitute_term(formula.right, subst),
        )
    if isinstance(formula, FAnd):
        return FAnd(tuple(substitute_formula(item, subst) for item in formula.items))
    if isinstance(formula, FOr):
        return FOr(tuple(substitute_formula(item, subst) for item in formula.items))
    if isinstance(formula, FNot):
        return FNot(substitute_formula(formula.child, subst))
    if isinstance(formula, FExists):
        inner = {v: t for v, t in subst.items() if v not in formula.vars}
        return FExists(formula.vars, substitute_formula(formula.child, inner))
    raise TypeError(f"not a formula: {formula!r}")


def to_nnf(formula: Formula, negate: bool = False) -> Formula:
    """Negation normal form with double-negation elimination.

    Negation ends up only on :class:`MemAtom` and (as a complemented
    operator) on :class:`Cmp`; negated existentials remain as
    ``FNot(FExists(...))`` blocks with a positively-normalised body —
    rule emission turns those into auxiliary predicates.
    """
    if isinstance(formula, MemAtom):
        return FNot(formula) if negate else formula
    if isinstance(formula, Cmp):
        if negate:
            return Cmp(COMPLEMENT_OP[formula.op], formula.left, formula.right)
        return formula
    if isinstance(formula, FAnd):
        items = tuple(to_nnf(item, negate) for item in formula.items)
        return FOr(items) if negate else FAnd(items)
    if isinstance(formula, FOr):
        items = tuple(to_nnf(item, negate) for item in formula.items)
        return FAnd(items) if negate else FOr(items)
    if isinstance(formula, FNot):
        return to_nnf(formula.child, not negate)
    if isinstance(formula, FExists):
        inner = to_nnf(formula.child, False)
        if negate:
            return FNot(FExists(formula.vars, inner))
        return FExists(formula.vars, inner)
    raise TypeError(f"not a formula: {formula!r}")


class FreshNames:
    """A generator of fresh variable and predicate names."""

    def __init__(self, prefix: str = "aux"):
        self._prefix = prefix
        self._var_counter = itertools.count()
        self._pred_counter = itertools.count()

    def var(self, hint: str = "V") -> Var:
        """A fresh variable (optionally hinted)."""
        return Var(f"{hint}_{next(self._var_counter)}")

    def pred(self, hint: Optional[str] = None) -> str:
        """A fresh predicate name (optionally hinted)."""
        base = hint or self._prefix
        return f"{base}_{next(self._pred_counter)}"


class DnfBlowup(RuntimeError):
    """DNF expansion exceeded the configured disjunct bound."""


def _strip_existentials(formula: Formula, fresh: FreshNames) -> Formula:
    """Remove *positive* existentials by renaming bound variables fresh —
    rule bodies are implicitly existentially quantified."""
    if isinstance(formula, FExists):
        renaming = {v: fresh.var(v.name) for v in formula.vars}
        return _strip_existentials(
            substitute_formula(formula.child, renaming), fresh
        )
    if isinstance(formula, FAnd):
        return FAnd(tuple(_strip_existentials(item, fresh) for item in formula.items))
    if isinstance(formula, FOr):
        return FOr(tuple(_strip_existentials(item, fresh) for item in formula.items))
    # FNot blocks keep their existentials (they become aux predicates).
    return formula


def _dnf(formula: Formula, limit: int) -> List[List[Formula]]:
    """Expand an NNF, existential-stripped formula into a list of
    conjunctions of literals (MemAtom / FNot(MemAtom) / Cmp /
    FNot(FExists))."""
    if isinstance(formula, FAnd):
        disjuncts: List[List[Formula]] = [[]]
        for item in formula.items:
            item_disjuncts = _dnf(item, limit)
            disjuncts = [
                left + right for left in disjuncts for right in item_disjuncts
            ]
            if len(disjuncts) > limit:
                raise DnfBlowup(f"more than {limit} disjuncts during DNF expansion")
        return disjuncts
    if isinstance(formula, FOr):
        result: List[List[Formula]] = []
        for item in formula.items:
            result.extend(_dnf(item, limit))
            if len(result) > limit:
                raise DnfBlowup(f"more than {limit} disjuncts during DNF expansion")
        return result
    return [[formula]]


def formula_to_rules(
    head: PredAtom,
    formula: Formula,
    predicate_of: Dict[str, str],
    fresh: FreshNames,
    dnf_limit: int = 1_024,
) -> List[Rule]:
    """Emit rules defining ``head(x̄) ≡ formula``.

    ``predicate_of`` maps set names appearing in :class:`MemAtom` to
    predicate names (identity for database relations).  Negated
    existential blocks become auxiliary predicates over their free
    variables, defined recursively.
    """
    rules: List[Rule] = []
    normalised = _strip_existentials(to_nnf(formula), fresh)
    for conjunction in _dnf(normalised, dnf_limit):
        body: List = []
        ok = True
        for literal in conjunction:
            if isinstance(literal, MemAtom):
                predicate = predicate_of.get(literal.set_name, literal.set_name)
                body.append(Literal(PredAtom(predicate, (literal.term,)), True))
            elif isinstance(literal, Cmp):
                body.append(Comparison(literal.op, literal.left, literal.right))
            elif isinstance(literal, FNot) and isinstance(literal.child, MemAtom):
                atom = literal.child
                predicate = predicate_of.get(atom.set_name, atom.set_name)
                body.append(Literal(PredAtom(predicate, (atom.term,)), False))
            elif isinstance(literal, FNot) and isinstance(literal.child, FExists):
                inner = literal.child
                inner_free = sorted(free_vars(inner), key=lambda v: v.name)
                aux_name = fresh.pred("aux")
                aux_head = PredAtom(aux_name, tuple(inner_free))
                rules.extend(
                    formula_to_rules(aux_head, inner, predicate_of, fresh, dnf_limit)
                )
                body.append(Literal(aux_head, False))
            elif isinstance(literal, FNot) and isinstance(literal.child, FAnd) and not literal.child.items:
                ok = False  # ¬⊤: disjunct is unsatisfiable
                break
            elif isinstance(literal, FAnd) and not literal.items:
                continue  # ⊤ contributes nothing
            elif isinstance(literal, FOr) and not literal.items:
                ok = False  # ⊥
                break
            else:
                raise TypeError(f"unexpected literal after normalisation: {literal!r}")
        if ok:
            rules.append(Rule(head, tuple(body)))
    return rules
