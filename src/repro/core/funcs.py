"""The restructuring-function and selection-test languages.

The paper's ``MAP_f`` and ``σ_test`` operators are generic in a
restructuring function ``f`` and a boolean-valued test ``test``
(Section 3.1), but the framework "is strictly first order ... a special
specification must be provided for every specific function".  We mirror
that: functions and tests are *syntax* (small ASTs), so they can be both
evaluated and *translated* into deductive rules (Sections 5 and 6).

Scalar expressions (functions of the set member ``x``):

* ``Arg()`` — the member itself;
* ``Comp(e, i)`` — 1-indexed tuple component ``e.i``;
* ``Lit(v)`` — a constant value;
* ``MkTup(e1, ..., en)`` — tuple construction;
* ``Apply(name, e1, ..., en)`` — a registered domain function.

Tests are boolean combinations of (dis)equalities and order comparisons
between scalar expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..relations.universe import FunctionRegistry
from ..relations.values import Tup, Value, format_value, is_value

__all__ = [
    "ScalarExpr",
    "Arg",
    "Comp",
    "Lit",
    "MkTup",
    "Apply",
    "eval_scalar",
    "Test",
    "TrueTest",
    "CompareTest",
    "NotTest",
    "AndTest",
    "OrTest",
    "eval_test",
    "component",
    "pair",
]


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------


class ScalarExpr:
    """Base class for restructuring-function syntax."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Arg(ScalarExpr):
    """The set member being restructured (the ``x`` in ``MAP_{x.i}``)."""

    def __repr__(self) -> str:
        return "x"


@dataclass(frozen=True, slots=True)
class Comp(ScalarExpr):
    """1-indexed tuple component: ``Comp(Arg(), 2)`` is ``x.2``."""

    child: ScalarExpr
    index: int

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError("components are 1-indexed")

    def __repr__(self) -> str:
        return f"{self.child!r}.{self.index}"


@dataclass(frozen=True, slots=True)
class Lit(ScalarExpr):
    """A constant value."""

    value: Value

    def __post_init__(self) -> None:
        if not is_value(self.value):
            raise TypeError(f"not a value: {self.value!r}")

    def __repr__(self) -> str:
        return format_value(self.value)


@dataclass(frozen=True, slots=True)
class MkTup(ScalarExpr):
    """Tuple construction: ``MkTup((e1, e2))`` builds ``[e1, e2]``."""

    items: Tuple[ScalarExpr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))

    def __repr__(self) -> str:
        return "[" + ", ".join(repr(item) for item in self.items) + "]"


@dataclass(frozen=True, slots=True)
class Apply(ScalarExpr):
    """Application of a registered domain function: ``Apply('add2', (e,))``."""

    name: str
    args: Tuple[ScalarExpr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    def __repr__(self) -> str:
        inner = ", ".join(repr(arg) for arg in self.args)
        return f"{self.name}({inner})"


def eval_scalar(
    expr: ScalarExpr, member: Value, registry: Optional[FunctionRegistry] = None
) -> Optional[Value]:
    """Evaluate a scalar expression on a member.

    Returns ``None`` when undefined: a component of a non-tuple or
    out-of-range index, or a partial domain function off its domain.
    MAP simply drops members its function is undefined on — the paper's
    functions are total on their intended sorts, and partiality is how a
    first-order implementation expresses "wrong sort".
    """
    if isinstance(expr, Arg):
        return member
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Comp):
        child = eval_scalar(expr.child, member, registry)
        if not isinstance(child, Tup) or not 1 <= expr.index <= len(child):
            return None
        return child.component(expr.index)
    if isinstance(expr, MkTup):
        values = []
        for item in expr.items:
            value = eval_scalar(item, member, registry)
            if value is None:
                return None
            values.append(value)
        return Tup(tuple(values))
    if isinstance(expr, Apply):
        values = []
        for arg in expr.args:
            value = eval_scalar(arg, member, registry)
            if value is None:
                return None
            values.append(value)
        if registry is None:
            raise KeyError(f"no registry supplied for function {expr.name!r}")
        return registry.get(expr.name).apply(tuple(values))
    raise TypeError(f"not a scalar expression: {expr!r}")


# ---------------------------------------------------------------------------
# Tests
# ---------------------------------------------------------------------------


class Test:
    """Base class for selection-test syntax."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class TrueTest(Test):
    """The always-true test (σ_TRUE is the identity)."""

    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True)
class CompareTest(Test):
    """Comparison of two scalar expressions: ``=``, ``!=``, ``<``, ...

    Order comparisons are false across incomparable sorts, mirroring the
    partiality convention of the deductive engine.
    """

    op: str
    left: ScalarExpr
    right: ScalarExpr

    def __post_init__(self) -> None:
        if self.op not in ("=", "!=", "<", "<=", ">", ">="):
            raise ValueError(f"unknown comparison {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, slots=True)
class NotTest(Test):
    """Boolean negation of a test."""
    child: Test

    def __repr__(self) -> str:
        return f"not {self.child!r}"


@dataclass(frozen=True, slots=True)
class AndTest(Test):
    """Conjunction of two tests."""
    left: Test
    right: Test

    def __repr__(self) -> str:
        return f"({self.left!r} and {self.right!r})"


@dataclass(frozen=True, slots=True)
class OrTest(Test):
    """Disjunction of two tests."""
    left: Test
    right: Test

    def __repr__(self) -> str:
        return f"({self.left!r} or {self.right!r})"


def _compare_values(op: str, left: Value, right: Value) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    comparable = (
        isinstance(left, int)
        and isinstance(right, int)
        and not isinstance(left, bool)
        and not isinstance(right, bool)
    ) or (isinstance(left, str) and isinstance(right, str))
    if not comparable:
        return False
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def eval_test(
    test: Test, member: Value, registry: Optional[FunctionRegistry] = None
) -> bool:
    """Evaluate a selection test on a member.

    A comparison whose scalar operands are undefined is false (so the
    member is not selected); boolean connectives are classical.
    """
    if isinstance(test, TrueTest):
        return True
    if isinstance(test, CompareTest):
        left = eval_scalar(test.left, member, registry)
        right = eval_scalar(test.right, member, registry)
        if left is None or right is None:
            return False
        return _compare_values(test.op, left, right)
    if isinstance(test, NotTest):
        return not eval_test(test.child, member, registry)
    if isinstance(test, AndTest):
        return eval_test(test.left, member, registry) and eval_test(
            test.right, member, registry
        )
    if isinstance(test, OrTest):
        return eval_test(test.left, member, registry) or eval_test(
            test.right, member, registry
        )
    raise TypeError(f"not a test: {test!r}")


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def component(index: int) -> Comp:
    """The projection function ``x.i`` (so ``MAP_{component(i)}`` is π_i)."""
    return Comp(Arg(), index)


def pair(left: ScalarExpr, right: ScalarExpr) -> MkTup:
    """Build the pair ``[left, right]``."""
    return MkTup((left, right))
