"""Corollary 3.6, constructively: eliminating IFP from queries.

Theorem 3.5 / Corollary 3.6: ``IFP-algebra ⊂ algebra= = IFP-algebra=`` —
"when the ability to use recursion is added, a specific fixed point
operator like IFP becomes redundant".  The proof is a composition, and
this module implements it as a program transformation:

    IFP-algebra query
      → deductive program          (Proposition 5.1, inflationary-correct)
      → stage-indexed program      (Proposition 5.2, valid-correct)
      → ``algebra=`` program       (Proposition 6.1, IFP-free)

The stage bound is the one executable commitment: the paper's
construction indexes stages by the naturals, and a finite evaluation
needs a cap.  :func:`eliminate_ifp` takes it explicitly;
:func:`eliminate_ifp_auto` finds a sufficient bound by doubling against
the query's own inflationary evaluation on a given database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from ..relations.relation import Relation
from ..relations.universe import FunctionRegistry
from .algebra_to_datalog import translate_expression, translation_registry
from .datalog_to_algebra import datalog_to_algebra
from .evaluator import evaluate
from .expressions import Expr, Ifp, walk
from .programs import AlgebraProgram
from .staging import stage_program
from .valid_eval import valid_evaluate

__all__ = ["IfpFreeQuery", "eliminate_ifp", "eliminate_ifp_auto"]


@dataclass
class IfpFreeQuery:
    """An ``algebra=`` program equivalent to an IFP-algebra query."""

    program: AlgebraProgram
    result: str
    stage_bound: int

    def evaluate(
        self,
        environment: Mapping[str, Relation],
        registry: Optional[FunctionRegistry] = None,
    ) -> Relation:
        """The query's value on a database (always total: the program is
        in the image of the Theorem 3.5 construction)."""
        registry = registry or translation_registry()
        outcome = valid_evaluate(self.program, environment, registry=registry)
        return outcome.relation(self.result)


def eliminate_ifp(
    query: Expr,
    database_relations: FrozenSet[str] = frozenset(),
    stage_bound: int = 16,
) -> IfpFreeQuery:
    """Express an IFP-algebra query in ``algebra=`` (no IFP operator).

    ``stage_bound`` must dominate the query's inflationary round count on
    the databases of interest (use :func:`eliminate_ifp_auto` to discover
    one).  The result's defined sets include auxiliary stage relations;
    ``result`` names the query's answer set.
    """
    translation = translate_expression(query)
    staged = stage_program(translation.program, stage_bound)
    to_algebra = datalog_to_algebra(staged)
    program = AlgebraProgram(
        to_algebra.program.definitions,
        frozenset(database_relations)
        | (to_algebra.program.database_relations - {d.name for d in to_algebra.program.definitions}),
        to_algebra.program.dialect,
        name="ifp-free",
    )
    assert not program.uses_ifp()
    return IfpFreeQuery(program, translation.result_predicate, stage_bound)


def eliminate_ifp_auto(
    query: Expr,
    environment: Mapping[str, Relation],
    registry: Optional[FunctionRegistry] = None,
    initial_bound: int = 4,
    max_bound: int = 1_024,
) -> IfpFreeQuery:
    """Eliminate IFP with a stage bound certified against ``environment``:
    double until the IFP-free program reproduces the query's direct value.
    """
    registry = registry or translation_registry()
    expected = evaluate(query, environment, registry=registry)
    bound = initial_bound
    while True:
        candidate = eliminate_ifp(
            query, frozenset(environment), stage_bound=bound
        )
        if candidate.evaluate(environment, registry=registry).items == expected.items:
            return candidate
        if bound >= max_bound:
            raise RuntimeError(
                f"no sufficient stage bound up to {max_bound} — the query may "
                f"diverge on this database"
            )
        bound *= 2
