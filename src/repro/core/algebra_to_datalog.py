"""From algebra to deduction (Section 5).

Two entry points, matching the paper's two results:

* :func:`translate_expression` — Proposition 5.1: an (IFP-)algebra
  expression becomes a deductive program; every subexpression (in
  particular every ``IFP``) gets a predicate, subtraction becomes
  negation, ``IFP`` becomes recursion.  The program computes the
  expression's value under the **inflationary** semantics.

* :func:`translate_program` — Proposition 5.4: an ``algebra=`` program
  becomes a deductive program with one predicate per defined set constant
  ("both interpret subtraction and negation using valid semantics, thus
  have the same result") — evaluate the output under the **valid** (or
  well-founded) semantics.

The expression→rules step goes through the calculus layer
(:mod:`repro.core.formula`): the membership formula of each equation body
is normalised to NNF *before* rules are emitted.  The normalisation is
what makes Proposition 5.4 hold computationally — an even number of
nested subtractions must cancel, as it does in the membership-inversion
equations defining ``−``, rather than turn into a spurious negative
dependency cycle between auxiliary predicates.

Predicates use the unary set-member encoding of
:mod:`repro.core.encoding`; database relations keep their own names.
Component projections in MAP functions compile to the partial domain
functions ``comp1 ... comp9`` (see :func:`translation_registry`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..datalog.ast import Const, FuncTerm, PredAtom, Program, Rule, Term, Var
from ..relations.universe import FunctionRegistry, standard_registry
from ..relations.values import Tup, Value
from .expressions import (
    Call,
    Diff,
    Expr,
    Ifp,
    Map,
    Product,
    RelVar,
    Select,
    SetConst,
    Union,
    called_names,
)
from .funcs import (
    AndTest,
    Apply,
    Arg,
    Comp,
    CompareTest,
    Lit,
    MkTup,
    NotTest,
    OrTest,
    ScalarExpr,
    Test,
    TrueTest,
)
from .formula import (
    Cmp,
    FAnd,
    FExists,
    FNot,
    FOr,
    Formula,
    FreshNames,
    MemAtom,
    TRUE_FORMULA,
    formula_to_rules,
)
from .programs import AlgebraProgram
from .valid_eval import IfpThroughRecursion

__all__ = [
    "MAX_COMPONENT",
    "translation_registry",
    "scalar_to_term",
    "compile_test",
    "expr_to_formula",
    "TranslationResult",
    "translate_expression",
    "translate_program",
]

MAX_COMPONENT = 9
"""Largest tuple component index the translation supports."""


def translation_registry(base: Optional[FunctionRegistry] = None) -> FunctionRegistry:
    """A registry extended with the structural functions the translated
    programs use: ``comp1 ... comp9`` (1-indexed tuple component, partial
    off tuples / out of range)."""
    registry = (base or standard_registry()).copy()

    def _component(index: int):
        def pick(value: Value) -> Optional[Value]:
            if isinstance(value, Tup) and 1 <= index <= len(value):
                return value.component(index)
            return None

        return pick

    for index in range(1, MAX_COMPONENT + 1):
        registry.register(f"comp{index}", 1, _component(index))
    return registry


# ---------------------------------------------------------------------------
# Scalar expressions and tests → terms and formulas
# ---------------------------------------------------------------------------


def scalar_to_term(expr: ScalarExpr, member: Term) -> Term:
    """Compile a restructuring function applied to ``member`` into a term."""
    if isinstance(expr, Arg):
        return member
    if isinstance(expr, Lit):
        return Const(expr.value)
    if isinstance(expr, Comp):
        if expr.index > MAX_COMPONENT:
            raise ValueError(
                f"component {expr.index} exceeds the translation bound "
                f"{MAX_COMPONENT}"
            )
        return FuncTerm(f"comp{expr.index}", (scalar_to_term(expr.child, member),))
    if isinstance(expr, MkTup):
        return FuncTerm(
            "tuple", tuple(scalar_to_term(item, member) for item in expr.items)
        )
    if isinstance(expr, Apply):
        return FuncTerm(
            expr.name, tuple(scalar_to_term(arg, member) for arg in expr.args)
        )
    raise TypeError(f"not a scalar expression: {expr!r}")


def compile_test(test: Test, member: Term) -> Formula:
    """Compile a selection test on ``member`` into a formula."""
    if isinstance(test, TrueTest):
        return TRUE_FORMULA
    if isinstance(test, CompareTest):
        return Cmp(test.op, scalar_to_term(test.left, member), scalar_to_term(test.right, member))
    if isinstance(test, NotTest):
        return FNot(compile_test(test.child, member))
    if isinstance(test, AndTest):
        return FAnd((compile_test(test.left, member), compile_test(test.right, member)))
    if isinstance(test, OrTest):
        return FOr((compile_test(test.left, member), compile_test(test.right, member)))
    raise TypeError(f"not a test: {test!r}")


# ---------------------------------------------------------------------------
# Expressions → membership formulas (+ rules for IFP subexpressions)
# ---------------------------------------------------------------------------


class _Translator:
    def __init__(self, fresh: FreshNames, name_of: Dict[str, str]):
        self.fresh = fresh
        self.name_of = name_of  # set/parameter name -> predicate name
        self.extra_rules: List[Rule] = []

    def formula(self, expr: Expr, member: Term) -> Formula:
        """The membership formula of ``expr`` for member term ``member``."""
        if isinstance(expr, RelVar):
            return MemAtom(self.name_of.get(expr.name, expr.name), member)
        if isinstance(expr, Call):
            if expr.args:
                raise ValueError(
                    "translate a normalised constant system "
                    "(AlgebraProgram.to_constant_system) — parameterised call "
                    f"{expr.name!r} remained"
                )
            return MemAtom(self.name_of.get(expr.name, expr.name), member)
        if isinstance(expr, SetConst):
            return FOr(tuple(Cmp("=", member, Const(v)) for v in sorted_values_list(expr.values)))
        if isinstance(expr, Union):
            return FOr((self.formula(expr.left, member), self.formula(expr.right, member)))
        if isinstance(expr, Diff):
            return FAnd(
                (self.formula(expr.left, member), FNot(self.formula(expr.right, member)))
            )
        if isinstance(expr, Product):
            left_var = self.fresh.var("U")
            right_var = self.fresh.var("V")
            return FExists(
                (left_var, right_var),
                FAnd(
                    (
                        self.formula(expr.left, left_var),
                        self.formula(expr.right, right_var),
                        Cmp("=", member, FuncTerm("tuple", (left_var, right_var))),
                    )
                ),
            )
        if isinstance(expr, Select):
            return FAnd(
                (self.formula(expr.child, member), compile_test(expr.test, member))
            )
        if isinstance(expr, Map):
            source = self.fresh.var("U")
            return FExists(
                (source,),
                FAnd(
                    (
                        self.formula(expr.child, source),
                        Cmp("=", member, scalar_to_term(expr.func, source)),
                    )
                ),
            )
        if isinstance(expr, Ifp):
            # "first translating exp and then introducing recursion in the
            # deduction" (Section 5): the IFP's predicate appears in its own
            # body wherever the parameter did.
            predicate = self.fresh.pred("ifp")
            inner = dict(self.name_of)
            inner[expr.param] = predicate
            nested = _Translator(self.fresh, inner)
            body_var = self.fresh.var("W")
            body_formula = nested.formula(expr.body, body_var)
            self.extra_rules.extend(nested.extra_rules)
            self.extra_rules.extend(
                formula_to_rules(
                    PredAtom(predicate, (body_var,)),
                    body_formula,
                    {},
                    self.fresh,
                )
            )
            return MemAtom(predicate, member)
        raise TypeError(f"not an expression: {expr!r}")


def sorted_values_list(values) -> List[Value]:
    """Deterministically ordered list of a value set."""
    from ..relations.values import sorted_values

    return sorted_values(values)


@dataclass
class TranslationResult:
    """A deductive program equivalent to the source algebra query/program."""

    program: Program
    predicate_of: Dict[str, str]
    result_predicate: Optional[str] = None

    def predicates(self) -> FrozenSet[str]:
        """All predicate names assigned to defined sets."""
        return frozenset(self.predicate_of.values())


def translate_expression(
    expr: Expr,
    database_relations: FrozenSet[str] = frozenset(),
    result_name: str = "q0",
    fresh: Optional[FreshNames] = None,
) -> TranslationResult:
    """Proposition 5.1: compile an (IFP-)algebra expression to rules.

    The returned program defines ``result_name`` (a unary predicate whose
    members encode the result set).  For expressions containing a
    non-positive ``IFP``, evaluate under the *inflationary* semantics
    (Example 4 shows the valid semantics then disagrees); positive
    expressions agree under every semantics.
    """
    fresh = fresh or FreshNames()
    translator = _Translator(fresh, {})
    member = Var("X0")
    formula = translator.formula(expr, member)
    rules = list(translator.extra_rules)
    rules.extend(
        formula_to_rules(PredAtom(result_name, (member,)), formula, {}, fresh)
    )
    program = Program(tuple(rules), name=f"algebra:{result_name}")
    return TranslationResult(program, {}, result_predicate=result_name)


def translate_program(aprog: AlgebraProgram) -> TranslationResult:
    """Proposition 5.4: compile an ``algebra=`` program to rules.

    Each defined set constant ``S`` becomes a unary predicate ``s_S``;
    evaluate the result under the valid (or well-founded) semantics —
    source and target "both interpret subtraction and negation using
    valid semantics, thus have the same result".

    ``IFP`` nodes are rejected when they recurse through a defined name
    (use the staging route of Proposition 5.2 / Theorem 3.5); free-standing
    ``IFP`` subexpressions are translated naively, which is exact here
    because a non-recursive IFP subprogram is reached only positively
    from below and its inflationary and valid readings coincide for the
    positive bodies this translator accepts them with.
    """
    system = aprog.to_constant_system()
    recursive = system.recursive_names()
    fresh = FreshNames()
    predicate_of = {
        definition.name: f"s_{definition.name}" for definition in system.definitions
    }

    rules: List[Rule] = []
    for definition in system.definitions:
        for node in _ifp_nodes(definition.body):
            if called_names(node.body) & recursive:
                raise IfpThroughRecursion(
                    f"{definition.name}: IFP through a recursive name; use "
                    f"staging (Proposition 5.2 / Theorem 3.5)"
                )
            from .positivity import is_positive_in

            if not is_positive_in(node.body, node.param):
                raise IfpThroughRecursion(
                    f"{definition.name}: non-positive IFP inside an algebra= "
                    f"program — its inflationary reading differs from the "
                    f"valid reading (Example 4); use the staging route"
                )
        translator = _Translator(fresh, dict(predicate_of))
        member = Var("X0")
        formula = translator.formula(definition.body, member)
        rules.extend(translator.extra_rules)
        rules.extend(
            formula_to_rules(
                PredAtom(predicate_of[definition.name], (member,)),
                formula,
                {},
                fresh,
            )
        )
    program = Program(tuple(rules), name=aprog.name or "algebra=")
    return TranslationResult(program, predicate_of)


def _ifp_nodes(expr: Expr):
    from .expressions import walk

    return [node for node in walk(expr) if isinstance(node, Ifp)]
