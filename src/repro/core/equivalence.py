"""Theorem 6.2 round trips and cross-paradigm equivalence checking.

The theorem: *the d.i. deductive language, the safe deductive language,
the algebra=, and the IFP-algebra= are equivalent*.  These helpers
certify the equivalence **on a concrete database**: they evaluate a query
in one paradigm, translate it to the other, evaluate there, and compare
the three-valued answers member by member.  Tests and benchmarks call
them over the shared corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..datalog.ast import Program
from ..datalog.database import Database
from ..datalog.engine import run
from ..relations.relation import Relation
from ..relations.universe import FunctionRegistry, Universe
from ..relations.values import Value
from .algebra_to_datalog import translate_program, translation_registry
from .datalog_to_algebra import datalog_to_algebra
from .encoding import database_to_environment, environment_to_database, relation_rows
from .programs import AlgebraProgram
from .valid_eval import EvalLimits, ValidEvalResult, valid_evaluate

__all__ = [
    "ThreeValuedAnswer",
    "EquivalenceReport",
    "algebra_answers_native",
    "algebra_answers_translated",
    "datalog_answers",
    "check_algebra_roundtrip",
    "check_datalog_roundtrip",
]


@dataclass(frozen=True)
class ThreeValuedAnswer:
    """True and undefined member sets of one defined set / predicate."""

    true: FrozenSet[Value]
    undefined: FrozenSet[Value]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ThreeValuedAnswer):
            return NotImplemented
        return self.true == other.true and self.undefined == other.undefined

    def __hash__(self) -> int:
        return hash((self.true, self.undefined))


@dataclass
class EquivalenceReport:
    """Per-name comparison of two evaluation routes."""

    matches: bool
    details: Dict[str, Tuple[ThreeValuedAnswer, ThreeValuedAnswer]] = field(
        default_factory=dict
    )

    def mismatches(self) -> List[str]:
        """Names on which the two routes disagree."""
        return [
            name for name, (left, right) in self.details.items() if left != right
        ]

    def __repr__(self) -> str:
        verdict = "EQUIVALENT" if self.matches else f"MISMATCH on {self.mismatches()}"
        return f"<EquivalenceReport {verdict} ({len(self.details)} names)>"


def _compare(
    left: Mapping[str, ThreeValuedAnswer], right: Mapping[str, ThreeValuedAnswer]
) -> EquivalenceReport:
    names = set(left) | set(right)
    empty = ThreeValuedAnswer(frozenset(), frozenset())
    details = {
        name: (left.get(name, empty), right.get(name, empty)) for name in names
    }
    matches = all(a == b for a, b in details.values())
    return EquivalenceReport(matches, details)


def algebra_answers_native(
    program: AlgebraProgram,
    environment: Mapping[str, Relation],
    registry: Optional[FunctionRegistry] = None,
    universe: Optional[Universe] = None,
    limits: EvalLimits = EvalLimits(),
) -> Dict[str, ThreeValuedAnswer]:
    """Evaluate with the native three-valued evaluator."""
    result = valid_evaluate(
        program, environment, registry=registry, universe=universe, limits=limits
    )
    return {
        name: ThreeValuedAnswer(result.true[name], result.undefined[name])
        for name in result.names()
    }


def algebra_answers_translated(
    program: AlgebraProgram,
    environment: Mapping[str, Relation],
    registry: Optional[FunctionRegistry] = None,
    semantics: str = "valid",
    max_atoms: int = 1_000_000,
) -> Dict[str, ThreeValuedAnswer]:
    """Evaluate via Proposition 5.4: translate to deduction, run the valid
    (or well-founded) engine, decode."""
    registry = registry or translation_registry()
    translation = translate_program(program)
    database = environment_to_database(environment, {})
    for name in program.database_relations:
        if name not in database.predicates():
            database.declare(name)
    outcome = run(
        translation.program,
        database,
        semantics=semantics,
        registry=registry,
        max_atoms=max_atoms,
    )
    answers: Dict[str, ThreeValuedAnswer] = {}
    for name, predicate in translation.predicate_of.items():
        answers[name] = ThreeValuedAnswer(
            frozenset(row[0] for row in outcome.true_rows(predicate)),
            frozenset(row[0] for row in outcome.undefined_rows(predicate)),
        )
    return answers


def datalog_answers(
    program: Program,
    database: Database,
    predicates: Optional[Tuple[str, ...]] = None,
    semantics: str = "valid",
    registry: Optional[FunctionRegistry] = None,
) -> Dict[str, ThreeValuedAnswer]:
    """Evaluate a deductive program; answers keyed by predicate, with rows
    encoded as set members (so they compare against algebra answers)."""
    from .encoding import row_to_value

    registry = registry or translation_registry()
    outcome = run(program, database, semantics=semantics, registry=registry)
    names = predicates or tuple(sorted(program.idb_predicates()))
    answers: Dict[str, ThreeValuedAnswer] = {}
    for predicate in names:
        answers[predicate] = ThreeValuedAnswer(
            frozenset(row_to_value(row) for row in outcome.true_rows(predicate)),
            frozenset(row_to_value(row) for row in outcome.undefined_rows(predicate)),
        )
    return answers


def check_algebra_roundtrip(
    program: AlgebraProgram,
    environment: Mapping[str, Relation],
    registry: Optional[FunctionRegistry] = None,
) -> EquivalenceReport:
    """algebra= → deduction → compare with the native evaluation
    (Proposition 5.4 + the Section 2.2 computation agree)."""
    registry = registry or translation_registry()
    native = algebra_answers_native(program, environment, registry=registry)
    translated = algebra_answers_translated(program, environment, registry=registry)
    return _compare(native, translated)


def check_datalog_roundtrip(
    program: Program,
    database: Database,
    registry: Optional[FunctionRegistry] = None,
) -> EquivalenceReport:
    """safe deduction → algebra= → compare with direct deduction
    (Proposition 6.1)."""
    registry = registry or translation_registry()
    direct = datalog_answers(program, database, registry=registry)

    translation = datalog_to_algebra(program)
    environment = database_to_environment(database)
    for name in translation.program.database_relations:
        if name not in environment:
            environment[name] = Relation([], name=name)
    algebra_result = valid_evaluate(
        translation.program, environment, registry=registry
    )
    via_algebra = {
        name: ThreeValuedAnswer(
            algebra_result.true[name], algebra_result.undefined[name]
        )
        for name in algebra_result.names()
    }
    return _compare(direct, via_algebra)
