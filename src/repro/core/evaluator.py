"""Two-valued evaluation of algebra and IFP-algebra queries.

This evaluator covers the dialects *without* recursive definitions:
expressions are evaluated directly over relations, non-recursive calls
are inlined, and ``IFP`` runs the inflationary iteration of Section 3.1
("starting with the empty set, at each step exp is applied on the result
obtained in the previous step, and the result is accumulated").

Because the paper's domains may be infinite, the iteration takes an
explicit ``max_iterations`` bound and raises :class:`NonTerminating` when
it is hit — the bounded-universe discipline of this reproduction.

Recursive (``algebra=``) programs have *three-valued* semantics and are
handled by :mod:`repro.core.valid_eval` instead; calling this evaluator
on a recursive call raises :class:`RecursionNotSupported`.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..robustness import EvaluationBudget, NonTerminating
from ..relations.relation import Relation
from ..relations.universe import FunctionRegistry
from ..relations.values import Value
from .expressions import (
    Call,
    Diff,
    Expr,
    Ifp,
    Map,
    Product,
    RelVar,
    Select,
    SetConst,
    Union,
)
from .funcs import eval_scalar, eval_test
from .programs import AlgebraProgram

__all__ = ["evaluate", "evaluate_query", "NonTerminating", "RecursionNotSupported"]


# NonTerminating now lives in repro.robustness (re-exported here for
# backwards compatibility): it is a BudgetExceeded, so IFP divergence is
# caught by the same handlers as every other resource exhaustion.


class RecursionNotSupported(ValueError):
    """A recursive call reached the two-valued evaluator."""


def evaluate(
    expr: Expr,
    environment: Mapping[str, Relation],
    registry: Optional[FunctionRegistry] = None,
    program: Optional[AlgebraProgram] = None,
    max_iterations: int = 10_000,
    budget: Optional[EvaluationBudget] = None,
) -> Relation:
    """Evaluate an expression to a relation.

    ``environment`` binds database relations and any enclosing parameters;
    ``program`` (optional) supplies definitions for non-recursive calls.
    ``budget`` adds wall-clock/step governance to the IFP iteration on
    top of the ``max_iterations`` cap.
    """
    recursive = program.recursive_names() if program else frozenset()

    def run(node: Expr, env: Mapping[str, Relation]) -> Relation:
        if isinstance(node, RelVar):
            if node.name not in env:
                raise KeyError(f"unbound relation variable {node.name!r}")
            return env[node.name]
        if isinstance(node, SetConst):
            return Relation(node.values)
        if isinstance(node, Union):
            return run(node.left, env).union(run(node.right, env))
        if isinstance(node, Diff):
            return run(node.left, env).difference(run(node.right, env))
        if isinstance(node, Product):
            return run(node.left, env).product(run(node.right, env))
        if isinstance(node, Select):
            child = run(node.child, env)
            return child.select(lambda member: eval_test(node.test, member, registry))
        if isinstance(node, Map):
            child = run(node.child, env)
            members = []
            for member in child.items:
                image = eval_scalar(node.func, member, registry)
                if image is not None:
                    members.append(image)
            return Relation(members)
        if isinstance(node, Ifp):
            current = Relation.empty()
            for _step in range(max_iterations):
                if budget is not None:
                    budget.note_iteration(phase="ifp")
                inner = dict(env)
                inner[node.param] = current
                step = run(node.body, inner)
                accumulated = current.union(step)
                if accumulated == current:
                    return current
                if budget is not None:
                    budget.charge_facts(len(accumulated) - len(current))
                current = accumulated
            raise NonTerminating(
                f"IFP did not converge within {max_iterations} iterations "
                f"(the fixed point may be an infinite set)",
                progress=budget.progress if budget is not None else None,
            )
        if isinstance(node, Call):
            if program is None:
                raise RecursionNotSupported(
                    f"call to {node.name!r} without a program in scope"
                )
            if node.name in recursive:
                raise RecursionNotSupported(
                    f"{node.name!r} is recursively defined; recursive programs "
                    f"have three-valued semantics — use repro.core.valid_eval"
                )
            definition = program.definition(node.name)
            arguments = [run(arg, env) for arg in node.args]
            inner = dict(env)
            inner.update(zip(definition.params, arguments))
            return run(definition.body, inner)
        raise TypeError(f"not an expression: {node!r}")

    return run(expr, environment)


def evaluate_query(
    program: AlgebraProgram,
    result: str,
    environment: Mapping[str, Relation],
    registry: Optional[FunctionRegistry] = None,
    max_iterations: int = 10_000,
    budget: Optional[EvaluationBudget] = None,
) -> Relation:
    """Evaluate a named (non-recursive) query constant of a program."""
    definition = program.definition(result)
    if definition.params:
        raise ValueError(f"query constant {result!r} must be 0-ary")
    return evaluate(
        definition.body,
        environment,
        registry=registry,
        program=program,
        max_iterations=max_iterations,
        budget=budget,
    ).renamed(result)
