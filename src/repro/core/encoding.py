"""The relation ↔ predicate encoding shared by both translations.

The paper's databases are named *sets*; deductive databases are
*predicates*.  The translations of Sections 5 and 6 identify the two:

* a predicate of arity 1 corresponds to the set of its member values;
* a predicate of arity n ≥ 2 corresponds to the set of width-n tuples;
* a propositional (arity-0) predicate corresponds to a set that contains
  the marker :data:`UNIT` exactly when the proposition holds.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Tuple

from ..datalog.database import Database
from ..relations.relation import Relation
from ..relations.values import Atom, Tup, Value

__all__ = [
    "UNIT",
    "row_to_value",
    "value_to_row",
    "database_to_environment",
    "environment_to_database",
    "rows_to_relation",
    "relation_rows",
]

UNIT = Atom("unit")
"""Marker member encoding a true arity-0 predicate as a non-empty set."""


def row_to_value(row: Tuple[Value, ...]) -> Value:
    """Encode a fact's argument tuple as a single set member."""
    if len(row) == 0:
        return UNIT
    if len(row) == 1:
        return row[0]
    return Tup(tuple(row))


def value_to_row(value: Value, arity: int) -> Tuple[Value, ...]:
    """Decode a set member back into a fact's argument tuple.

    Raises ``ValueError`` when the member does not fit the arity (e.g. a
    non-tuple member of a binary predicate's set).
    """
    if arity == 0:
        if value != UNIT:
            raise ValueError(f"arity-0 encoding expects {UNIT!r}, got {value!r}")
        return ()
    if arity == 1:
        return (value,)
    if not isinstance(value, Tup) or len(value) != arity:
        raise ValueError(f"expected a width-{arity} tuple, got {value!r}")
    return tuple(value.items)


def rows_to_relation(
    rows: FrozenSet[Tuple[Value, ...]], name: str
) -> Relation:
    """Encode predicate rows as a named set."""
    return Relation((row_to_value(row) for row in rows), name=name)


def relation_rows(relation: Relation, arity: int) -> FrozenSet[Tuple[Value, ...]]:
    """Decode a named set back into predicate rows."""
    return frozenset(value_to_row(member, arity) for member in relation.items)


def database_to_environment(database: Database) -> Dict[str, Relation]:
    """View every database predicate as a named set (Section 6 direction)."""
    environment: Dict[str, Relation] = {}
    for predicate in database.predicates():
        environment[predicate] = rows_to_relation(database.rows(predicate), predicate)
    return environment


def environment_to_database(
    environment: Mapping[str, Relation], arities: Mapping[str, int]
) -> Database:
    """View named sets as database predicates (Section 5 direction).

    ``arities`` says how to decode each relation's members; relations not
    listed are taken as unary.
    """
    database = Database()
    for name, relation in environment.items():
        arity = arities.get(name, 1)
        database.declare(name)  # keep empty relations visible
        for member in relation.items:
            database.add(name, *value_to_row(member, arity))
    return database
