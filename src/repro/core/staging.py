"""Proposition 5.2: inflationary → valid via stage indices.

    "(i) For every predicate name R we add a new predicate name R'.
     (ii) Every ground fact R(a) is replaced by R'(0, a).
     (iii) Every rule ...(¬)Q(x)... → R(y) is replaced by
           ...(¬)Q'(i, x)... → R'(i+1, y).
     (iv) Finally, for every R' we add two new rules:
           R'(i, x) → R'(i+1, x)   and   R'(i, x) → R(x)."

"The program P' simulates the inflationary computation of P.  At each
step of the derivation, new facts can only be derived using facts with
smaller indexes.  Thus the result obtained using valid semantics is the
same as the one obtained by the inflationary computation."

The staged program is *locally stratified* (stages strictly increase
through every rule), so its valid/well-founded model is total on the
staged atoms.  Executably, the stage domain must be finite: we materialise
``stage(0) ... stage(B)`` facts and :func:`run_staged` doubles ``B`` until
the final two stages coincide (the inflationary computation of a finite
ground program converges within ``#atoms`` rounds, so doubling
terminates whenever grounding does).

Our one departure from the letter of the construction: extensional (EDB)
facts live in the database rather than in the program, so EDB predicates
are left unstaged — a stage-0-available fact is available at every stage,
which is what clause (ii) + the copy rule (iv) achieve for program facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..datalog.ast import (
    Comparison,
    Const,
    FuncTerm,
    Literal,
    PredAtom,
    Program,
    Rule,
    Term,
    Var,
)
from ..datalog.database import Database
from ..datalog.engine import QueryResult, run
from ..relations.universe import FunctionRegistry

__all__ = ["STAGE_PREDICATE", "stage_program", "run_staged", "StagedResult"]

STAGE_PREDICATE = "stage"
_STAGE_VAR = Var("Stage_")
_NEXT_VAR = Var("StageNext_")


def _staged_name(predicate: str) -> str:
    return f"{predicate}__s"


def stage_program(
    program: Program,
    stage_bound: int,
    stage_predicate: str = STAGE_PREDICATE,
) -> Program:
    """Apply the Proposition 5.2 transformation with ``stage_bound`` stages.

    IDB predicates are staged; EDB predicates are consulted directly.
    ``stage(0) ... stage(stage_bound)`` facts are appended.
    """
    idb = program.idb_predicates()
    rules: List[Rule] = []

    for rule in program.rules:
        head = rule.head
        if rule.is_fact():
            # (ii): ground program facts enter at stage 0.
            rules.append(
                Rule(
                    PredAtom(_staged_name(head.predicate), (Const(0),) + head.args)
                )
            )
            continue
        # (iii): body IDB literals read stage I, head written at I+1.
        body: List = [
            Literal(PredAtom(stage_predicate, (_STAGE_VAR,)), True),
            Comparison("=", _NEXT_VAR, FuncTerm("succ", (_STAGE_VAR,))),
            Literal(PredAtom(stage_predicate, (_NEXT_VAR,)), True),
        ]
        for item in rule.body:
            if isinstance(item, Literal) and item.atom.predicate in idb:
                body.append(
                    Literal(
                        PredAtom(
                            _staged_name(item.atom.predicate),
                            (_STAGE_VAR,) + item.atom.args,
                        ),
                        item.positive,
                    )
                )
            else:
                body.append(item)
        rules.append(
            Rule(
                PredAtom(_staged_name(head.predicate), (_NEXT_VAR,) + head.args),
                tuple(body),
            )
        )

    # (iv): copy-up and projection rules, per IDB predicate.
    arities = program.arities()
    for predicate in sorted(idb):
        arity = arities[predicate]
        arg_vars = tuple(Var(f"X{i}_") for i in range(arity))
        staged = _staged_name(predicate)
        rules.append(
            Rule(
                PredAtom(staged, (_NEXT_VAR,) + arg_vars),
                (
                    Literal(PredAtom(staged, (_STAGE_VAR,) + arg_vars), True),
                    Comparison("=", _NEXT_VAR, FuncTerm("succ", (_STAGE_VAR,))),
                    Literal(PredAtom(stage_predicate, (_NEXT_VAR,)), True),
                ),
            )
        )
        rules.append(
            Rule(
                PredAtom(predicate, arg_vars),
                (Literal(PredAtom(staged, (_STAGE_VAR,) + arg_vars), True),),
            )
        )

    for index in range(stage_bound + 1):
        rules.append(Rule(PredAtom(stage_predicate, (Const(index),))))

    return Program(tuple(rules), name=(program.name or "program") + f"-staged{stage_bound}")


@dataclass(frozen=True)
class StagedResult:
    """Outcome of :func:`run_staged`."""

    result: QueryResult
    staged_program: Program
    stage_bound: int
    converged: bool


def _stage_rows(result: QueryResult, predicate: str, stage: int):
    staged = _staged_name(predicate)
    rows = set()
    for row in result.true_rows(staged):
        if row and row[0] == stage:
            rows.add(row[1:])
    return frozenset(rows)


def run_staged(
    program: Program,
    database: Optional[Database] = None,
    semantics: str = "valid",
    registry: Optional[FunctionRegistry] = None,
    initial_bound: int = 4,
    max_bound: int = 4_096,
    max_atoms: int = 2_000_000,
) -> StagedResult:
    """Stage ``program`` and evaluate it under ``semantics``, doubling the
    stage bound until the last two stages carry identical rows for every
    IDB predicate (i.e. the simulated inflationary computation converged).
    """
    from ..relations.universe import standard_registry

    registry = registry or standard_registry()
    database = database or Database()
    idb = sorted(program.idb_predicates())
    bound = initial_bound
    while True:
        staged = stage_program(program, bound)
        outcome = run(
            staged,
            database,
            semantics=semantics,
            registry=registry,
            max_atoms=max_atoms,
        )
        converged = all(
            _stage_rows(outcome, predicate, bound)
            == _stage_rows(outcome, predicate, bound - 1)
            for predicate in idb
        )
        if converged:
            return StagedResult(outcome, staged, bound, True)
        if bound >= max_bound:
            return StagedResult(outcome, staged, bound, False)
        bound = min(bound * 2, max_bound)
