"""Polarity and monotonicity analysis.

Section 4 singles out the **positive IFP-algebra**: the fixed point
operator is applied only to expressions where the bound variable "does
not appear negatively, i.e. does not appear in a sub-expression being
subtracted".  Such expressions are certainly monotone (Definition 3.3),
and by Proposition 3.4 the recursive equation ``S = exp(S)`` and the
inflationary ``IFP_exp`` then agree.

This module provides the syntactic criterion, a program-aware variant
that looks through ``Call`` sites, and a semantic monotonicity *oracle*
used by the property-based tests (the syntactic check is sufficient but
not necessary, and the oracle lets tests confirm both directions on
random expressions).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from ..relations.relation import Relation
from ..relations.universe import FunctionRegistry
from .expressions import (
    Call,
    Diff,
    Expr,
    Ifp,
    Map,
    Product,
    RelVar,
    Select,
    SetConst,
    Union,
)

__all__ = [
    "subtracted_names",
    "occurs_negatively",
    "is_positive_in",
    "is_positive_ifp_expr",
    "polarity_of_names",
    "is_monotone_semantically",
]


def subtracted_names(expr: Expr) -> FrozenSet[str]:
    """Free relation-variable names occurring inside a subtracted
    sub-expression (the right operand of some ``−``), at any depth."""
    def visit(node: Expr, under_subtraction: bool) -> FrozenSet[str]:
        if isinstance(node, RelVar):
            return frozenset((node.name,)) if under_subtraction else frozenset()
        if isinstance(node, SetConst):
            return frozenset()
        if isinstance(node, (Union, Product)):
            return visit(node.left, under_subtraction) | visit(
                node.right, under_subtraction
            )
        if isinstance(node, Diff):
            return visit(node.left, under_subtraction) | visit(node.right, True)
        if isinstance(node, (Select, Map)):
            return visit(node.child, under_subtraction)
        if isinstance(node, Ifp):
            # Occurrences of the bound parameter inside the body are not
            # free occurrences of an outer name.
            return visit(node.body, under_subtraction) - {node.param}
        if isinstance(node, Call):
            # Without the definition in hand, any argument occurrence is
            # treated conservatively as potentially subtracted.
            result: FrozenSet[str] = frozenset()
            for arg in node.args:
                result |= visit(arg, True)
            return result
        raise TypeError(f"not an expression: {node!r}")

    return visit(expr, False)


def occurs_negatively(expr: Expr, name: str) -> bool:
    """Does ``name`` appear in a sub-expression being subtracted?"""
    return name in subtracted_names(expr)


def is_positive_in(expr: Expr, name: str) -> bool:
    """The paper's positivity criterion for a single variable."""
    return not occurs_negatively(expr, name)


def is_positive_ifp_expr(expr: Expr) -> bool:
    """True iff every ``IFP`` in ``expr`` binds a positive variable —
    membership in the *positive IFP-algebra* of Section 4."""
    from .expressions import walk

    for node in walk(expr):
        if isinstance(node, Ifp) and occurs_negatively(node.body, node.param):
            return False
    return True


def polarity_of_names(expr: Expr) -> Dict[str, str]:
    """Per free name: ``'positive'`` (never subtracted), ``'negative'``
    (only subtracted), or ``'mixed'``."""
    from .expressions import free_rel_vars

    negative = subtracted_names(expr)

    def visit(node: Expr, under_subtraction: bool) -> FrozenSet[str]:
        if isinstance(node, RelVar):
            return frozenset() if under_subtraction else frozenset((node.name,))
        if isinstance(node, SetConst):
            return frozenset()
        if isinstance(node, (Union, Product)):
            return visit(node.left, under_subtraction) | visit(
                node.right, under_subtraction
            )
        if isinstance(node, Diff):
            return visit(node.left, under_subtraction) | visit(node.right, True)
        if isinstance(node, (Select, Map)):
            return visit(node.child, under_subtraction)
        if isinstance(node, Ifp):
            return visit(node.body, under_subtraction) - {node.param}
        if isinstance(node, Call):
            result: FrozenSet[str] = frozenset()
            for arg in node.args:
                result |= visit(arg, True)
            return result
        raise TypeError(f"not an expression: {node!r}")

    positive = visit(expr, False)
    result: Dict[str, str] = {}
    for name in free_rel_vars(expr):
        occurs_pos = name in positive
        occurs_neg = name in negative
        if occurs_pos and occurs_neg:
            result[name] = "mixed"
        elif occurs_neg:
            result[name] = "negative"
        else:
            result[name] = "positive"
    return result


def is_monotone_semantically(
    body: Expr,
    param: str,
    environment: Mapping[str, Relation],
    candidates: Iterable,
    registry: Optional[FunctionRegistry] = None,
    max_pairs: int = 200,
) -> bool:
    """Brute-force Definition 3.3 over subsets of ``candidates``.

    Checks ``S1 ⊆ S2 ⇒ exp(S1) ⊆ exp(S2)`` for up to ``max_pairs``
    subset pairs drawn from the candidate pool.  An *oracle for tests*:
    exhaustive only for small candidate pools, but disagreement with the
    syntactic criterion on any checked pair is conclusive.
    """
    from .evaluator import evaluate

    pool = list(candidates)
    if len(pool) > 10:
        pool = pool[:10]
    checked = 0
    subsets = [
        frozenset(combo)
        for size in range(len(pool) + 1)
        for combo in itertools.combinations(pool, size)
    ]
    for small in subsets:
        for large in subsets:
            if not small <= large:
                continue
            if checked >= max_pairs:
                return True
            checked += 1
            env_small = dict(environment)
            env_small[param] = Relation(small)
            env_large = dict(environment)
            env_large[param] = Relation(large)
            result_small = evaluate(body, env_small, registry=registry)
            result_large = evaluate(body, env_large, registry=registry)
            if not result_small.items <= result_large.items:
                return False
    return True
