"""Well-definedness analysis for ``algebra=`` programs.

Proposition 3.2: whether an ``algebra=`` program has an initial valid
model is *undecidable* in general.  This module provides what an
implementation can honestly offer instead:

* :func:`recursion_polarity` / :func:`is_call_stratified` — a syntactic
  *sufficient* condition: if no recursive name reaches itself through a
  subtracted position (the call-graph analogue of stratification), every
  database instance yields a total valid model — the Theorem 3.1 /
  Theorem 4.3 fragment.
* :func:`check_well_defined` — the semi-decision procedure for a
  *concrete database*: evaluate and report a verdict with a witness.
  The paper's own examples illustrate all three verdicts: monotone TC is
  ``TOTAL_ALWAYS`` territory, WIN is ``TOTAL_HERE`` on acyclic MOVE, and
  ``S = {a} − S`` is ``UNDEFINED_HERE`` with witness ``(S, a)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

import networkx as nx

from ..relations.relation import Relation
from ..relations.universe import FunctionRegistry, Universe
from ..relations.values import Value
from .expressions import Call, Diff, Expr, Ifp, Map, Product, RelVar, Select, SetConst, Union
from .programs import AlgebraProgram
from .valid_eval import EvalLimits, ValidEvalResult, valid_evaluate

__all__ = [
    "recursion_polarity",
    "is_call_stratified",
    "Verdict",
    "WellDefinednessReport",
    "check_well_defined",
]


def recursion_polarity(program: AlgebraProgram) -> nx.DiGraph:
    """The signed call graph: edge ``f → g`` with attribute ``negative``
    true when some call of ``g`` in the body of ``f`` sits inside a
    subtracted sub-expression."""
    graph = nx.DiGraph()
    for definition in program.definitions:
        graph.add_node(definition.name)
        for callee, negative in _signed_calls(definition.body, False):
            if graph.has_edge(definition.name, callee):
                graph[definition.name][callee]["negative"] |= negative
            else:
                graph.add_edge(definition.name, callee, negative=negative)
    return graph


def _signed_calls(expr: Expr, under_subtraction: bool) -> List[Tuple[str, bool]]:
    if isinstance(expr, (RelVar, SetConst)):
        return []
    if isinstance(expr, (Union, Product)):
        return _signed_calls(expr.left, under_subtraction) + _signed_calls(
            expr.right, under_subtraction
        )
    if isinstance(expr, Diff):
        return _signed_calls(expr.left, under_subtraction) + _signed_calls(
            expr.right, True
        )
    if isinstance(expr, (Select, Map)):
        return _signed_calls(expr.child, under_subtraction)
    if isinstance(expr, Ifp):
        return _signed_calls(expr.body, under_subtraction)
    if isinstance(expr, Call):
        found = [(expr.name, under_subtraction)]
        for arg in expr.args:
            # Arguments of a parameterised call: conservatively negative
            # (the callee may subtract its parameter).
            found.extend(
                (name, True) for name, _sign in _signed_calls(arg, True)
            )
        return found
    raise TypeError(f"not an expression: {expr!r}")


def is_call_stratified(program: AlgebraProgram) -> bool:
    """Sufficient condition for well-definedness on *every* database:
    no call-graph cycle passes through a subtracted position.

    This is the algebra-side mirror of program stratification; together
    with Theorem 3.1's totality for IFP, it places the program in the
    always-total fragment.
    """
    graph = recursion_polarity(program)
    component_of: Dict[str, int] = {}
    for index, component in enumerate(nx.strongly_connected_components(graph)):
        for node in component:
            component_of[node] = index
    for source, target, data in graph.edges(data=True):
        if data.get("negative") and component_of[source] == component_of[target]:
            return False
    return True


class Verdict(enum.Enum):
    """Outcome of well-definedness analysis."""

    TOTAL_ALWAYS = "total on every database (call-stratified)"
    TOTAL_HERE = "total on this database"
    UNDEFINED_HERE = "undefined memberships on this database"


@dataclass
class WellDefinednessReport:
    """Verdict plus evidence."""

    verdict: Verdict
    call_stratified: bool
    result: Optional[ValidEvalResult]
    witnesses: Tuple[Tuple[str, Value], ...] = ()

    def is_well_defined(self) -> bool:
        """True unless the verdict is UNDEFINED_HERE."""
        return self.verdict is not Verdict.UNDEFINED_HERE

    def __repr__(self) -> str:
        extra = ""
        if self.witnesses:
            name, value = self.witnesses[0]
            extra = f" (e.g. MEM({value}, {name}) undefined)"
        return f"<WellDefinednessReport {self.verdict.value}{extra}>"


def check_well_defined(
    program: AlgebraProgram,
    environment: Mapping[str, Relation],
    registry: Optional[FunctionRegistry] = None,
    universe: Optional[Universe] = None,
    limits: EvalLimits = EvalLimits(),
) -> WellDefinednessReport:
    """Analyse well-definedness of ``program`` on ``environment``.

    Cheap syntactic test first; then the semi-decision by evaluation
    (exact for the bounded window).  ``UNDEFINED_HERE`` reports up to
    five witnessing memberships.
    """
    stratified = is_call_stratified(program)
    result = valid_evaluate(
        program, environment, registry=registry, universe=universe, limits=limits
    )
    if result.is_well_defined():
        verdict = Verdict.TOTAL_ALWAYS if stratified else Verdict.TOTAL_HERE
        return WellDefinednessReport(verdict, stratified, result)
    witnesses: List[Tuple[str, Value]] = []
    for name in sorted(result.undefined):
        for value in list(result.undefined[name])[:5]:
            witnesses.append((name, value))
        if len(witnesses) >= 5:
            break
    return WellDefinednessReport(
        Verdict.UNDEFINED_HERE, stratified, result, tuple(witnesses[:5])
    )
