"""Graph workload generators.

The paper's running example (the WIN game) and the classical recursive
queries (transitive closure, same generation) are graph workloads; these
generators produce the MOVE/edge relations the tests and benchmarks sweep
over.  All generators are deterministic (seeded).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..datalog.database import Database
from ..relations.relation import Relation
from ..relations.values import Atom, tup

__all__ = [
    "node",
    "chain",
    "cycle",
    "grid",
    "complete",
    "binary_tree",
    "random_graph",
    "star",
    "edges_to_relation",
    "edges_to_database",
    "nodes_of",
]

Edge = Tuple[Atom, Atom]


def node(index: int) -> Atom:
    """The canonical node atom ``n<index>``."""
    return Atom(f"n{index}")


def chain(length: int) -> List[Edge]:
    """``n0 → n1 → ... → n(length-1)``."""
    return [(node(i), node(i + 1)) for i in range(length - 1)]


def cycle(length: int) -> List[Edge]:
    """A directed cycle of ``length`` nodes."""
    return [(node(i), node((i + 1) % length)) for i in range(length)]


def grid(width: int, height: int) -> List[Edge]:
    """Right/down moves on a ``width × height`` grid (acyclic)."""
    edges: List[Edge] = []

    def cell(x: int, y: int) -> Atom:
        return Atom(f"g{x}_{y}")

    for x in range(width):
        for y in range(height):
            if x + 1 < width:
                edges.append((cell(x, y), cell(x + 1, y)))
            if y + 1 < height:
                edges.append((cell(x, y), cell(x, y + 1)))
    return edges


def complete(size: int) -> List[Edge]:
    """All ordered pairs of distinct nodes."""
    return [
        (node(i), node(j)) for i in range(size) for j in range(size) if i != j
    ]


def binary_tree(depth: int) -> List[Edge]:
    """A complete binary tree, edges parent → child."""
    edges: List[Edge] = []
    for index in range(2 ** depth - 1):
        for child in (2 * index + 1, 2 * index + 2):
            if child < 2 ** (depth + 1) - 1:
                edges.append((node(index), node(child)))
    return edges


def random_graph(size: int, edge_probability: float, seed: int = 0) -> List[Edge]:
    """A seeded Erdős–Rényi-style directed graph (self-loops allowed —
    they matter for the WIN game's undefined positions)."""
    rng = random.Random(seed)
    edges: List[Edge] = []
    for i in range(size):
        for j in range(size):
            if rng.random() < edge_probability:
                edges.append((node(i), node(j)))
    return edges


def star(size: int) -> List[Edge]:
    """Hub ``n0`` pointing at ``size - 1`` leaves."""
    return [(node(0), node(i)) for i in range(1, size)]


def edges_to_relation(edges: List[Edge], name: str = "MOVE") -> Relation:
    """Edges as a set of pairs (the algebra-side encoding)."""
    return Relation((tup(source, target) for source, target in edges), name=name)


def edges_to_database(edges: List[Edge], predicate: str = "move") -> Database:
    """Edges as a binary predicate (the deduction-side encoding)."""
    database = Database().declare(predicate)
    for source, target in edges:
        database.add(predicate, source, target)
    return database


def nodes_of(edges: List[Edge]) -> List[Atom]:
    """All endpoints of an edge list, first-seen order."""
    seen = []
    noted = set()
    for source, target in edges:
        for endpoint in (source, target):
            if endpoint not in noted:
                noted.add(endpoint)
                seen.append(endpoint)
    return seen
