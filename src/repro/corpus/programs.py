"""The shared corpus of deductive and algebraic programs.

Every test suite and benchmark harness draws from this corpus, so the
equivalence theorems are exercised on the same programs everywhere.
Each entry records whether the program is stratified and which predicates
carry the interesting answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.programs import AlgebraProgram, Dialect
from ..datalog.ast import Program
from ..datalog.parser import parse_program
from ..lang.parser import parse_algebra_program

__all__ = [
    "DeductiveCase",
    "AlgebraCase",
    "DEDUCTIVE_CORPUS",
    "ALGEBRA_CORPUS",
    "deductive_case",
    "algebra_case",
]


@dataclass(frozen=True)
class DeductiveCase:
    """A named deductive program with metadata."""

    name: str
    source: str
    predicates: Tuple[str, ...]
    stratified: bool
    uses_functions: bool = False

    @property
    def program(self) -> Program:
        """Parse the source into a program (fresh each call)."""
        return parse_program(self.source, name=self.name)


@dataclass(frozen=True)
class AlgebraCase:
    """A named ``algebra=`` program with metadata."""

    name: str
    source: str
    results: Tuple[str, ...]
    dialect: Dialect = Dialect.ALGEBRA_EQ
    always_defined: bool = True

    @property
    def program(self) -> AlgebraProgram:
        """Parse the source into a program (fresh each call)."""
        return parse_algebra_program(self.source, dialect=self.dialect, name=self.name)


_DEDUCTIVE: Tuple[DeductiveCase, ...] = (
    DeductiveCase(
        "transitive-closure",
        """
        tc(X, Y) :- move(X, Y).
        tc(X, Z) :- move(X, Y), tc(Y, Z).
        """,
        ("tc",),
        stratified=True,
    ),
    DeductiveCase(
        "win-move",
        """
        win(X) :- move(X, Y), not win(Y).
        """,
        ("win",),
        stratified=False,
    ),
    DeductiveCase(
        "win-lose-draw",
        """
        win(X) :- move(X, Y), not win(Y).
        position(X) :- move(X, Y).
        position(Y) :- move(X, Y).
        """,
        ("win", "position"),
        stratified=False,
    ),
    DeductiveCase(
        "unreachable",
        """
        tc(X, Y) :- move(X, Y).
        tc(X, Z) :- move(X, Y), tc(Y, Z).
        node(X) :- move(X, Y).
        node(Y) :- move(X, Y).
        unreach(X, Y) :- node(X), node(Y), not tc(X, Y).
        """,
        ("tc", "unreach"),
        stratified=True,
    ),
    DeductiveCase(
        "same-generation",
        """
        node(X) :- move(X, Y).
        node(Y) :- move(X, Y).
        sg(X, X) :- node(X).
        sg(X, Y) :- move(XP, X), sg(XP, YP), move(YP, Y).
        """,
        ("sg",),
        stratified=True,
    ),
    DeductiveCase(
        "choice",
        """
        p :- not q.
        q :- not p.
        r :- p.
        r :- q.
        s :- p, q.
        """,
        ("p", "q", "r", "s"),
        stratified=False,
    ),
    DeductiveCase(
        "double-negation",
        """
        node(X) :- move(X, Y).
        node(Y) :- move(X, Y).
        out(X) :- node(X), not win(X).
        win(X) :- move(X, Y), not win(Y).
        safe(X) :- node(X), not out(X).
        """,
        ("win", "out", "safe"),
        stratified=False,
    ),
    DeductiveCase(
        "arith-evens",
        """
        even(0).
        even(N) :- even(M), N = add2(M), N <= 20.
        odd(N) :- even(M), N = succ(M), N <= 20.
        """,
        ("even", "odd"),
        stratified=True,
        uses_functions=True,
    ),
    DeductiveCase(
        "tuples",
        """
        pair(P) :- move(X, Y), P = [X, Y].
        swapped(P) :- move(X, Y), P = [Y, X].
        sym(P) :- pair(P), swapped(P).
        asym(P) :- pair(P), not swapped(P).
        """,
        ("pair", "sym", "asym"),
        stratified=True,
    ),
    DeductiveCase(
        "zero-arity",
        """
        hasmoves :- move(X, Y).
        hascycleish :- move(X, X).
        quiet :- not hasmoves.
        active :- hasmoves, not hascycleish.
        """,
        ("hasmoves", "hascycleish", "quiet", "active"),
        stratified=True,
    ),
    DeductiveCase(
        "nested-tuples",
        """
        pp(P) :- move(X, Y), move(Y, Z), P = [[X, Y], [Y, Z]].
        firsthop(H) :- pp(P), H = comp1(P).
        deep(X) :- pp(P), X = comp1(comp1(P)).
        """,
        ("pp", "firsthop", "deep"),
        stratified=True,
    ),
    DeductiveCase(
        "sources-sinks",
        """
        src(X) :- move(X, Y).
        snk(Y) :- move(X, Y).
        pure_src(X) :- src(X), not snk(X).
        pure_snk(X) :- snk(X), not src(X).
        inner(X) :- src(X), snk(X).
        """,
        ("pure_src", "pure_snk", "inner"),
        stratified=True,
    ),
    DeductiveCase(
        "arith-squares",
        """
        n(0).
        n(Y) :- n(X), Y = succ(X), Y <= 6.
        sq(S) :- n(X), S = mul(X, X).
        nonsq(X) :- n(X), not sq(X).
        """,
        ("n", "sq", "nonsq"),
        stratified=True,
        uses_functions=True,
    ),
)


_ALGEBRA: Tuple[AlgebraCase, ...] = (
    AlgebraCase(
        "win-game",
        """
        relations MOVE;
        WIN = pi1(MOVE - (pi1(MOVE) * WIN));
        """,
        ("WIN",),
        always_defined=False,
    ),
    AlgebraCase(
        "transitive-closure",
        """
        relations MOVE;
        TC = MOVE u map[[it.1.1, it.2.2]](sigma[it.1.2 = it.2.1](MOVE * TC));
        """,
        ("TC",),
    ),
    AlgebraCase(
        "positions",
        """
        relations MOVE;
        POS = pi1(MOVE) u pi2(MOVE);
        SINKS = POS - pi1(MOVE);
        """,
        ("POS", "SINKS"),
    ),
    AlgebraCase(
        "derived-operators",
        """
        relations A, B;
        inter(s, t) = s - (s - t);
        xor(s, t) = (s - t) u (t - s);
        I = inter(A, B);
        X = xor(A, B);
        """,
        ("I", "X"),
    ),
    AlgebraCase(
        "paradox",
        """
        relations A;
        S = A - S;
        """,
        ("S",),
        always_defined=False,
    ),
    AlgebraCase(
        "double-subtraction",
        """
        relations A;
        S = A - (A - S);
        """,
        ("S",),
    ),
    AlgebraCase(
        "win-closure-mix",
        """
        relations MOVE;
        WIN = pi1(MOVE - (pi1(MOVE) * WIN));
        TC = MOVE u map[[it.1.1, it.2.2]](sigma[it.1.2 = it.2.1](MOVE * TC));
        WINPAIRS = sigma[it.1 != it.2](TC - (TC - (WIN * WIN)));
        """,
        ("WIN", "TC", "WINPAIRS"),
        always_defined=False,
    ),
    AlgebraCase(
        "mutual-negation",
        """
        relations MOVE;
        P = pi1(MOVE) - Q;
        Q = pi2(MOVE) - P;
        """,
        ("P", "Q"),
        always_defined=False,
    ),
    AlgebraCase(
        "nested-map",
        """
        relations MOVE;
        NEST = map[[it, [it, it]]](pi1(MOVE));
        BACK = pi1(NEST);
        DEEP = map[it.2.1](NEST);
        """,
        ("NEST", "BACK", "DEEP"),
    ),
    AlgebraCase(
        "selection-heavy",
        """
        relations A;
        SMALL = sigma[it <= 3](A);
        BIG = A - SMALL;
        DOUBLED = map[mul(it, 2)](SMALL);
        MIX = (SMALL * BIG) u (BIG * SMALL);
        LEFTS = pi1(MIX);
        """,
        ("SMALL", "BIG", "DOUBLED", "MIX", "LEFTS"),
    ),
)


DEDUCTIVE_CORPUS: Dict[str, DeductiveCase] = {case.name: case for case in _DEDUCTIVE}
ALGEBRA_CORPUS: Dict[str, AlgebraCase] = {case.name: case for case in _ALGEBRA}


def deductive_case(name: str) -> DeductiveCase:
    """Look up a deductive corpus entry by name."""
    return DEDUCTIVE_CORPUS[name]


def algebra_case(name: str) -> AlgebraCase:
    """Look up an algebra corpus entry by name."""
    return ALGEBRA_CORPUS[name]
