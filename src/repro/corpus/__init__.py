"""Shared workloads: graph generators and the program corpus."""

from .graphs import (
    binary_tree,
    chain,
    complete,
    cycle,
    edges_to_database,
    edges_to_relation,
    grid,
    node,
    nodes_of,
    random_graph,
    star,
)
from .programs import (
    ALGEBRA_CORPUS,
    DEDUCTIVE_CORPUS,
    AlgebraCase,
    DeductiveCase,
    algebra_case,
    deductive_case,
)

__all__ = [
    "node",
    "chain",
    "cycle",
    "grid",
    "complete",
    "binary_tree",
    "random_graph",
    "star",
    "edges_to_relation",
    "edges_to_database",
    "nodes_of",
    "DeductiveCase",
    "AlgebraCase",
    "DEDUCTIVE_CORPUS",
    "ALGEBRA_CORPUS",
    "deductive_case",
    "algebra_case",
]
