"""Immutable, versioned model snapshots — the service's primary read path.

A :class:`ModelSnapshot` captures one complete, consistent model of a
materialized view: the certainly-true rows *and* the undefined rows
(the three-valued distinction Theorems 4.2/6.2 of the paper turn on —
a degraded view keeps serving both statuses, not just the true rows),
plus a per-view **generation** number, a staleness flag, and a lazy
content fingerprint.

Snapshots are the RCU publication unit.  Writers (the update and
recompute paths of :class:`~repro.service.views.MaterializedView`)
construct a fully immutable snapshot and publish it with a single
atomic reference swap while holding the per-view lock; readers pick up
whatever snapshot is currently published — no lock, no copy — and are
guaranteed a complete model at some recent version, never a mid-batch
state.

Maintenance is **delta-driven**, not copy-driven: ``apply_delta``
builds the successor snapshot in O(|delta|) by stacking the batch's
net plus/minus sets on per-predicate copy-on-write cells.  Unchanged
predicates share their cells with the parent snapshot outright;
changed predicates get a thin delta cell whose full row set is
materialized lazily (and memoized) on first read.  A depth cap bounds
the delta chains, so a long unread update burst compacts periodically
instead of accumulating unboundedly.

**Compaction** (:meth:`ModelSnapshot.compact`) flattens delta chains
proactively: it forces the lazy materialization of every cell deeper
than a cap, so the first read after a write-heavy/read-light burst
does not pay the chain walk.  Because a cell memoizes its row set with
one atomic state swap, compaction changes no observable value —
``rows()`` and ``fingerprint`` are identical before and after — and is
safe to run concurrently with lock-free readers (a racing reader
either recomputes the same frozenset or picks up the memoized one).
The :class:`~repro.service.views.MaterializedView` publish path runs
it every Nth publish, and :class:`~repro.service.compactor.
SnapshotCompactor` runs it from a background thread.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from ..relations.values import Value

__all__ = ["ModelSnapshot"]

Row = Tuple[Value, ...]

_EMPTY: FrozenSet[Row] = frozenset()

#: Delta cells deeper than this are compacted (materialized eagerly) at
#: publish time, bounding both read-side recursion and chain memory.
MAX_DELTA_DEPTH = 16


class _Cell:
    """One predicate's rows: a materialized frozenset, or a delta.

    The single ``_state`` tuple is swapped atomically when a lazy delta
    cell materializes, so racing readers either recompute the same
    frozenset (benign duplicate work) or pick up the memoized one —
    never a torn intermediate.
    """

    __slots__ = ("_state",)

    def __init__(self, state: tuple):
        self._state = state

    @classmethod
    def frozen(cls, rows: Iterable[Row]) -> "_Cell":
        return cls(("frozen", frozenset(rows)))

    @classmethod
    def delta(
        cls,
        parent: "_Cell",
        plus: FrozenSet[Row],
        minus: FrozenSet[Row],
        depth: int,
    ) -> "_Cell":
        return cls(("delta", parent, plus, minus, depth))

    @property
    def depth(self) -> int:
        state = self._state
        return 0 if state[0] == "frozen" else state[4]

    def rows(self) -> FrozenSet[Row]:
        state = self._state
        if state[0] == "frozen":
            return state[1]
        _tag, parent, plus, minus, _depth = state
        rows = (parent.rows() - minus) | plus
        self._state = ("frozen", rows)
        return rows


_EMPTY_CELL = _Cell.frozen(())


class ModelSnapshot:
    """An immutable, versioned three-valued model of one view.

    ``generation`` is monotone per view and bumps on every publish;
    ``stale`` marks degraded (last-consistent-model) service;
    ``published_at`` feeds the snapshot-age gauge.  ``fingerprint`` is
    a content hash over both truth statuses, computed lazily so the
    per-batch publish cost stays proportional to the delta.
    """

    __slots__ = (
        "generation",
        "stale",
        "published_at",
        "_true",
        "_undefined",
        "_annotations",
        "_fingerprint",
    )

    def __init__(
        self,
        true_cells: Dict[str, _Cell],
        undefined: Dict[str, FrozenSet[Row]],
        generation: int,
        stale: bool,
        annotations: Optional[Dict[str, Dict[Row, str]]] = None,
    ):
        self._true = true_cells
        self._undefined = undefined
        # Per-row semiring annotations in wire text, predicate → row →
        # text.  None for boolean views (the fast path carries nothing
        # extra); annotated views always publish full snapshots, so the
        # table is immutable alongside the cells.
        self._annotations = annotations
        self.generation = generation
        self.stale = stale
        self.published_at = time.monotonic()
        self._fingerprint: Optional[str] = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def full(
        cls,
        true_rows: Mapping[str, Iterable[Row]],
        undefined_rows: Optional[Mapping[str, Iterable[Row]]] = None,
        generation: int = 1,
        stale: bool = False,
        annotations: Optional[Mapping[str, Mapping[Row, str]]] = None,
    ) -> "ModelSnapshot":
        """Snapshot a complete model (initialization / recompute)."""
        cells = {
            predicate: _Cell.frozen(rows)
            for predicate, rows in true_rows.items()
        }
        undefined = {
            predicate: frozenset(rows)
            for predicate, rows in (undefined_rows or {}).items()
            if rows
        }
        frozen_annotations = (
            {
                predicate: dict(rows)
                for predicate, rows in annotations.items()
            }
            if annotations is not None
            else None
        )
        return cls(cells, undefined, generation, stale, frozen_annotations)

    def apply_delta(
        self,
        plus: Mapping[str, Iterable[Row]],
        minus: Mapping[str, Iterable[Row]],
        generation: int,
    ) -> "ModelSnapshot":
        """The successor snapshot under a net fact delta, in O(|delta|).

        Unchanged predicates share cells with this snapshot; changed
        ones stack a copy-on-write delta cell (compacted once the chain
        hits :data:`MAX_DELTA_DEPTH`).  ``plus``/``minus`` must be the
        *net* per-predicate deltas — exactly what
        :meth:`~repro.service.incremental.IncrementalEngine.apply`
        reports.  Only total models carry deltas, so the undefined
        table is shared by reference.
        """
        cells = dict(self._true)
        for predicate in set(plus) | set(minus):
            plus_rows = frozenset(plus.get(predicate, ()))
            minus_rows = frozenset(minus.get(predicate, ()))
            if not plus_rows and not minus_rows:
                continue
            parent = cells.get(predicate, _EMPTY_CELL)
            if parent.depth + 1 > MAX_DELTA_DEPTH:
                cells[predicate] = _Cell.frozen(
                    (parent.rows() - minus_rows) | plus_rows
                )
            else:
                cells[predicate] = _Cell.delta(
                    parent, plus_rows, minus_rows, parent.depth + 1
                )
        return ModelSnapshot(cells, self._undefined, generation, False)

    # -- compaction -----------------------------------------------------------

    def max_chain_depth(self) -> int:
        """The deepest delta chain any predicate currently carries.

        0 means every cell is materialized (reads are one dict lookup).
        Already-read delta cells report 0 too: materialization collapses
        the whole chain in place.
        """
        return max(
            (cell.depth for cell in self._true.values()), default=0
        )

    def compact(self, depth_cap: int = 0) -> Tuple[int, int]:
        """Flatten every delta chain deeper than ``depth_cap``.

        Forces the lazy materialization of the affected cells, exactly
        as a reader would — so the snapshot's observable contents
        (``rows()``, ``fingerprint``) are unchanged, and racing readers
        are safe.  Returns ``(cells_compacted, rows_materialized)`` for
        the ``compactions`` / ``compaction_rows`` counters.
        """
        cells = rows_total = 0
        for cell in self._true.values():
            if cell.depth > depth_cap:
                rows_total += len(cell.rows())
                cells += 1
        return cells, rows_total

    def as_stale(self, generation: int) -> "ModelSnapshot":
        """Copy-on-degrade: the same model, flagged stale.

        Cells are shared, so degrading costs O(#predicates) — the
        robustness contract (serve the last consistent model) without
        ever having paid a precautionary full copy on the happy path.
        """
        return ModelSnapshot(
            self._true, self._undefined, generation, True, self._annotations
        )

    # -- reads ----------------------------------------------------------------

    def rows(self, predicate: str) -> FrozenSet[Row]:
        """Certainly-true rows of one predicate."""
        cell = self._true.get(predicate)
        return cell.rows() if cell is not None else _EMPTY

    def undefined_rows(self, predicate: str) -> FrozenSet[Row]:
        """Undefined-status rows of one predicate."""
        return self._undefined.get(predicate, _EMPTY)

    def annotations_for(self, predicate: str) -> Optional[Mapping[Row, str]]:
        """Wire-text semiring annotations of one predicate's true rows,
        or None when this snapshot carries none (boolean views)."""
        if self._annotations is None:
            return None
        return self._annotations.get(predicate, {})

    def predicates(self) -> FrozenSet[str]:
        """Every predicate this snapshot holds rows (of any status) for."""
        return frozenset(self._true) | frozenset(self._undefined)

    def true_rows(self) -> Dict[str, FrozenSet[Row]]:
        """The whole true table, materialized (test oracles, exports)."""
        return {
            predicate: cell.rows() for predicate, cell in self._true.items()
        }

    @property
    def fingerprint(self) -> str:
        """Content hash over both truth statuses (lazy, memoized).

        Two snapshots with identical models share a fingerprint
        regardless of the delta path that built them.
        """
        if self._fingerprint is None:
            hasher = hashlib.sha256()
            for section, table in (
                ("true", self.true_rows()),
                ("undefined", self._undefined),
            ):
                hasher.update(section.encode("utf-8"))
                hasher.update(b"\x03")
                for predicate in sorted(table):
                    hasher.update(predicate.encode("utf-8"))
                    hasher.update(b"\x00")
                    rows = sorted(
                        table[predicate], key=lambda r: tuple(map(repr, r))
                    )
                    for row in rows:
                        hasher.update(repr(row).encode("utf-8"))
                        hasher.update(b"\x01")
                    hasher.update(b"\x02")
            if self._annotations is not None:
                # Annotated snapshots hash their annotation table too
                # (wire text, so deterministic); boolean snapshots skip
                # the section and keep the pre-annotation digests.
                hasher.update(b"annotations\x03")
                for predicate in sorted(self._annotations):
                    hasher.update(predicate.encode("utf-8"))
                    hasher.update(b"\x00")
                    table = self._annotations[predicate]
                    for row in sorted(table, key=lambda r: tuple(map(repr, r))):
                        hasher.update(repr(row).encode("utf-8"))
                        hasher.update(b"\x04")
                        hasher.update(table[row].encode("utf-8"))
                        hasher.update(b"\x01")
                    hasher.update(b"\x02")
            self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    def __repr__(self) -> str:
        return (
            f"<ModelSnapshot gen={self.generation} "
            f"predicates={len(self._true)} stale={self.stale}>"
        )
