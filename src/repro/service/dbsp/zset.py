"""Z-sets: the weighted collections the delta-stream circuit computes on.

A **Z-set** maps rows to integer weights and is the DBSP notion of both
a relation (every weight is ``1``) and a *change* to a relation
(insertions carry positive weight, retractions negative).  Z-sets form
a commutative group under pointwise addition — the algebraic fact the
whole maintenance core leans on: streams of changes can be added,
negated, cancelled and re-ordered freely, and ``distinct`` recovers the
set-level view at the end.

The representation is **zero-free**: a row with weight ``0`` is absent,
so ``ZSet`` equality is group equality and ``bool(z)`` is "is this the
zero change".  The invariant is maintained by every mutator and tested
by the algebra property suite (``tests/service/test_dbsp_algebra.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from ...relations.values import Value

__all__ = ["ZSet"]

Row = Tuple[Value, ...]


class ZSet:
    """A row → integer-weight mapping with group structure.

    Mutation (:meth:`add`) is provided for the hot paths of the engine;
    the operator forms (``+``, ``-``, unary ``-``) build fresh values
    and are what the property suite exercises.
    """

    __slots__ = ("_weights",)

    def __init__(self, weights: Optional[Dict[Row, int]] = None):
        self._weights: Dict[Row, int] = {}
        if weights:
            for row, weight in weights.items():
                if weight:
                    self._weights[row] = weight

    @classmethod
    def from_rows(cls, rows: Iterable[Row], weight: int = 1) -> "ZSet":
        """The Z-set giving every listed row the same weight."""
        zset = cls()
        for row in rows:
            zset.add(row, weight)
        return zset

    # -- mapping access -------------------------------------------------------

    def get(self, row: Row, default: int = 0) -> int:
        return self._weights.get(row, default)

    def __getitem__(self, row: Row) -> int:
        return self._weights.get(row, 0)

    def __contains__(self, row: Row) -> bool:
        return row in self._weights

    def __iter__(self) -> Iterator[Row]:
        return iter(self._weights)

    def __len__(self) -> int:
        return len(self._weights)

    def __bool__(self) -> bool:
        return bool(self._weights)

    def items(self):
        return self._weights.items()

    def rows(self):
        return self._weights.keys()

    # -- group structure ------------------------------------------------------

    def add(self, row: Row, weight: int = 1) -> None:
        """Add ``weight`` to one row, dropping it when the sum is 0."""
        if not weight:
            return
        total = self._weights.get(row, 0) + weight
        if total:
            self._weights[row] = total
        else:
            del self._weights[row]

    def update(self, other: "ZSet") -> None:
        """In-place ``self += other``."""
        for row, weight in other.items():
            self.add(row, weight)

    def __add__(self, other: "ZSet") -> "ZSet":
        result = ZSet(dict(self._weights))
        result.update(other)
        return result

    def __sub__(self, other: "ZSet") -> "ZSet":
        result = ZSet(dict(self._weights))
        for row, weight in other.items():
            result.add(row, -weight)
        return result

    def __neg__(self) -> "ZSet":
        return ZSet({row: -weight for row, weight in self._weights.items()})

    def scale(self, factor: int) -> "ZSet":
        """Pointwise multiplication by an integer."""
        if not factor:
            return ZSet()
        return ZSet(
            {row: weight * factor for row, weight in self._weights.items()}
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ZSet):
            return NotImplemented
        return self._weights == other._weights

    def __hash__(self):  # pragma: no cover - mutable, not hashable
        raise TypeError("ZSet is mutable and unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{row!r}: {weight:+d}" for row, weight in sorted(self._weights.items())
        )
        return f"ZSet({{{inner}}})"

    # -- set-level views ------------------------------------------------------

    def distinct(self) -> "ZSet":
        """The set this Z-set denotes: weight 1 where the weight is > 0.

        ``distinct`` is idempotent and is the only non-linear operator
        the circuit needs — everything else is a group homomorphism.
        """
        return ZSet(
            {row: 1 for row, weight in self._weights.items() if weight > 0}
        )

    def pos(self) -> "ZSet":
        """The positive part (insertions, when read as a change)."""
        return ZSet(
            {row: weight for row, weight in self._weights.items() if weight > 0}
        )

    def neg(self) -> "ZSet":
        """The negative part (retractions), kept with negative weights."""
        return ZSet(
            {row: weight for row, weight in self._weights.items() if weight < 0}
        )

    def is_set(self) -> bool:
        """True when every weight is exactly 1 (a plain relation)."""
        return all(weight == 1 for weight in self._weights.values())
