"""The delta-stream maintenance engine.

:class:`DBSPEngine` is the DBSP-style replacement for the counting/DRed
:class:`~repro.service.incremental.IncrementalEngine` (which remains as
the ``maintenance="legacy"`` bench baseline).  The resident model is
the *integral* of a stream of update batches; one call to
:meth:`apply_stream` is one step of the incrementalized circuit:

* the batch stream is **differentiated** into a single net Z-set of EDB
  changes (a burst of N batches collapses into one delta — insertions
  and retractions of the same fact cancel before any rule runs);
* the prepared plan's component schedule is the circuit: every
  **non-recursive** component is a linear rule-delta operator feeding an
  :class:`~repro.service.dbsp.circuit.IncrementalDistinct` node.  The
  rule delta is the bilinearity expansion
  ``Δ(L₁ ⋈ … ⋈ Lₖ) = Σᵢ new₍<ᵢ₎ ⋈ ΔLᵢ ⋈ old₍>ᵢ₎`` — each body literal
  takes its turn as the differentiated input, earlier literals are read
  at the new view, later ones at the old view, and a negated literal
  contributes the negated delta (``Δ(¬q) = −Δq``, the 3-valued
  stratified reading);
* every **recursive** component is a *nested fixpoint* operator: the
  inner fixpoint's own delta stream is replayed as retraction closure
  (weights ≤ 0 propagate until fixpoint), support re-derivation, and
  insertion closure — the incrementalization of ``fix`` the DBSP
  literature builds from ``δ₀``/``∫``, realised here set-at-a-time so
  the nested stream is never materialised;
* the net per-predicate set-level deltas are committed to the resident
  state and returned, preserving the engine summary contract the view
  layer feeds to ``ModelSnapshot.apply_delta``.

Negative integrated weights (a retraction that was never counted) raise
:class:`~repro.service.incremental.IncrementalMaintenanceError`, the
same correctness valve the view layer already knows how to answer with
a from-scratch rebuild.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ...datalog.ast import Const, Literal, Rule, Var, eval_term
from ...datalog.database import Database
from ...datalog.grounding import _compare
from ...datalog.seminaive import DirectEvaluator
from ...datalog.stratification import NotStratifiedError
from ...relations.universe import FunctionRegistry
from ...relations.values import Value
from ...robustness import (
    BudgetExceeded,
    EvaluationBudget,
    fault_point,
)
from ..incremental import IncrementalMaintenanceError
from ..metrics import ViewMetrics
from ..registry import Component, PreparedProgram
from .circuit import IncrementalDistinct, NegativeWeightError
from .zset import ZSet

__all__ = ["DBSPEngine"]

Row = Tuple[Value, ...]
FactDelta = Dict[str, Set[Row]]
Batch = Tuple[Iterable[Tuple[str, Row]], Iterable[Tuple[str, Row]]]

# Row-source directives for the weighted variant walker.  For match
# steps: NEW = current state, OLD = state rewound by the net deltas so
# far, ("rows", S) = an explicit set, ("delta", Z) = the differentiated
# input — rows drawn from a Z-set, each carrying its weight into the
# product.  For negtest steps NEW/OLD test the ground atom against the
# corresponding view, ("in", S) requires membership, and ("delta", Z)
# contributes the atom's (already sign-flipped) delta weight.
NEW = ("new",)
OLD = ("old",)


class DBSPEngine:
    """A resident model maintained as the integral of a delta stream.

    API-compatible with the legacy engine: ``edb``, ``state``,
    ``model()``, ``rows()``, ``apply()``, ``initialize()``, ``budget``
    — plus :meth:`apply_stream`, the burst entry point the coalescing
    update queue drains into.
    """

    def __init__(
        self,
        prepared: PreparedProgram,
        database: Optional[Database] = None,
        registry: Optional[FunctionRegistry] = None,
        metrics: Optional[ViewMetrics] = None,
        max_rounds: int = 100_000,
        budget: Optional[EvaluationBudget] = None,
    ):
        if not prepared.stratified:
            raise NotStratifiedError(
                f"program {prepared.name!r} is not stratified; delta-stream "
                "maintenance requires the stratified fast path"
            )
        self.prepared = prepared
        self.registry = registry
        self.metrics = metrics if metrics is not None else ViewMetrics()
        self.max_rounds = max_rounds
        self.budget = budget
        self.edb = (database or Database()).copy()
        for predicate, row in prepared.seed_facts:
            if not self.edb.holds(predicate, *row):
                self.edb.add(predicate, *row)
        self.state = DirectEvaluator(registry)
        # One IncrementalDistinct node per non-recursive rule head: its
        # integrated weights count derivations (plus 1 per EDB row), so
        # presence is simply "integrated weight > 0".
        self.distinct_nodes: Dict[str, IncrementalDistinct] = {}
        self._linear: Set[str] = {
            predicate
            for component in prepared.schedule
            if component.has_rules() and not component.recursive
            for predicate in component.predicates
        }
        self.initialize()

    # -- initial evaluation ---------------------------------------------------

    def initialize(self) -> None:
        """(Re)compute the model from scratch, establishing integrals."""
        fault_point("incremental.initialize")
        self.state = DirectEvaluator(self.registry)
        self.distinct_nodes = {
            predicate: IncrementalDistinct() for predicate in self._linear
        }
        for predicate in self.edb.predicates():
            node = self.distinct_nodes.get(predicate)
            for row in self.edb.rows(predicate):
                self.state.add(predicate, row)
                if node is not None:
                    node.weights[row] = node.weights.get(row, 0) + 1
        for component in self.prepared.schedule:
            if not component.has_rules():
                continue
            if component.recursive:
                self._initial_fixpoint(component)
            else:
                self._initial_linear(component)

    def _initial_linear(self, component: Component) -> None:
        (predicate,) = component.predicates
        node = self.distinct_nodes[predicate]
        for rule, order in component.rules:
            for head_row, weight in self._fire(rule, order, {}):
                node.weights[head_row] = node.weights.get(head_row, 0) + weight
                self.state.add(predicate, head_row)

    def _initial_fixpoint(self, component: Component) -> None:
        delta: FactDelta = {}
        for rule, order in component.rules:
            for row, _weight in self._fire(rule, order, {}):
                if self.state.add(rule.head.predicate, row):
                    delta.setdefault(rule.head.predicate, set()).add(row)
        for _round in range(self.max_rounds):
            if not delta:
                return
            if self.budget is not None:
                self.budget.note_iteration(phase="dbsp-initialize")
            next_delta: FactDelta = {}
            for rule, order in component.rules:
                for step, (kind, payload) in enumerate(order):
                    if kind != "match":
                        continue
                    predicate = payload.atom.predicate
                    if predicate not in component.predicates:
                        continue
                    rows = delta.get(predicate)
                    if not rows:
                        continue
                    directives = {step: ("rows", rows)}
                    for row, _weight in self._fire(rule, order, directives):
                        if self.state.add(rule.head.predicate, row):
                            next_delta.setdefault(
                                rule.head.predicate, set()
                            ).add(row)
            delta = next_delta
        raise BudgetExceeded(
            f"component {sorted(component.predicates)} did not converge "
            f"within {self.max_rounds} rounds",
            progress=self.budget.progress if self.budget is not None else None,
        )

    # -- the model ------------------------------------------------------------

    def model(self) -> Dict[str, FrozenSet[Row]]:
        """The resident model, predicate → rows (EDB and IDB alike)."""
        return {
            predicate: frozenset(rows)
            for predicate, rows in self.state.facts.items()
        }

    def rows(self, predicate: str) -> FrozenSet[Row]:
        """Current rows of one predicate."""
        return frozenset(self.state.facts.get(predicate, ()))

    # -- update batches -------------------------------------------------------

    def apply(
        self,
        inserts: Iterable[Tuple[str, Row]] = (),
        deletes: Iterable[Tuple[str, Row]] = (),
    ) -> Dict[str, object]:
        """Maintain the model under one update batch.

        A single-element stream: same contract as the legacy engine —
        the returned ``plus``/``minus`` sets are net, and applying
        ``(rows - minus) | plus`` to the pre-batch model yields the
        post-batch model (load-bearing for snapshot maintenance).
        """
        return self.apply_stream([(inserts, deletes)])

    def apply_stream(self, batches: Sequence[Batch]) -> Dict[str, object]:
        """Absorb a burst of update batches in **one** circuit pass.

        The batches are differentiated into a single net EDB delta
        before any rule fires, so a fact inserted then deleted inside
        the burst costs nothing downstream, and the whole burst yields
        one net per-predicate delta for a single snapshot publish.
        """
        fault_point("incremental.apply")
        if self.budget is not None:
            self.budget.check(phase="dbsp-apply")
        seed: Dict[str, ZSet] = {}
        applied_inserts = applied_deletes = 0
        for inserts, deletes in batches:
            for predicate, row in deletes:
                row = tuple(row)
                if self.edb.holds(predicate, *row):
                    self.edb.discard(predicate, *row)
                    seed.setdefault(predicate, ZSet()).add(row, -1)
                    applied_deletes += 1
            for predicate, row in inserts:
                row = tuple(row)
                if not self.edb.holds(predicate, *row):
                    self.edb.add(predicate, *row)
                    seed.setdefault(predicate, ZSet()).add(row, 1)
                    applied_inserts += 1
        seed = {predicate: z for predicate, z in seed.items() if z}

        plus: FactDelta = {}
        minus: FactDelta = {}
        self._plus = plus
        self._minus = minus

        try:
            self._run_circuit(seed)
        except NegativeWeightError as exc:
            raise IncrementalMaintenanceError(str(exc)) from exc

        batch_count = len(batches)
        self.metrics.bump("update_batches", batch_count)
        self.metrics.bump("incremental_batches", batch_count)
        self.metrics.bump("circuit_steps")
        if batch_count > 1:
            self.metrics.bump("delta_batches_coalesced", batch_count - 1)
        self.metrics.bump("inserts_applied", applied_inserts)
        self.metrics.bump("deletes_applied", applied_deletes)
        delta_plus = sum(len(rows) for rows in plus.values())
        delta_minus = sum(len(rows) for rows in minus.values())
        self.metrics.bump("delta_plus_total", delta_plus)
        self.metrics.bump("delta_minus_total", delta_minus)
        return {
            "delta_plus": delta_plus,
            "delta_minus": delta_minus,
            "batches": batch_count,
            "plus": {p: frozenset(rows) for p, rows in plus.items() if rows},
            "minus": {p: frozenset(rows) for p, rows in minus.items() if rows},
        }

    def _run_circuit(self, seed: Dict[str, ZSet]) -> None:
        """One step of the lifted circuit over the net EDB delta."""
        scheduled: Set[str] = set()
        for component in self.prepared.schedule:
            scheduled |= component.predicates
        # Predicates no rule mentions change the model directly.
        for predicate, zset in seed.items():
            if predicate not in scheduled:
                self._commit_zset(predicate, zset)

        for component in self.prepared.schedule:
            if not component.has_rules():
                for predicate in component.predicates:
                    zset = seed.get(predicate)
                    if zset:
                        self._commit_zset(predicate, zset)
                continue
            touched = any(
                self._plus.get(p) or self._minus.get(p) or seed.get(p)
                for p in self._body_predicates(component) | component.predicates
            )
            if not touched:
                continue
            fault_point("incremental.component")
            if self.budget is not None:
                self.budget.note_iteration(phase="dbsp-maintain")
            if component.recursive:
                self._fixpoint_delta(component, seed)
            else:
                self._linear_delta(component, seed)

    def _body_predicates(self, component: Component) -> Set[str]:
        predicates: Set[str] = set()
        for rule, _order in component.rules:
            for literal in rule.positive_literals() + rule.negative_literals():
                predicates.add(literal.atom.predicate)
        return predicates

    # -- net-delta bookkeeping ------------------------------------------------

    def _commit_add(self, predicate: str, row: Row) -> bool:
        if not self.state.add(predicate, row):
            return False
        minus = self._minus.get(predicate)
        if minus is not None and row in minus:
            minus.discard(row)
        else:
            self._plus.setdefault(predicate, set()).add(row)
        return True

    def _commit_remove(self, predicate: str, row: Row) -> bool:
        if not self.state.remove(predicate, row):
            return False
        plus = self._plus.get(predicate)
        if plus is not None and row in plus:
            plus.discard(row)
        else:
            self._minus.setdefault(predicate, set()).add(row)
        return True

    def _commit_zset(self, predicate: str, delta: ZSet) -> None:
        for row, weight in delta.items():
            if weight > 0:
                self._commit_add(predicate, row)
            else:
                self._commit_remove(predicate, row)

    # -- linear components: one bilinearity sweep -----------------------------

    def _trigger(self, predicate: str, negate: bool = False) -> Optional[ZSet]:
        """The set-level delta of an already-maintained predicate, as a
        Z-set — sign-flipped for a negated occurrence (``Δ(¬q) = −Δq``)."""
        plus = self._plus.get(predicate)
        minus = self._minus.get(predicate)
        if not plus and not minus:
            return None
        zset = ZSet()
        positive = -1 if negate else 1
        for row in plus or ():
            zset.add(row, positive)
        for row in minus or ():
            zset.add(row, -positive)
        return zset or None

    def _linear_delta(self, component: Component, seed: Dict[str, ZSet]) -> None:
        """Maintain a non-recursive component in one weighted sweep.

        Each rule's delta is the bilinearity expansion: every body
        literal takes one turn as the differentiated input while
        earlier literals read the new view and later ones the old view
        — each surviving rule instance is counted exactly once, with
        the product sign.  The head's IncrementalDistinct node turns
        the weighted delta into the set-level commit.
        """
        (predicate,) = component.predicates
        delta = ZSet()
        seeded = seed.get(predicate)
        if seeded is not None:
            delta.update(seeded)
        for rule, order in component.rules:
            positions = [
                step for step, (kind, _p) in enumerate(order)
                if kind in ("match", "negtest")
            ]
            for index, step in enumerate(positions):
                kind, payload = order[step]
                trigger = self._trigger(
                    payload.atom.predicate, negate=(kind == "negtest")
                )
                if trigger is None:
                    continue
                directives: Dict[int, Tuple] = {step: ("delta", trigger)}
                for earlier in positions[:index]:
                    directives[earlier] = NEW
                for later in positions[index + 1:]:
                    directives[later] = OLD
                for head_row, weight in self._fire(rule, order, directives):
                    delta.add(head_row, weight)
        if delta:
            self._commit_zset(
                predicate, self.distinct_nodes[predicate].step(delta)
            )

    # -- recursive components: the nested fixpoint operator -------------------

    def _fixpoint_delta(self, component: Component, seed: Dict[str, ZSet]) -> None:
        """Maintain a recursive component as one nested-fixpoint step.

        The incrementalization of the inner fixpoint runs in three
        sub-streams, none of which materialises the nested trace:
        retraction closure (the negative half of the delta, propagated
        to fixpoint against the old view), support re-derivation (rows
        whose retraction was an over-approximation rejoin), and
        insertion closure (the positive half, semi-naive against the
        new view).
        """
        seed_minus: FactDelta = {}
        seed_plus: FactDelta = {}
        for predicate in component.predicates:
            zset = seed.get(predicate)
            if not zset:
                continue
            negatives = set(zset.neg().rows())
            positives = set(zset.pos().rows())
            if negatives:
                seed_minus[predicate] = negatives
            if positives:
                seed_plus[predicate] = positives
        with self.metrics.phase("overdelete"):
            retracted = self._retract_closure(component, seed_minus)
            for predicate, rows in retracted.items():
                for row in rows:
                    self._commit_remove(predicate, row)
        with self.metrics.phase("rederive"):
            support_seeds = self._support_rederive(component, retracted)
        with self.metrics.phase("insert_close"):
            self._insert_closure(component, seed_plus, support_seeds)

    def _retract_closure(
        self, component: Component, seed_minus: FactDelta
    ) -> FactDelta:
        """Close the retraction delta: every row whose old derivation
        touched a retracted fact.  The component's own facts are still
        untouched in ``state`` (their old view); earlier components are
        rewound via the net deltas committed so far."""
        retracted: FactDelta = {}
        delta: FactDelta = {}
        for predicate in component.predicates:
            for row in seed_minus.get(predicate, ()):
                if row in self.state.facts.get(predicate, ()):
                    retracted.setdefault(predicate, set()).add(row)
                    delta.setdefault(predicate, set()).add(row)

        def collect(rule: Rule, order, directives) -> None:
            predicate = rule.head.predicate
            for head_row, _weight in self._fire(rule, order, directives):
                if head_row not in self.state.facts.get(predicate, ()):
                    continue
                if head_row in retracted.get(predicate, ()):
                    continue
                retracted.setdefault(predicate, set()).add(head_row)
                next_delta.setdefault(predicate, set()).add(head_row)

        # Round 0: derivations broken by *earlier-component* deltas — a
        # positive literal that lost rows, or a negated atom that
        # became true.  All other literals read the old view.
        next_delta: FactDelta = {}
        for rule, order in component.rules:
            for step, (kind, payload) in enumerate(order):
                if kind == "match":
                    body_pred = payload.atom.predicate
                    if body_pred in component.predicates:
                        continue
                    trigger = self._minus.get(body_pred)
                    if trigger:
                        collect(
                            rule, order,
                            self._all_old(order, {step: ("rows", trigger)}),
                        )
                elif kind == "negtest":
                    trigger = self._plus.get(payload.atom.predicate)
                    if trigger:
                        collect(
                            rule, order,
                            self._all_old(order, {step: ("in", trigger)}),
                        )
        for predicate, rows in next_delta.items():
            delta.setdefault(predicate, set()).update(rows)

        for _round in range(self.max_rounds):
            if not delta:
                break
            if self.budget is not None:
                self.budget.note_iteration(phase="dbsp-retract")
            next_delta = {}
            for rule, order in component.rules:
                for step, (kind, payload) in enumerate(order):
                    if kind != "match":
                        continue
                    body_pred = payload.atom.predicate
                    if body_pred not in component.predicates:
                        continue
                    rows = delta.get(body_pred)
                    if not rows:
                        continue
                    collect(
                        rule, order,
                        self._all_old(order, {step: ("rows", rows)}),
                    )
            delta = next_delta
        else:
            raise BudgetExceeded(
                f"retraction closure of {sorted(component.predicates)} did "
                f"not converge within {self.max_rounds} rounds",
                progress=self.budget.progress if self.budget is not None else None,
            )
        total = sum(len(rows) for rows in retracted.values())
        if total:
            self.metrics.bump("overdeleted_total", total)
        return retracted

    def _all_old(self, order, overrides) -> Dict[int, Tuple]:
        directives = dict(overrides)
        for step, (kind, _payload) in enumerate(order):
            if kind in ("match", "negtest") and step not in directives:
                directives[step] = OLD
        return directives

    def _support_rederive(
        self, component: Component, retracted: FactDelta
    ) -> FactDelta:
        """Rows with alternative support rejoin: still a base fact, or
        derivable from the post-retraction state (a per-row constrained
        query, not a full join)."""
        seeds: FactDelta = {}
        rederived = 0
        for predicate, rows in retracted.items():
            for row in rows:
                restored = self.edb.holds(predicate, *row)
                if not restored:
                    for rule, order in component.rules:
                        if rule.head.predicate != predicate:
                            continue
                        if self._derivable(rule, order, row):
                            restored = True
                            break
                if restored:
                    self._commit_add(predicate, row)
                    seeds.setdefault(predicate, set()).add(row)
                    rederived += 1
        if rederived:
            self.metrics.bump("rederived_total", rederived)
        return seeds

    def _derivable(self, rule: Rule, order, row: Row) -> bool:
        """Does the rule derive exactly ``row`` from the current state?"""
        binding: Dict[Var, Value] = {}
        for arg, value in zip(rule.head.args, row):
            if isinstance(arg, Var):
                if arg in binding and binding[arg] != value:
                    return False
                binding[arg] = value
            elif isinstance(arg, Const):
                if arg.value != value:
                    return False
            # FuncTerm head args: checked against the produced row below.
        for head_row, _weight in self._fire(rule, order, {}, initial=binding):
            if head_row == row:
                return True
        return False

    def _insert_closure(
        self,
        component: Component,
        seed_plus: FactDelta,
        support_seeds: FactDelta,
    ) -> None:
        """Close the insertion delta semi-naively over the new view."""
        delta: FactDelta = {}
        for predicate, rows in support_seeds.items():
            delta.setdefault(predicate, set()).update(rows)
        for predicate in component.predicates:
            for row in seed_plus.get(predicate, ()):
                if self._commit_add(predicate, row):
                    delta.setdefault(predicate, set()).add(row)

        def produce(rule: Rule, order, directives, sink: FactDelta) -> None:
            predicate = rule.head.predicate
            for head_row, _weight in self._fire(rule, order, directives):
                if self._commit_add(predicate, head_row):
                    sink.setdefault(predicate, set()).add(head_row)

        # Round 0 triggers from earlier components: a positive literal
        # that gained rows, or a negated atom that became false.
        for rule, order in component.rules:
            for step, (kind, payload) in enumerate(order):
                if kind == "match":
                    body_pred = payload.atom.predicate
                    if body_pred in component.predicates:
                        continue
                    trigger = self._plus.get(body_pred)
                    if trigger:
                        produce(rule, order, {step: ("rows", trigger)}, delta)
                elif kind == "negtest":
                    trigger = self._minus.get(payload.atom.predicate)
                    if trigger:
                        produce(rule, order, {step: ("in", trigger)}, delta)

        for _round in range(self.max_rounds):
            if not delta:
                return
            if self.budget is not None:
                self.budget.note_iteration(phase="dbsp-insert-close")
            next_delta: FactDelta = {}
            for rule, order in component.rules:
                for step, (kind, payload) in enumerate(order):
                    if kind != "match":
                        continue
                    body_pred = payload.atom.predicate
                    if body_pred not in component.predicates:
                        continue
                    rows = delta.get(body_pred)
                    if not rows:
                        continue
                    produce(rule, order, {step: ("rows", rows)}, next_delta)
            delta = next_delta
        raise BudgetExceeded(
            f"insertion closure of {sorted(component.predicates)} did not "
            f"converge within {self.max_rounds} rounds",
            progress=self.budget.progress if self.budget is not None else None,
        )

    # -- the weighted variant walker ------------------------------------------

    def _old_holds(self, predicate: str, row: Row) -> bool:
        if row in self._minus.get(predicate, ()):
            return True
        return (
            row in self.state.facts.get(predicate, ())
            and row not in self._plus.get(predicate, ())
        )

    def _match_rows(self, literal: Literal, binding, directive):
        predicate = literal.atom.predicate
        tag = directive[0]
        if tag == "rows":
            return directive[1]
        base = self.state._candidates(
            literal, binding, self.state.facts.get(predicate, set())
        )
        if tag == "new":
            return base
        if tag == "old":
            plus = self._plus.get(predicate, ())
            filtered = (
                [row for row in base if row not in plus] if plus else list(base)
            )
            minus = self._minus.get(predicate)
            if minus:
                filtered.extend(minus)
            return filtered
        raise AssertionError(directive)

    def _neg_passes(self, predicate: str, row: Row, directive) -> bool:
        tag = directive[0]
        if tag == "in":
            return row in directive[1]
        if tag == "new":
            return row not in self.state.facts.get(predicate, ())
        if tag == "old":
            return not self._old_holds(predicate, row)
        raise AssertionError(directive)

    def _fire(
        self,
        rule: Rule,
        order,
        directives: Dict[int, Tuple],
        initial: Optional[Dict[Var, Value]] = None,
    ) -> List[Tuple[Row, int]]:
        """All ``(head row, weight)`` pairs derivable under per-step
        row-source directives.

        Each leaf of the walk is one rule *instance*; its weight is the
        product of the step weights, which is ±1: every step is a set
        or set-level delta, and at most one step carries a delta.
        """
        self.metrics.bump("rules_fired")
        produced: List[Tuple[Row, int]] = []
        registry = self.registry
        state = self.state

        def emit(binding: Dict[Var, Value], weight: int) -> None:
            head_row = tuple(
                eval_term(arg, binding, registry) for arg in rule.head.args
            )
            if all(value is not None for value in head_row):
                produced.append((head_row, weight))

        def walk(step: int, binding: Dict[Var, Value], weight: int) -> None:
            if step == len(order):
                emit(binding, weight)
                return
            kind, payload = order[step]
            if kind == "match":
                literal: Literal = payload
                directive = directives.get(step, NEW)
                if directive[0] == "delta":
                    for row, row_weight in directive[1].items():
                        for extended in state._match(literal, binding, (row,)):
                            walk(step + 1, extended, weight * row_weight)
                    return
                rows = self._match_rows(literal, binding, directive)
                for extended in state._match(literal, binding, list(rows)):
                    walk(step + 1, extended, weight)
                return
            if kind == "assign":
                mode, comparison = payload
                if mode == "assign-left":
                    variable, expr = comparison.left, comparison.right
                else:
                    variable, expr = comparison.right, comparison.left
                value = eval_term(expr, binding, registry)
                if value is None:
                    return
                extended = dict(binding)
                extended[variable] = value
                walk(step + 1, extended, weight)
                return
            if kind == "test":
                comparison = payload
                left = eval_term(comparison.left, binding, registry)
                right = eval_term(comparison.right, binding, registry)
                if left is not None and right is not None and _compare(
                    comparison.op, left, right
                ):
                    walk(step + 1, binding, weight)
                return
            if kind == "negtest":
                literal = payload
                row = tuple(
                    eval_term(arg, binding, registry) for arg in literal.atom.args
                )
                if any(value is None for value in row):
                    return
                directive = directives.get(step, NEW)
                if directive[0] == "delta":
                    row_weight = directive[1].get(row)
                    if row_weight:
                        walk(step + 1, binding, weight * row_weight)
                    return
                if self._neg_passes(literal.atom.predicate, row, directive):
                    walk(step + 1, binding, weight)
                return
            raise AssertionError(kind)

        walk(0, dict(initial) if initial else {}, 1)
        return produced
