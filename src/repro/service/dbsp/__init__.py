"""DBSP-style delta-stream maintenance.

The maintenance core of the service: materialized views are maintained
as the integral of a *stream* of update batches by an incrementalized
circuit built from Z-sets (:mod:`.zset`), the integrate/differentiate
pair and incremental distinct (:mod:`.circuit`), a weighted delta
engine over the prepared rule plans (:mod:`.engine`), and the bounded
group-commit queue that lets the server coalesce write bursts into
single circuit passes (:mod:`.queue`).  See ``docs/DBSP.md``.
"""

from .circuit import (
    IncrementalDistinct,
    NegativeWeightError,
    differentiate,
    integrate,
    running_integral,
)
from .engine import DBSPEngine
from .queue import Ticket, UpdateQueue
from .zset import ZSet

__all__ = [
    "ZSet",
    "integrate",
    "running_integral",
    "differentiate",
    "IncrementalDistinct",
    "NegativeWeightError",
    "DBSPEngine",
    "UpdateQueue",
    "Ticket",
]
