"""The bounded update queue behind write coalescing.

Writers submit their batch as a :class:`Ticket` and then race for the
view lock.  Whoever wins becomes the **leader**: it drains every queued
ticket (up to the coalescing limit), pushes the whole burst through one
circuit pass and one snapshot publish, journals the batches, and
completes the tickets.  The losers find their ticket already completed
when they get the lock — group commit, in the classic WAL sense, for
maintenance work.

The queue is bounded: :meth:`UpdateQueue.submit` blocks while the queue
is full, which backpressures writers instead of letting a slow view
accumulate unbounded memory.  Progress is guaranteed without a
dedicated drainer thread because every enqueued ticket has a live owner
heading for the view lock — at worst each owner drains its own ticket.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Iterable, List, Optional, Tuple

__all__ = ["Ticket", "UpdateQueue"]


class Ticket:
    """One submitted update batch and its eventual outcome."""

    __slots__ = ("inserts", "deletes", "_event", "_result", "_error")

    def __init__(self, inserts, deletes):
        self.inserts = inserts
        self.deletes = deletes
        self._event = threading.Event()
        self._result = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def complete(self, result) -> None:
        self._result = result
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def outcome(self, timeout: Optional[float] = None):
        """Block until the leader settles this ticket; return its
        summary or re-raise the error its batch died with."""
        if not self._event.wait(timeout):
            raise TimeoutError("update ticket was never drained")
        if self._error is not None:
            raise self._error
        return self._result


class UpdateQueue:
    """A bounded FIFO of pending update tickets for one view."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._items: Deque[Ticket] = deque()

    def submit(self, inserts, deletes) -> Ticket:
        """Enqueue a batch, blocking while the queue is full."""
        ticket = Ticket(inserts, deletes)
        with self._space:
            while len(self._items) >= self.capacity:
                self._space.wait()
            self._items.append(ticket)
        return ticket

    def drain(self, limit: int) -> List[Ticket]:
        """Pop up to ``limit`` tickets in FIFO order (leader only)."""
        with self._space:
            count = min(limit, len(self._items))
            drained = [self._items.popleft() for _ in range(count)]
            if drained:
                self._space.notify_all()
        return drained

    def withdraw(self, ticket: Ticket) -> bool:
        """Remove a still-queued ticket; False when a leader owns it."""
        with self._space:
            try:
                self._items.remove(ticket)
            except ValueError:
                return False
            self._space.notify_all()
            return True

    def depth(self) -> int:
        """How many batches are queued right now (the gauge)."""
        with self._lock:
            return len(self._items)
