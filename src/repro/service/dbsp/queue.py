"""The bounded update queue behind write coalescing.

Writers submit their batch as a :class:`Ticket` and then race for the
view lock.  Whoever wins becomes the **leader**: it drains every queued
ticket (up to the coalescing limit), pushes the whole burst through one
circuit pass and one snapshot publish, journals the batches, and
completes the tickets.  The losers find their ticket already completed
when they get the lock — group commit, in the classic WAL sense, for
maintenance work.

The queue is bounded: :meth:`UpdateQueue.submit` blocks while the queue
is full, which backpressures writers instead of letting a slow view
accumulate unbounded memory.  Progress is guaranteed without a
dedicated drainer thread because every enqueued ticket has a live owner
heading for the view lock — at worst each owner drains its own ticket.
That guarantee fails when a leader *dies* (an injected fault, a bug)
with the queue full: without a bound on the wait, every parked writer
would hang forever.  Both waits are therefore deadline-aware —
:meth:`UpdateQueue.submit` and :meth:`Ticket.outcome` raise the
wire-coded :class:`~repro.robustness.errors.UpdateTimeout` once the
request deadline passes, and the caller withdraws the ticket so a
timed-out write can never apply later.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import deque
from typing import Deque, Iterable, List, Optional, Tuple

from ...robustness.errors import UpdateTimeout

__all__ = ["Ticket", "UpdateQueue"]


def _per_waiter_copy(error: BaseException) -> BaseException:
    """A private clone of a settled ticket's error for one waiter.

    A single exception *instance* re-raised from several loser threads
    is mutated concurrently — each ``raise`` rewrites the shared
    ``__traceback__``, cross-contaminating the diagnostics every thread
    reports.  Each waiter gets a shallow copy (same args, same
    ``progress`` payload), chained to the shared original via
    ``__cause__`` so the leader's traceback stays reachable exactly
    once.  Exceptions that refuse to copy fall back to the shared
    instance — no worse than the old behavior.
    """
    try:
        clone = copy.copy(error)
    except Exception:  # pragma: no cover - exotic uncopyable exception
        return error
    clone.__traceback__ = None
    clone.__cause__ = error
    clone.__suppress_context__ = True
    return clone


class Ticket:
    """One submitted update batch and its eventual outcome."""

    __slots__ = ("inserts", "deletes", "_event", "_result", "_error")

    def __init__(self, inserts, deletes):
        self.inserts = inserts
        self.deletes = deletes
        self._event = threading.Event()
        self._result = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def complete(self, result) -> None:
        self._result = result
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def outcome(self, timeout: Optional[float] = None):
        """Block until the leader settles this ticket; return its
        summary or re-raise the error its batch died with.

        Several losers may wait on one coalesced ticket, so the error
        is re-raised as a per-waiter copy (see :func:`_per_waiter_copy`)
        — concurrent raises must not fight over one ``__traceback__``.
        """
        if not self._event.wait(timeout):
            raise UpdateTimeout(
                "update ticket was not drained before the deadline"
            )
        if self._error is not None:
            raise _per_waiter_copy(self._error)
        return self._result


class UpdateQueue:
    """A bounded FIFO of pending update tickets for one view."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._items: Deque[Ticket] = deque()

    def submit(
        self, inserts, deletes, timeout: Optional[float] = None
    ) -> Ticket:
        """Enqueue a batch, blocking while the queue is full.

        With a ``timeout`` (seconds) the wait for space is bounded:
        when the queue is still full at the deadline — every owner of a
        queued ticket is itself stuck, i.e. the drain leader died —
        :class:`~repro.robustness.errors.UpdateTimeout` is raised and
        nothing was enqueued.
        """
        ticket = Ticket(inserts, deletes)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._space:
            while len(self._items) >= self.capacity:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise UpdateTimeout(
                            "update queue stayed full past the deadline "
                            f"(capacity {self.capacity})"
                        )
                self._space.wait(remaining)
            self._items.append(ticket)
        return ticket

    def drain(self, limit: int) -> List[Ticket]:
        """Pop up to ``limit`` tickets in FIFO order (leader only)."""
        with self._space:
            count = min(limit, len(self._items))
            drained = [self._items.popleft() for _ in range(count)]
            if drained:
                self._space.notify_all()
        return drained

    def withdraw(self, ticket: Ticket) -> bool:
        """Remove a still-queued ticket; False when a leader owns it."""
        with self._space:
            try:
                self._items.remove(ticket)
            except ValueError:
                return False
            self._space.notify_all()
            return True

    def depth(self) -> int:
        """How many batches are queued right now (the gauge)."""
        with self._lock:
            return len(self._items)
