"""Stream operators of the delta circuit: I, D, and incremental distinct.

DBSP views a maintained relation as a *stream* of Z-sets and builds
every incremental operator from four primitives: lifted pointwise
operators, the **integrator** ``I`` (running sum), the
**differentiator** ``D`` (consecutive difference), and a unit delay.
This module keeps exactly the stream-level pieces the engine and the
property suite need:

* :func:`integrate` / :func:`running_integral` — ``I`` as a fold and as
  a stream;
* :func:`differentiate` — ``D``; ``differentiate`` after
  ``running_integral`` is the identity (and vice versa), which is the
  executable statement of the inversion law ``D ∘ I = id`` the property
  suite checks;
* :class:`IncrementalDistinct` — the incrementalized non-linear
  operator ``D ∘ ↑distinct ∘ I`` fused into a stateful node: it holds
  the integrated weights and turns each weighted delta into the
  **set-level** delta (±1 per row whose integrated weight crossed
  zero).  This is the node that sits at every non-recursive head
  predicate of the engine's circuit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ...relations.values import Value
from .zset import ZSet

__all__ = [
    "integrate",
    "running_integral",
    "differentiate",
    "IncrementalDistinct",
    "NegativeWeightError",
]

Row = Tuple[Value, ...]


def integrate(deltas: Iterable[ZSet]) -> ZSet:
    """``I`` as a fold: the sum of a finite stream of changes."""
    total = ZSet()
    for delta in deltas:
        total.update(delta)
    return total


def running_integral(deltas: Iterable[ZSet]) -> List[ZSet]:
    """``I`` as a stream: prefix sums of the input stream."""
    total = ZSet()
    out: List[ZSet] = []
    for delta in deltas:
        total = total + delta
        out.append(total)
    return out


def differentiate(values: Sequence[ZSet]) -> List[ZSet]:
    """``D``: consecutive differences, with an implicit zero before
    the first element (so ``differentiate(running_integral(s)) == s``)."""
    out: List[ZSet] = []
    previous = ZSet()
    for value in values:
        out.append(value - previous)
        previous = value
    return out


class NegativeWeightError(ValueError):
    """An integrated weight went negative — a retraction of a
    derivation that was never counted.  The engine maps this onto its
    maintenance valve (rebuild from scratch) rather than serving from a
    corrupt integral."""


class IncrementalDistinct:
    """Stateful ``(distinct)^Δ``: weighted deltas in, set deltas out.

    The node owns the integrated weight of every row (its ``I`` state).
    Feeding it a delta moves the weights and emits ``+1`` for rows whose
    total crossed from ≤0 to >0 and ``-1`` for the reverse — exactly
    the change of ``distinct`` of the integral, computed in
    O(|delta|).  Derivation counting à la counting-maintenance is this
    node's state, re-derived from first principles.
    """

    __slots__ = ("weights",)

    def __init__(self, weights: Optional[Dict[Row, int]] = None):
        self.weights: Dict[Row, int] = dict(weights or {})

    def integral(self) -> ZSet:
        """The current integrated Z-set (the ``I`` state)."""
        return ZSet(dict(self.weights))

    def output(self) -> ZSet:
        """The current set-level output (``distinct`` of the integral)."""
        return ZSet({row: 1 for row, weight in self.weights.items() if weight > 0})

    def step(self, delta: ZSet) -> ZSet:
        """Absorb one weighted delta; return the set-level delta."""
        weights = self.weights
        out = ZSet()
        for row, change in delta.items():
            before = weights.get(row, 0)
            after = before + change
            if after < 0:
                raise NegativeWeightError(
                    f"integrated weight for {row!r} fell to {after}"
                )
            if after:
                weights[row] = after
            else:
                weights.pop(row, None)
            if before <= 0 < after:
                out.add(row, 1)
            elif after <= 0 < before:
                out.add(row, -1)
        return out
