"""The demand registry: one ready-gated view per demanded pattern.

When a bound-pattern query (``query big tc(a, _)``) arrives, the
service magic-rewrites the view's program for that binding pattern
(:mod:`repro.datalog.magic`) and materializes the rewritten program as
its own :class:`~repro.service.views.MaterializedView` — the *demand
entry*.  The entry's evaluation is restricted to the facts reachable
from the demanded constants, it is maintained incrementally through the
same delta-stream circuit as the base view (base updates are propagated
into every ready entry), and demanding a *new* constant for an existing
pattern is just an incremental insert into the entry's pure-EDB seed
predicate.

This module owns the entry lifecycle:

* **ready gating** — an entry is published to the copy-on-write lookup
  table *before* its view is built, carrying a :class:`threading.Event`;
  concurrent first queries for the same pattern find the shell and wait
  on the gate instead of racing duplicate builds.  A failed build parks
  the error on the entry (re-raised per waiter) and the creator
  discards the shell.
* **LRU eviction** — cold patterns are evicted once the table exceeds
  its capacity, least-recently-used first (touch timestamps are written
  racily without a lock; eviction only needs an ordering, not an exact
  one).  Entries still building are never evicted mid-build.
* **bounded republish** — the lookup table is copy-on-write (reads are
  wait-free, like the service name table), and every mutating operation
  — register **plus** whatever evictions it triggers, or dropping all
  of a view's entries at unregister — republishes **once**.  The
  ``republishes`` / ``copied_cells`` counters make the bound testable:
  an eviction storm of N churn events copies O(N · capacity) cells, not
  O(N²).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from ..datalog.magic import MagicProgram
from ..robustness.errors import DeadlineExceeded
from .dbsp.queue import _per_waiter_copy
from .locks import AtomicReference

__all__ = ["DemandEntry", "DemandRegistry"]

#: (view name, view generation, predicate, adornment) — the pattern key.
DemandKey = Tuple[str, int, str, str]


class DemandEntry:
    """One demanded binding pattern and its materialized cone."""

    __slots__ = (
        "key",
        "lock",
        "_ready",
        "view",
        "magic",
        "error",
        "seeded",
        "last_used",
    )

    def __init__(self, key: DemandKey):
        self.key = key
        #: Leaf lock serializing seed inserts and update propagation
        #: into :attr:`view`.  Always acquired *after* the base view
        #: lock when both are held (propagation); queries take it alone.
        self.lock = threading.Lock()
        self._ready = threading.Event()
        self.view = None  # MaterializedView, or None for fallback entries
        self.magic: Optional[MagicProgram] = None
        self.error: Optional[BaseException] = None
        #: Bound-value rows already inserted into the seed predicate.
        self.seeded: set = set()
        self.last_used = time.monotonic()

    @property
    def settled(self) -> bool:
        """Has the build finished (successfully or not)?"""
        return self._ready.is_set()

    @property
    def demand_driven(self) -> bool:
        """True when this entry answers from a magic-rewritten view
        (False: a memoized decision to fall back to the full view)."""
        return self.view is not None

    def touch(self) -> None:
        """Record a use for LRU ordering (racy by design)."""
        self.last_used = time.monotonic()

    def complete(self, view, magic: Optional[MagicProgram]) -> None:
        """Publish the built view (or a fallback marker) and open the gate."""
        self.view = view
        self.magic = magic
        self.touch()
        self._ready.set()

    def fail(self, error: BaseException) -> None:
        """Park a build failure and open the gate."""
        self.error = error
        self._ready.set()

    def wait_ready(self, timeout: Optional[float] = None):
        """Block until the build settles; return the view (``None`` for
        a fallback entry) or re-raise the build error per waiter."""
        if not self._ready.wait(timeout):
            raise DeadlineExceeded(
                "demand view was not ready before the deadline"
            )
        if self.error is not None:
            raise _per_waiter_copy(self.error)
        return self.view


class DemandRegistry:
    """Copy-on-write table of demand entries with batched LRU eviction."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("demand capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._table: AtomicReference = AtomicReference({})
        #: Mutating operations performed (each republished exactly once).
        self.republishes = 0
        #: Total cells copied across all republishes — the cost bound
        #: the COW-churn stress test asserts on.
        self.copied_cells = 0

    # -- wait-free read side ------------------------------------------------

    def lookup(self, key: DemandKey) -> Optional[DemandEntry]:
        """The entry for a pattern, LRU-touched; ``None`` on miss."""
        entry = self._table.get().get(key)
        if entry is not None:
            entry.touch()
        return entry

    def size(self) -> int:
        """How many patterns are resident (the gauge)."""
        return len(self._table.get())

    def entries_for(self, name: str, generation: int) -> List[DemandEntry]:
        """The *ready, demand-driven* entries of one view generation —
        the set a base update must be propagated into."""
        return [
            entry
            for key, entry in self._table.get().items()
            if key[0] == name
            and key[1] == generation
            and entry.settled
            and entry.view is not None
        ]

    # -- write side: one republish per operation ----------------------------

    def _publish(self, table: Dict[DemandKey, DemandEntry]) -> None:
        self._table.set(table)
        self.republishes += 1
        self.copied_cells += len(table)

    def get_or_create(
        self, key: DemandKey
    ) -> Tuple[DemandEntry, bool, List[DemandKey]]:
        """The entry for a pattern, creating an unsettled shell on miss.

        Returns ``(entry, created, evicted_keys)``.  The shell is
        visible to concurrent readers immediately (they wait on its
        ready gate); any LRU evictions the insert triggers happen under
        the same hold with the same single republish.
        """
        entry = self.lookup(key)
        if entry is not None:
            return entry, False, []
        with self._lock:
            table = self._table.get()
            entry = table.get(key)
            if entry is not None:
                entry.touch()
                return entry, False, []
            evicted: List[DemandKey] = []
            if len(table) >= self.capacity:
                candidates = sorted(
                    (k for k, e in table.items() if e.settled),
                    key=lambda k: table[k].last_used,
                )
                over = len(table) - self.capacity + 1
                evicted = candidates[:over]
            entry = DemandEntry(key)
            updated = {
                k: v for k, v in table.items() if k not in set(evicted)
            }
            updated[key] = entry
            self._publish(updated)
            return entry, True, evicted

    def discard(self, key: DemandKey, entry: DemandEntry) -> bool:
        """Remove a specific entry (failed build, poisoned propagation);
        a no-op when the table has moved on to a different entry."""
        with self._lock:
            table = self._table.get()
            if table.get(key) is not entry:
                return False
            updated = {k: v for k, v in table.items() if k != key}
            self._publish(updated)
            return True

    def drop_view(self, name: str) -> int:
        """Batch-remove every entry of a view (unregister / re-register)
        under one hold with one republish; returns how many went."""
        with self._lock:
            table = self._table.get()
            doomed = [k for k in table if k[0] == name]
            if not doomed:
                return 0
            updated = {
                k: v for k, v in table.items() if k[0] != name
            }
            self._publish(updated)
            return len(doomed)

    def close(self) -> None:
        """Drop everything (service shutdown)."""
        with self._lock:
            self._publish({})
