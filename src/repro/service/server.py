"""The query service and its line protocol.

:class:`QueryService` is the long-lived facade the ``repro serve`` CLI
exposes: registered programs (compiled once), one materialized view per
program, a shared LRU result cache invalidated by the update path, and
per-view plus service-level metrics.

Concurrency model (snapshot reads over per-view write locks):

* **queries are wait-free end to end**: every view publishes an
  immutable, versioned :class:`~repro.service.snapshot.ModelSnapshot`
  through an atomic reference, and the **name table** itself is
  copy-on-write — writers build a new immutable ``dict`` of
  ``name → (view, generation)`` under the registry write lock and
  publish it via a single atomic reference swap, so a query resolves
  its view name, picks up the published snapshot, and answers with
  **zero lock acquisitions**.  A query that cannot be served from a
  snapshot (recompute-mode view whose model trails its database) falls
  back to the locked path below;
* a registry-level :class:`~repro.service.locks.ReadWriteLock` guards
  the mutable registry structures — ``register``/``unregister`` take
  the write side (and republish the name table before releasing it,
  so the table can never disagree with the registry), while locked
  fallback reads, updates, and admin verbs take the read side just
  long enough to resolve the name (``read_mode="locked"`` keeps this
  as the whole read path, the benchmark baseline for
  ``benchmarks/bench_p09_wait_free_reads.py``);
* each view carries its own
  :class:`~repro.service.locks.InstrumentedLock`, held by **writers**
  (updates, recompute, recovery) and by fallback reads — update
  batches against *different* views proceed fully in parallel through
  the socket server's worker pool, while batches on the same view stay
  serialised, and the snapshot swap happens inside the hold so a
  reader can never observe a half-applied batch;
* because a request resolves ``(view, lock)`` under the read lock but
  acquires the view lock *afterwards*, every locked request re-checks
  that the name still maps to the same view once it holds the lock,
  and retries the resolution when it lost a race with ``register`` /
  ``unregister`` (``unregister`` itself takes the view lock before
  the write lock, so an acknowledged update is never silently dropped
  by a concurrent unregistration);
* result-cache keys carry a per-registration **generation** token
  (bumped under the write lock on every register) *and* the view's
  snapshot generation (bumped on every publish), so a ``cache.put``
  completed by an in-flight request against a replaced view — or
  against a model version that has since moved on — lands under a
  dead key and can never be served to later queries.

The wire format is a newline-delimited request/response protocol,
servable from stdin/stdout or a unix socket::

    register <view> <semantics> <program-file-or-inline-text>
    unregister <view>
    +<view> <fact>           e.g.  +tc edge(a, b).
    -<view> <fact>           e.g.  -tc edge(a, b).
    query <view> <predicate>
    query <view> <pred>(a, _)   bound-pattern (demand-driven) query
    stats [<view>]
    metrics [--format=prometheus]
    views                    (alias: list)
    quit

Replies are one or more lines: ``row <atom>`` lines for queries,
followed by a single ``ok ...`` line, or one ``error <reason>`` line.
``stats`` and ``metrics`` reply ``ok`` followed by a JSON document on
the same line.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..datalog.ast import Const, Var
from ..datalog.database import Database
from ..datalog.engine import SEMANTICS
from ..datalog.magic import adornment_for, magic_transform
from ..datalog.parser import _Parser, _tokenize, parse_program
from ..relations.universe import FunctionRegistry
from ..relations.values import Value, format_value
from ..robustness import (
    EvaluationBudget,
    ReproError,
    RequestTooLarge,
    UpdateTimeout,
    fault_point,
)
from ..semiring import Semiring, get_semiring
from .cache import LRUCache
from .compactor import SnapshotCompactor
from .demand import DemandRegistry
from .locks import AtomicReference, InstrumentedLock, ReadWriteLock
from .metrics import ServiceMetrics, ViewMetrics
from .registry import ProgramRegistry, prepare_program
from .views import MaterializedView

__all__ = [
    "QueryService",
    "serve_stream",
    "serve_unix_socket",
    "parse_fact",
    "parse_annotated_fact",
    "parse_bound_pattern",
]

logger = logging.getLogger(__name__)

Row = Tuple[Value, ...]


def parse_fact(text: str) -> Tuple[str, Row]:
    """Parse one ground fact (``edge(a, b)`` or ``edge(a, b).``)."""
    text = text.strip()
    if not text.endswith("."):
        text += "."
    program = parse_program(text)
    if (
        len(program.rules) != 1
        or not program.rules[0].is_fact()
        or program.rules[0].vars()
    ):
        raise ValueError(f"expected a single ground fact, got {text!r}")
    head = program.rules[0].head
    return head.predicate, tuple(arg.value for arg in head.args)


def parse_annotated_fact(text: str) -> Tuple[str, Row, Optional[str]]:
    """Parse a fact with an optional ``@ <annotation>`` suffix.

    ``edge(a, b) @ 3`` → ``("edge", (a, b), "3")``; a plain fact
    returns annotation ``None``.  The annotation text is opaque here —
    the update path decodes it against the target view's semiring.
    Only an ``@`` *after* the argument list is a separator, so values
    containing ``@`` never confuse the split.
    """
    text = text.strip()
    close = text.rfind(")")
    marker = text.find("@", close + 1 if close >= 0 else 0)
    if marker == -1:
        predicate, row = parse_fact(text)
        return predicate, row, None
    fact_text = text[:marker].strip()
    annotation = text[marker + 1 :].strip()
    predicate, row = parse_fact(fact_text)
    return predicate, row, annotation or None


class QueryService:
    """Registered programs, resident views, result cache, metrics.

    ``deadline_ms`` (optional) imposes a wall-clock deadline on every
    expensive per-request operation (recompute, incremental batch) by
    handing each one a fresh :class:`~repro.robustness.EvaluationBudget`.

    ``lock_mode`` picks the write-side concurrency discipline:
    ``"view"`` (the default) shards the service lock per view so
    different views are maintained fully in parallel; ``"global"`` is
    the old one-big-lock behaviour, kept as the benchmark baseline
    (``benchmarks/bench_p07_concurrent_throughput.py``).

    ``read_mode`` picks the read path: ``"snapshot"`` (the default)
    serves queries wait-free — name resolution off the copy-on-write
    name table, the answer off the view's published model snapshot —
    falling back to the locked path only when no servable snapshot
    exists; ``"locked"`` forces every query through the registry read
    lock and the view lock — the pre-snapshot behaviour, kept as the
    benchmark baseline (``benchmarks/bench_p08_snapshot_reads.py``,
    ``benchmarks/bench_p09_wait_free_reads.py``).

    ``compactor`` bounds the delta-chain walk a write burst leaves for
    the first reader: ``"on-publish"`` (the default) flattens chains
    past ``compact_depth`` every ``compact_interval``-th snapshot
    publish, inside the write path; ``"thread"`` leaves the write path
    untouched and sweeps from a background
    :class:`~repro.service.compactor.SnapshotCompactor` daemon (stop it
    with :meth:`close`); ``"off"`` disables compaction below the hard
    publish-time cap (the bench baseline).

    ``queue_capacity`` bounds each view's group-commit update queue;
    ``demand_capacity`` bounds how many demanded binding patterns stay
    resident in the demand registry (:meth:`query_pattern`) before the
    least-recently-used is evicted.
    """

    def __init__(
        self,
        function_registry: Optional[FunctionRegistry] = None,
        cache_capacity: int = 256,
        max_rounds: int = 10_000,
        max_atoms: int = 1_000_000,
        deadline_ms: Optional[float] = None,
        lock_mode: str = "view",
        read_mode: str = "snapshot",
        compactor: str = "on-publish",
        compact_depth: int = 4,
        compact_interval: int = 8,
        data_dir: Optional[str] = None,
        fsync: str = "batch",
        checkpoint_every: int = 256,
        maintenance: str = "dbsp",
        coalesce: Optional[int] = None,
        queue_capacity: int = 256,
        demand_capacity: int = 64,
        semiring: str = "bool",
    ):
        if lock_mode not in ("view", "global"):
            raise ValueError(f"unknown lock_mode {lock_mode!r}")
        if read_mode not in ("snapshot", "locked"):
            raise ValueError(f"unknown read_mode {read_mode!r}")
        if compactor not in ("off", "on-publish", "thread"):
            raise ValueError(f"unknown compactor {compactor!r}")
        if maintenance not in ("dbsp", "legacy"):
            raise ValueError(f"unknown maintenance {maintenance!r}")
        if coalesce is None:
            # The delta-stream engine absorbs a drained burst in one
            # circuit pass, so group commit pays off by default; the
            # legacy engine replays burst batches one by one, so it
            # defaults to the historical per-batch path (the bench
            # P12 baseline).
            coalesce = 64 if maintenance == "dbsp" else 1
        if coalesce < 1:
            raise ValueError("coalesce must be >= 1")
        self.registry = ProgramRegistry()
        self.views: Dict[str, MaterializedView] = {}
        self.cache = LRUCache(cache_capacity)
        self.function_registry = function_registry
        self.max_rounds = max_rounds
        self.max_atoms = max_atoms
        self.deadline_ms = deadline_ms
        self.lock_mode = lock_mode
        self.read_mode = read_mode
        self.maintenance = maintenance
        self.coalesce = coalesce
        self.queue_capacity = queue_capacity
        # Service-level default annotation algebra for registrations
        # that do not pick their own (the ``--semiring`` serve flag).
        # Validated eagerly so a typo fails at construction.
        get_semiring(semiring)
        self.default_semiring = semiring
        # One ready-gated magic-rewritten view per demanded binding
        # pattern, LRU-evicted (see docs/MAGIC.md).
        self.demand = DemandRegistry(demand_capacity)
        self.compactor_mode = compactor
        self.compact_depth = compact_depth
        self.compact_interval = compact_interval
        self.metrics = ServiceMetrics()
        self._registry_lock = ReadWriteLock()
        self._locks: Dict[str, InstrumentedLock] = {}
        # The copy-on-write name table: an immutable dict of
        # name → (view, generation), rebuilt by register/unregister
        # under the registry write lock and published with one atomic
        # reference swap.  Snapshot-mode queries resolve names here
        # with zero lock acquisitions; the dict behind the reference is
        # never mutated, so a resolver holding an old table keeps a
        # complete, consistent view of the world it was published in.
        self._name_table: AtomicReference = AtomicReference({})
        # COW-churn accounting, mirroring the demand registry's
        # counters: every register/unregister rebuilds the whole name
        # table exactly once, so ``name_table_republishes`` counts
        # churn events and ``name_table_copied_cells`` the cells those
        # rebuilds copied — N churn events over V views copy O(N · V)
        # cells, never O(N²); the bound is a tested invariant.
        self.name_table_republishes = 0
        self.name_table_copied_cells = 0
        # Per-registration generation tokens (guarded by the registry
        # write lock).  Cache keys embed the generation, so entries put
        # on behalf of a replaced registration are unreachable from the
        # moment the replacement is swapped in.
        self._generations: Dict[str, int] = {}
        self._generation_counter = 0
        self._global_lock = (
            InstrumentedLock("*", self.metrics.record_lock)
            if lock_mode == "global"
            else None
        )
        self._background_compactor: Optional[SnapshotCompactor] = None
        if compactor == "thread":
            self._background_compactor = SnapshotCompactor(self)
            self._background_compactor.start()
        # The durability plane (inert without a data directory): program
        # sources are remembered so checkpoints and the WAL can carry
        # them; registrations/unregistrations/update batches are
        # journaled inside the same holds that serialise them; and a
        # fresh service on a non-empty data directory recovers before
        # taking traffic.
        self._sources: Dict[str, str] = {}
        self.durability = None
        self.last_recovery = None
        if data_dir is not None:
            from .durability import DurabilityManager, recover_service

            self.durability = DurabilityManager(
                data_dir,
                fsync=fsync,
                checkpoint_every=checkpoint_every,
                on_event=self.metrics.bump,
            )
            try:
                self.last_recovery = recover_service(self, self.durability)
            except BaseException:
                # Release the directory lock; no checkpoint of the
                # half-recovered state.
                self.durability.close(final_checkpoint=False)
                raise
            # Attached only after recovery succeeds, so a failed
            # recovery can never checkpoint a half-restored world.
            self.durability.attach(capture=self._durability_capture)

    def close(self) -> None:
        """Release background machinery (the compactor thread, if any).

        Idempotent — safe to call twice, from competing shutdown paths,
        or after a failed construction (e.g. the compactor thread never
        came up): the compactor reference is detached *before* the stop
        so a second caller finds nothing left to do, and a stop that
        raises still leaves the service closed.  The service keeps
        answering requests afterwards — only the background sweeps
        stop.
        """
        # getattr: a service whose __init__ died before the attribute
        # was assigned must still close cleanly.
        compactor = getattr(self, "_background_compactor", None)
        self._background_compactor = None
        if compactor is not None:
            compactor.stop()
        demand = getattr(self, "demand", None)
        if demand is not None:
            demand.close()
        durability = getattr(self, "durability", None)
        if durability is not None:
            # Final checkpoint: a graceful shutdown leaves the data
            # directory describing the exact serving state, so the next
            # cold start replays nothing.
            durability.close()

    # -- durability hooks -----------------------------------------------------

    def _journal(self, operation: Dict[str, object]) -> None:
        """Append one completed operation to the WAL (durable mode only).

        Called inside the hold that serialised the operation (the view
        lock for updates, the registry write lock for registrations),
        so per-entity log order matches apply order.  Quiet while
        recovery replays the log through these same paths.
        """
        manager = self.durability
        if manager is not None and not manager.replaying:
            manager.append(operation)

    def _maybe_checkpoint(self) -> None:
        """The checkpoint cadence — called *after* lock release, because
        the capture callback takes view locks itself."""
        manager = self.durability
        if manager is not None and not manager.replaying:
            manager.maybe_checkpoint()

    def _durability_capture(self) -> Dict[str, object]:
        """The complete serving state, as a checkpoint document.

        Each view is serialised under its own lock (program source,
        semantics, mode, the full fact set as canonical text, the
        declared predicate set, and the database fingerprint recovery
        verifies against).  Views are captured one at a time — the
        WAL suffix past the checkpoint boundary re-synchronises any
        batches that land between two captures.
        """
        snapshot = self.metrics_snapshot()
        rollup = dict(snapshot["rollup"])
        service_counters = dict(snapshot["counters"])
        views_state: Dict[str, object] = {}
        for name in sorted(self.name_table()):
            try:
                with self._locked_view(name) as (view, _generation):
                    source = self._sources.get(name)
                    if source is None:  # pre-durability registration
                        continue
                    database = view.database
                    if view.semiring == "bool":
                        facts = [
                            _format_row(predicate, row)
                            for predicate, row in database
                        ]
                        incremental = view.mode == "incremental"
                    else:
                        # Explicitly annotated facts are captured as
                        # ``fact @ text`` (the wire shape); defaulted
                        # facts stay bare and re-derive their from_edb
                        # annotation on replay.  ``mode`` is always
                        # "incremental" for annotated views, so the
                        # requested flag is captured instead.
                        semiring = view.semiring_obj
                        facts = []
                        for predicate, row in database:
                            text = _format_row(predicate, row)
                            explicit = database.annotation(predicate, row)
                            if explicit is not None:
                                text = f"{text} @ {semiring.format(explicit)}"
                            facts.append(text)
                        incremental = view.incremental
                    entry = {
                        "source": source,
                        "semantics": view.semantics,
                        "incremental": incremental,
                        "facts": facts,
                        "declared": sorted(database.predicates()),
                        "fingerprint": database.fingerprint(),
                    }
                    # Present only for annotated views: boolean
                    # checkpoints stay byte-identical to the
                    # pre-semiring format.
                    if view.semiring != "bool":
                        entry["semiring"] = view.semiring
                    views_state[name] = entry
            except KeyError:
                continue  # unregistered between listing and locking
        return {
            "views": views_state,
            "rollup": rollup,
            "service_counters": service_counters,
        }

    def _budget_factory(self) -> Optional[Callable[[], EvaluationBudget]]:
        if self.deadline_ms is None:
            return None
        deadline_ms = self.deadline_ms
        return lambda: EvaluationBudget.from_millis(deadline_ms)

    # -- registration ---------------------------------------------------------

    def register(
        self,
        name: str,
        source,
        semantics: str = "stratified",
        database: Optional[Database] = None,
        incremental: bool = True,
        semiring: Optional[str] = None,
    ) -> Dict[str, object]:
        """Register (or replace) a program and materialize its view.

        ``semiring`` picks the view's annotation algebra (defaulting to
        the service-level ``--semiring``, itself ``"bool"`` unless
        overridden).  Boolean views take exactly the pre-annotation
        code paths; any other semiring materializes through the
        annotated engine and serves per-row annotations.

        The expensive part — compiling the plan and materializing the
        initial model — runs **outside** every lock; only the final
        swap into the name table takes the registry write lock, so a
        slow registration never stalls traffic on other views.  The
        registry store, view swap, generation bump, and metrics
        absorption of a replaced view all happen under that one write
        hold, so the program table and the view table can never
        disagree and the service-wide rollup stays monotone.
        """
        if self.durability is not None and not isinstance(source, str):
            # The journal carries program *text* (the same text the
            # wire protocol delivers); an AST has no canonical source
            # to replay from.
            raise ValueError(
                "a durable service (data_dir set) registers programs "
                "from source text, not pre-parsed ASTs"
            )
        if semiring is None:
            semiring = self.default_semiring
        get_semiring(semiring)
        prepared = prepare_program(name, source)
        view = MaterializedView(
            prepared,
            database=database,
            semantics=semantics,
            registry=self.function_registry,
            metrics=ViewMetrics(sink=self.metrics),
            incremental=incremental,
            maintenance=self.maintenance,
            max_rounds=self.max_rounds,
            max_atoms=self.max_atoms,
            budget_factory=self._budget_factory(),
            compact_on_publish=self.compactor_mode == "on-publish",
            compact_depth=self.compact_depth,
            compact_interval=self.compact_interval,
            queue_capacity=self.queue_capacity,
            semiring=semiring,
        )
        with self._registry_lock.write_locked():
            self.registry.store(name, prepared)
            replaced = self.views.get(name)
            self.views[name] = view
            self._locks[name] = self._global_lock or InstrumentedLock(
                name, self.metrics.record_lock
            )
            self._generation_counter += 1
            self._generations[name] = self._generation_counter
            if replaced is not None:
                # Absorb under the same hold as the swap so a metrics
                # snapshot never sees the old view's counters in both
                # (or neither of) the live and retired sections.
                self.metrics.absorb(replaced.metrics)
            self._publish_name_table()
            if isinstance(source, str):
                self._sources[name] = source
            # Journaled under the same write hold as the swap: the log
            # position of a registration totally orders it against
            # every other registration and the updates that follow it.
            # (In durable mode ``source`` is guaranteed text, see above.)
            if isinstance(source, str):
                operation = {
                    "op": "register",
                    "view": name,
                    "source": source,
                    "semantics": semantics,
                    "incremental": incremental,
                }
                # Journaled only when non-boolean, so boolean-mode WAL
                # records stay byte-identical to the pre-semiring
                # format (and old logs replay as boolean).
                if semiring != "bool":
                    operation["semiring"] = semiring
                self._journal(operation)
        # The generation bump already makes old entries unreachable;
        # dropping them here is memory hygiene, not correctness.  Same
        # for the demand entries of a replaced registration: their keys
        # carry the old generation, so they could never be hit again.
        self.cache.invalidate(name)
        self.demand.drop_view(name)
        self.metrics.bump("registrations")
        self._maybe_checkpoint()
        info = prepared.describe()
        info["semantics"] = semantics
        info["mode"] = view.mode
        if semiring != "bool":
            info["semiring"] = semiring
        return info

    def unregister(self, name: str) -> Dict[str, object]:
        """Drop a view, rolling its metrics into the service totals.

        Takes the view's own lock *before* the registry write lock (the
        same per-view → registry order every request uses), so an
        update or query that already verified its view as current
        finishes before the view disappears — the service never
        acknowledges a write it is about to discard.
        """
        while True:
            view, lock, _generation = self._view_and_lock(name)
            with lock.held():
                with self._registry_lock.write_locked():
                    if self.views.get(name) is not view:
                        # Lost a race with a concurrent replace or
                        # unregister; resolve again (KeyError when the
                        # name is truly gone).
                        continue
                    del self.views[name]
                    self._locks.pop(name, None)
                    self._generations.pop(name, None)
                    self._sources.pop(name, None)
                    self.registry.unregister(name)
                    # Absorbed atomically with the pop — see register().
                    self.metrics.absorb(view.metrics)
                    self._journal({"op": "unregister", "view": name})
                    # Republish the name table with the entry gone: a
                    # lock-free resolver must find either the full old
                    # table or the full new one, never a half-removed
                    # entry — mutating the published dict in place
                    # could tear a concurrent iteration.
                    self._publish_name_table()
                break
        self.cache.invalidate(name)
        self.demand.drop_view(name)
        self.metrics.bump("unregistrations")
        self._maybe_checkpoint()
        return {
            "name": name,
            "mode": view.mode,
            "facts": view.database.fact_count(),
        }

    def _publish_name_table(self) -> None:
        """Rebuild and swap in the copy-on-write name table.

        Must be called under the registry write lock, after the
        ``views``/``_generations`` mutation it mirrors — so every
        published table is a complete, immutable image of some state
        the registry actually passed through.
        """
        table = {
            name: (view, self._generations[name])
            for name, view in self.views.items()
        }
        self._name_table.set(table)
        self.name_table_republishes += 1
        self.name_table_copied_cells += len(table)

    def name_table(self) -> Dict[str, Tuple[MaterializedView, int]]:
        """The published name table (lock-free; treat as immutable).

        The returned dict is the live published object: never mutate
        it.  Holding it across registrations is safe — it keeps
        describing the world it was published in.
        """
        return self._name_table.get()

    def view(self, name: str) -> MaterializedView:
        """Look up a registered view; raises ``KeyError`` when absent."""
        with self._registry_lock.read_locked():
            try:
                return self.views[name]
            except KeyError:
                raise KeyError(f"no view registered under {name!r}") from None

    def _view_and_lock(
        self, name: str
    ) -> Tuple[MaterializedView, InstrumentedLock, int]:
        with self._registry_lock.read_locked():
            try:
                return (
                    self.views[name],
                    self._locks[name],
                    self._generations[name],
                )
            except KeyError:
                raise KeyError(f"no view registered under {name!r}") from None

    @contextmanager
    def _locked_view(
        self, name: str
    ) -> Iterator[Tuple[MaterializedView, int]]:
        """Resolve a view and hold its lock, verified still current.

        The name is resolved under the registry read lock, the view
        lock is acquired, and then the binding is re-checked: a
        register/unregister that slipped in between leaves us holding
        the lock of an orphaned view, so we release it and resolve
        again.  ``KeyError`` propagates when the name is gone for good.
        Per-view locks are only ever acquired *outside* registry-lock
        holds (here and in :meth:`unregister`), so the per-view →
        registry lock order is acyclic.
        """
        while True:
            view, lock, generation = self._view_and_lock(name)
            with lock.held():
                with self._registry_lock.read_locked():
                    current = self.views.get(name) is view
                if current:
                    yield view, generation
                    return

    # -- queries --------------------------------------------------------------

    def _resolve_snapshot(self, name: str):
        """The wait-free read resolution: ``(view, generation, snapshot)``.

        Resolves the name off the published copy-on-write name table —
        one atomic reference load, zero lock acquisitions — then picks
        the view's published snapshot off its own atomic reference.
        Returns ``None`` for the snapshot when the view cannot serve
        one right now — a recompute-mode view whose model trails its
        database — or when the service runs with ``read_mode="locked"``
        (which resolves under the registry read lock, the baseline
        path); callers then take the locked fallback path.
        """
        if self.read_mode != "snapshot":
            view, _lock, generation = self._view_and_lock(name)
            return view, generation, None
        while True:
            try:
                view, generation = self._name_table.get()[name]
            except KeyError:
                raise KeyError(f"no view registered under {name!r}") from None
            snapshot = view.read_snapshot()
            # Verify the binding is still current now that the snapshot
            # is in hand — a register/unregister that completed between
            # resolve and pickup must not have its replaced view served
            # (same verify-after-acquire discipline as _locked_view,
            # but against the republished table, still without a lock).
            current = self._name_table.get().get(name)
            if current is None or current[0] is not view:
                continue
            if snapshot is not None:
                view.metrics.bump("snapshot_reads")
            return view, generation, snapshot

    def _serve_true(self, view, name, generation, snapshot, predicate):
        """Answer a true-rows query from a published snapshot."""
        view.metrics.bump("queries")
        if snapshot.stale:
            # A stale answer must never be cached and outlive the
            # degradation.
            view.metrics.bump("stale_queries")
            return snapshot.rows(predicate)
        key = (name, generation, snapshot.generation, predicate, "true")
        fault_point("cache.get")
        cached = self.cache.get(key)
        if cached is not None:
            view.metrics.bump("cache_hits")
            return cached
        view.metrics.bump("cache_misses")
        rows = snapshot.rows(predicate)
        fault_point("cache.put")
        self.cache.put(key, rows)
        return rows

    def _serve_undefined(self, view, name, generation, snapshot, predicate):
        """Answer an undefined-rows query from a published snapshot."""
        if snapshot.stale:
            return snapshot.undefined_rows(predicate)
        key = (name, generation, snapshot.generation, predicate, "undefined")
        cached = self.cache.get(key)
        if cached is not None:
            view.metrics.bump("cache_hits")
            return cached
        view.metrics.bump("cache_misses")
        rows = snapshot.undefined_rows(predicate)
        self.cache.put(key, rows)
        return rows

    def query(self, name: str, predicate: str) -> FrozenSet[Row]:
        """True rows of a predicate, served through the LRU cache.

        The primary path is lock-free: the answer comes from the view's
        published snapshot, a complete model at some recent version.
        Only a view with no servable snapshot routes through its lock.
        """
        self.metrics.bump("queries_total")
        view, generation, snapshot = self._resolve_snapshot(name)
        if snapshot is not None:
            return self._serve_true(view, name, generation, snapshot, predicate)
        with self._locked_view(name) as (view, generation):
            return self._query_locked(view, name, generation, predicate)

    def _query_locked(
        self,
        view: MaterializedView,
        name: str,
        generation: int,
        predicate: str,
    ) -> FrozenSet[Row]:
        if view.stale:
            return view.rows(predicate)
        key = (
            name, generation, view.snapshot_generation(), predicate, "true",
        )
        fault_point("cache.get")
        cached = self.cache.get(key)
        if cached is not None:
            view.metrics.bump("queries")
            view.metrics.bump("cache_hits")
            return cached
        view.metrics.bump("cache_misses")
        rows = view.rows(predicate)
        if not view.stale:
            fault_point("cache.put")
            # Re-key on the post-evaluation snapshot generation: a
            # recompute may just have published a fresh snapshot, and
            # the entry must be reachable from *its* readers.
            self.cache.put(
                (name, generation, view.snapshot_generation(), predicate,
                 "true"),
                rows,
            )
        return rows

    def undefined(self, name: str, predicate: str) -> FrozenSet[Row]:
        """Undefined rows of a predicate (three-valued semantics only)."""
        view, generation, snapshot = self._resolve_snapshot(name)
        if snapshot is not None:
            return self._serve_undefined(
                view, name, generation, snapshot, predicate
            )
        with self._locked_view(name) as (view, generation):
            return self._undefined_locked(view, name, generation, predicate)

    def _undefined_locked(
        self,
        view: MaterializedView,
        name: str,
        generation: int,
        predicate: str,
    ) -> FrozenSet[Row]:
        if view.stale:
            return view.undefined_rows(predicate)
        key = (
            name, generation, view.snapshot_generation(), predicate,
            "undefined",
        )
        cached = self.cache.get(key)
        if cached is not None:
            view.metrics.bump("cache_hits")
            return cached
        view.metrics.bump("cache_misses")
        rows = view.undefined_rows(predicate)
        if not view.stale:
            self.cache.put(
                (name, generation, view.snapshot_generation(), predicate,
                 "undefined"),
                rows,
            )
        return rows

    def query_state(
        self, name: str, predicate: str
    ) -> Tuple[FrozenSet[Row], FrozenSet[Row], bool]:
        """``(true_rows, undefined_rows, stale)`` from **one** model state.

        The protocol's ``query`` verb uses this so its whole reply is
        one linearization point.  On the snapshot path both answers and
        the staleness flag come from a single immutable snapshot, so
        they describe the same model version even while updates land
        concurrently; the locked fallback gets the same property from
        holding the view lock across both reads.
        """
        self.metrics.bump("queries_total")
        view, generation, snapshot = self._resolve_snapshot(name)
        if snapshot is not None:
            rows = self._serve_true(view, name, generation, snapshot, predicate)
            undefined = self._serve_undefined(
                view, name, generation, snapshot, predicate
            )
            return rows, undefined, snapshot.stale
        with self._locked_view(name) as (view, generation):
            rows = self._query_locked(view, name, generation, predicate)
            undefined = self._undefined_locked(
                view, name, generation, predicate
            )
            return rows, undefined, view.stale

    def query_annotated(
        self, name: str, predicate: str
    ) -> Tuple[
        FrozenSet[Row],
        FrozenSet[Row],
        bool,
        Optional[Mapping[Row, str]],
    ]:
        """:meth:`query_state` plus the per-row annotation texts.

        The fourth element maps each true row to its semiring
        annotation in wire text, or is ``None`` for boolean views (the
        protocol emits no ``explain`` lines then).  All four come from
        the same snapshot (or the same view hold), so rows and
        annotations describe one model version.
        """
        self.metrics.bump("queries_total")
        view, generation, snapshot = self._resolve_snapshot(name)
        if snapshot is not None:
            rows = self._serve_true(view, name, generation, snapshot, predicate)
            undefined = self._serve_undefined(
                view, name, generation, snapshot, predicate
            )
            return rows, undefined, snapshot.stale, snapshot.annotations_for(
                predicate
            )
        with self._locked_view(name) as (view, generation):
            rows = self._query_locked(view, name, generation, predicate)
            undefined = self._undefined_locked(
                view, name, generation, predicate
            )
            return rows, undefined, view.stale, view.annotation_texts(
                predicate
            )

    # -- bound-pattern (demand-driven) queries --------------------------------

    def query_pattern(
        self,
        name: str,
        predicate: str,
        args: Iterable[Optional[Value]],
    ) -> Tuple[FrozenSet[Row], FrozenSet[Row], bool]:
        """Answer a bound pattern like ``tc(a, _)`` demand-driven.

        ``args`` has one element per argument position: a value for a
        bound position, ``None`` for a free one.  The first query for a
        (view, predicate, adornment) pattern magic-rewrites the program
        and materializes only the demanded cone as a **demand entry**
        (see :mod:`repro.service.demand`); later queries for the same
        pattern — including different constants — are incremental: a
        new constant is one seed insert, a repeated one a snapshot read.
        Base updates are streamed into every ready entry inside the
        same view hold that applied them, so entries answer at the
        base view's committed state.

        Patterns the transform cannot restrict (all-free, EDB query
        predicates, predicates in a negation cone) and programs outside
        the demand envelope (non-stratified, inflationary semantics)
        fall back to filtering the fully materialized answer, counted
        by ``demand_fallbacks``.  Returns ``(true_rows,
        undefined_rows, stale)`` like :meth:`query_state`.
        """
        args = tuple(args)
        adornment = adornment_for(args)
        if "b" not in adornment:
            rows, undefined, stale = self.query_state(name, predicate)
            return rows, undefined, stale
        if self.read_mode == "snapshot":
            try:
                view, generation = self._name_table.get()[name]
            except KeyError:
                raise KeyError(
                    f"no view registered under {name!r}"
                ) from None
        else:
            view, _lock, generation = self._view_and_lock(name)
        arity = view.prepared.arities.get(predicate)
        if arity is not None and arity != len(args):
            raise ValueError(
                f"{predicate} has arity {arity}, pattern has {len(args)} "
                "arguments"
            )
        key = (name, generation, predicate, adornment)
        entry = self.demand.lookup(key)
        created = False
        if entry is None:
            if not self._demand_supported(view, predicate):
                return self._pattern_fallback(name, predicate, args)
            entry, created, evicted = self.demand.get_or_create(key)
            for _ in evicted:
                self.metrics.bump("demand_evictions")
        if created:
            self.metrics.bump("demand_registrations")
            try:
                self._build_demand_entry(
                    name, generation, predicate, adornment, entry
                )
            except BaseException as exc:
                entry.fail(exc)
                self.demand.discard(key, entry)
                raise
        demand_view = entry.wait_ready(self._request_timeout())
        if demand_view is None:
            # A memoized decision that demand restriction cannot help
            # this pattern (e.g. the query predicate sits in the
            # unadorned negation cone).
            return self._pattern_fallback(name, predicate, args)
        if not created:
            self.metrics.bump("demand_hits")
        self.metrics.bump("queries_total")
        bound = tuple(value for value in args if value is not None)
        self._ensure_seeded(entry, bound)
        answer_predicate = entry.magic.answer_predicate
        snapshot = demand_view.read_snapshot()
        if snapshot is not None:
            rows = snapshot.rows(answer_predicate)
            stale = snapshot.stale
        else:  # pragma: no cover - incremental views always publish
            with entry.lock:
                rows = demand_view.rows(answer_predicate)
                stale = demand_view.stale
        return _filter_pattern(rows, args), frozenset(), stale

    def _request_timeout(self) -> Optional[float]:
        """The per-request deadline in seconds (None = unbounded)."""
        if self.deadline_ms is None:
            return None
        return self.deadline_ms / 1000.0

    def _demand_supported(self, view: MaterializedView, predicate: str) -> bool:
        """Is this view inside the demand envelope for this predicate?

        Demand entries evaluate under the stratified semantics, which
        coincides with the well-founded and valid semantics on
        stratified programs (all total with the same least model) but
        not with the inflationary one; and the magic rewrite itself
        requires a stratified input and an IDB query predicate.
        Annotated views fall outside the envelope too: the magic
        rewrite is support-level and would drop annotations, so their
        patterns answer by filtering the full annotated model.
        """
        return (
            view.prepared.stratified
            and view.semantics != "inflationary"
            and view.semiring == "bool"
            and predicate in view.prepared.arities
        )

    def _pattern_fallback(
        self, name: str, predicate: str, args: Tuple[Optional[Value], ...]
    ) -> Tuple[FrozenSet[Row], FrozenSet[Row], bool]:
        """Serve a pattern by filtering the fully materialized answer."""
        self.metrics.bump("demand_fallbacks")
        rows, undefined, stale = self.query_state(name, predicate)
        return (
            _filter_pattern(rows, args),
            _filter_pattern(undefined, args),
            stale,
        )

    def _build_demand_entry(
        self,
        name: str,
        generation: int,
        predicate: str,
        adornment: str,
        entry,
    ) -> None:
        """Materialize a demand entry's view (the cold-pattern cost).

        Runs under the **base view lock**: update propagation also runs
        under that hold, so every base batch either lands in the
        database copy this build starts from, or is propagated to the
        entry after it is ready — no batch can fall between.  The
        price is that the first query for a new pattern blocks writers
        to the base view while the (demand-restricted) initial
        materialization runs; bench P13 prices exactly this.
        """
        with self._locked_view(name) as (view, current):
            if current != generation:
                raise KeyError(
                    f"view {name!r} was replaced while its demand entry "
                    "was being built"
                )
            transform = magic_transform(
                view.prepared.program, predicate, adornment
            )
            if not transform.demand_driven:
                entry.complete(None, transform)
                return
            prepared = prepare_program(
                f"{name}@{predicate}@{adornment}", transform.program
            )
            demand_view = MaterializedView(
                prepared,
                database=view.database,
                semantics="stratified",
                registry=self.function_registry,
                metrics=ViewMetrics(sink=self.metrics),
                maintenance="dbsp",
                max_rounds=self.max_rounds,
                max_atoms=self.max_atoms,
                budget_factory=self._budget_factory(),
                compact_on_publish=self.compactor_mode == "on-publish",
                compact_depth=self.compact_depth,
                compact_interval=self.compact_interval,
                queue_capacity=self.queue_capacity,
            )
            entry.complete(demand_view, transform)

    def _ensure_seeded(self, entry, bound: Row) -> None:
        """Demand a constant tuple: one incremental seed insert, once."""
        if bound in entry.seeded:
            return
        with entry.lock:
            if bound in entry.seeded:
                return
            entry.view.apply(
                inserts=[(entry.magic.seed_predicate, bound)]
            )
            entry.seeded.add(bound)

    def _propagate_demand(
        self,
        name: str,
        generation: int,
        batches: List[Tuple[List[Tuple[str, Row]], List[Tuple[str, Row]]]],
    ) -> None:
        """Stream applied base batches into the ready demand entries.

        Called inside the base view hold, right after the base apply
        succeeded — together with :meth:`_build_demand_entry` running
        under the same hold, this guarantees every entry sees every
        base batch exactly once.  Entry locks are leaves (queries take
        them without the base lock, never the other way around).  An
        entry whose own apply fails is dropped — the next query for its
        pattern rebuilds it from the then-current base database.
        """
        entries = self.demand.entries_for(name, generation)
        for entry in entries:
            base = entry.magic.base_predicates
            relevant = []
            for inserts, deletes in batches:
                kept_in = [(p, row) for p, row in inserts if p in base]
                kept_out = [(p, row) for p, row in deletes if p in base]
                if kept_in or kept_out:
                    relevant.append((kept_in, kept_out))
            if not relevant:
                continue
            with entry.lock:
                try:
                    entry.view.apply_stream(relevant)
                except Exception:
                    logger.exception(
                        "demand entry %r could not absorb a base batch; "
                        "dropping it",
                        entry.key,
                    )
                    self.demand.discard(entry.key, entry)

    # -- updates --------------------------------------------------------------

    def update(
        self,
        name: str,
        inserts: Iterable[Tuple[str, Row]] = (),
        deletes: Iterable[Tuple[str, Row]] = (),
        annotations: Optional[Mapping[Tuple[str, Row], object]] = None,
    ) -> Dict[str, object]:
        """Apply an update batch to a view; invalidates its cache scope.

        ``annotations`` (annotated views only) maps ``(predicate, row)``
        of inserted facts to a semiring annotation — wire text (parsed
        with the view's semiring) or an already-parsed carrier value.
        Annotations are **absolute**: an insert with one replaces the
        fact's current annotation outright, which is what makes WAL
        replay idempotent.

        The view is verified current after its lock is acquired, and
        :meth:`unregister` cannot pop a view whose lock is held — so an
        ``ok`` acknowledgment means the batch landed in a view that was
        still registered for the whole apply (a concurrent *replace*
        may still retire the updated view, which is the documented
        replace semantics: the old view dies, replacement wins).
        """
        self.metrics.bump("updates_total")
        inserts = [(predicate, tuple(row)) for predicate, row in inserts]
        deletes = [(predicate, tuple(row)) for predicate, row in deletes]
        if annotations:
            annotations = {
                (predicate, tuple(row)): value
                for (predicate, row), value in annotations.items()
            }
        else:
            annotations = None
        direct = self.coalesce <= 1 or annotations is not None
        if not direct:
            # Group-commit tickets carry bare fact batches, and an
            # annotated view publishes a full snapshot per batch
            # anyway — so annotated views always take the direct
            # per-batch path, even when coalescing is on.
            view, _lock, _generation = self._view_and_lock(name)
            direct = view.semiring != "bool"
        if direct:
            # Per-batch mode (the legacy default and the bench
            # baseline): apply directly under the view hold, no queue.
            with self._locked_view(name) as (view, generation):
                parsed = self._parse_annotations(view, annotations)
                summary = view.apply(
                    inserts=inserts, deletes=deletes, annotations=parsed
                )
                # Invalidate inside the hold so a concurrent query
                # cannot re-cache pre-batch rows between apply and
                # invalidation.
                self.cache.invalidate(name)
                self._propagate_demand(name, generation, [(inserts, deletes)])
                # Journal the *canonical* wire text of each annotation
                # (format after parse), so replay parses exactly what a
                # live client could have sent.
                texts = (
                    {
                        key: view.semiring_obj.format(value)
                        for key, value in parsed.items()
                    }
                    if parsed
                    else None
                )
                self._journal_update(name, inserts, deletes, texts)
            self._maybe_checkpoint()
            return summary
        # Group commit: submit the batch to the view's bounded queue,
        # then race for the view lock.  The winner (leader) drains the
        # queue into one circuit pass; the losers find their ticket
        # already settled when they get the lock.  An ``ok`` ack still
        # means the batch landed in a view that was verified current by
        # whoever applied it.  Both queue waits — for space at submit,
        # for the leader at outcome — are bounded by the request
        # deadline: a leader that died on a fault leaves parked writers
        # with a wire-coded ``update-timeout`` instead of a hang, and a
        # timed-out ticket is withdrawn so it cannot apply later.
        timeout = self._request_timeout()
        while True:
            view, lock, _generation = self._view_and_lock(name)
            ticket = view.pending.submit(inserts, deletes, timeout=timeout)
            try:
                with lock.held():
                    with self._registry_lock.read_locked():
                        current = self.views.get(name) is view
                    if current:
                        # Leader duty: drain until our own ticket is
                        # settled (the queue may hold more than one
                        # coalescing window's worth).
                        while not ticket.done:
                            self._drain_updates(name, view, _generation)
                    elif view.pending.withdraw(ticket):
                        # The binding changed under us and nobody
                        # processed the ticket: resubmit against the
                        # replacement (KeyError when truly gone).
                        continue
                    # else: a leader under the still-current binding
                    # owns the ticket; its outcome is authoritative.
            except BaseException:
                # Typically the service.lock fault point.  If the
                # ticket is still queued the batch never ran — withdraw
                # it and surface the failure; if a leader owns it, the
                # leader's outcome is the truth about this batch.
                if view.pending.withdraw(ticket):
                    raise
            try:
                summary = ticket.outcome(timeout)
            except UpdateTimeout:
                if view.pending.withdraw(ticket):
                    # Withdrawn while still queued: the batch never ran
                    # and never will.
                    raise
                # A leader grabbed the ticket right at the deadline;
                # its outcome is authoritative and imminent — give it
                # one grace period before reporting the timeout (after
                # which the batch's fate is genuinely unknown).
                summary = ticket.outcome(timeout)
            self._maybe_checkpoint()
            return summary

    def _parse_annotations(
        self,
        view: MaterializedView,
        annotations: Optional[Mapping[Tuple[str, Row], object]],
    ) -> Optional[Dict[Tuple[str, Row], object]]:
        """Resolve an update's annotation payload against its view.

        Wire-text strings are parsed with the view's semiring; values
        of any other type are assumed to already be carrier values
        (programmatic callers).  Boolean views reject annotations —
        there is no algebra to interpret them in.
        """
        if annotations is None:
            return None
        if view.semiring == "bool":
            raise ValueError(
                "annotations require an annotated view; register with "
                "--semiring=<name> first"
            )
        semiring = view.semiring_obj
        return {
            key: semiring.parse(value) if isinstance(value, str) else value
            for key, value in annotations.items()
        }

    def _journal_update(
        self,
        name: str,
        inserts: List[Tuple[str, Row]],
        deletes: List[Tuple[str, Row]],
        annotations: Optional[Mapping[Tuple[str, Row], str]] = None,
    ) -> None:
        """Journal one applied batch (inside the view hold): a failed
        batch never reaches the log, the ack follows the append, and a
        crash in between loses only a never-acknowledged batch.

        Annotated inserts are journaled as ``fact @ text`` — the same
        shape the wire protocol accepts, so recovery replays them
        through the ordinary annotated-fact parser.  Un-annotated
        batches keep the exact pre-semiring record format.
        """
        if self.durability is None:
            return

        def insert_text(predicate: str, row: Row) -> str:
            text = _format_row(predicate, row)
            if annotations:
                value = annotations.get((predicate, row))
                if value is not None:
                    return f"{text} @ {value}"
            return text

        self._journal(
            {
                "op": "update",
                "view": name,
                "inserts": [
                    insert_text(predicate, row) for predicate, row in inserts
                ],
                "deletes": [
                    _format_row(predicate, row) for predicate, row in deletes
                ],
            }
        )

    def _drain_updates(
        self, name: str, view: MaterializedView, generation: int
    ) -> None:
        """Group-commit leader duty, under the verified view hold.

        Drains up to ``coalesce`` queued batches and absorbs them in
        one :meth:`MaterializedView.apply_stream` pass — one circuit
        step, one snapshot publish.  A burst that fails as a unit is
        retried batch-by-batch so a poisoned batch cannot fail innocent
        neighbours (the view rolled the burst back before re-raising).
        Each batch is journaled separately, in drain order, inside the
        hold — replay order equals apply order — and every ticket is
        settled with its summary or its error; this method itself
        re-raises nothing ticket-attributable.  Applied batches are
        also streamed into the view's demand entries, inside the same
        hold.
        """
        tickets = view.pending.drain(self.coalesce)
        if not tickets:
            return
        if len(tickets) > 1:
            batches = [(ticket.inserts, ticket.deletes) for ticket in tickets]
            try:
                summary = view.apply_stream(batches)
            except BaseException:
                # Burst-level failure (including cancellation): the
                # view restored (or rebuilt) its pre-burst state; fall
                # through to per-batch retry so every drained ticket is
                # settled — an unsettled ticket would strand its owner.
                pass
            else:
                summary = dict(summary)
                summary["coalesced"] = len(tickets)
                self.cache.invalidate(name)
                self._propagate_demand(name, generation, batches)
                try:
                    for ticket in tickets:
                        self._journal_update(name, ticket.inserts, ticket.deletes)
                except BaseException as exc:
                    # Applied but not (fully) journaled: nobody is
                    # acked, recovery replays only the journaled
                    # prefix — the acked ⇒ journaled invariant holds.
                    for ticket in tickets:
                        ticket.fail(exc)
                    return
                for ticket in tickets:
                    ticket.complete(summary)
                return
        for ticket in tickets:
            try:
                summary = view.apply(
                    inserts=ticket.inserts, deletes=ticket.deletes
                )
                self.cache.invalidate(name)
                self._propagate_demand(
                    name, generation, [(ticket.inserts, ticket.deletes)]
                )
                self._journal_update(name, ticket.inserts, ticket.deletes)
            except BaseException as exc:
                self.cache.invalidate(name)
                ticket.fail(exc)
            else:
                ticket.complete(summary)

    def insert(self, name: str, predicate: str, *args: Value) -> Dict[str, object]:
        """Insert one fact into a view's database."""
        return self.update(name, inserts=[(predicate, tuple(args))])

    def delete(self, name: str, predicate: str, *args: Value) -> Dict[str, object]:
        """Delete one fact from a view's database."""
        return self.update(name, deletes=[(predicate, tuple(args))])

    # -- observability --------------------------------------------------------

    def stats(self, name: Optional[str] = None) -> Dict[str, object]:
        """Metrics for one view, or the whole service."""
        if name is not None:
            return self.view(name).stats()
        with self._registry_lock.read_locked():
            views = dict(self.views)
        return {
            "views": {view_name: view.stats() for view_name, view in views.items()},
            "cache": self.cache.stats(),
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """The full service-level observability snapshot.

        Internally consistent by construction: the ``rollup`` section
        is computed from the same per-view snapshots the ``views``
        section reports, plus the retired counters of departed views —
        so ``rollup[c] == retired[c] + sum(views[*][c])`` always holds.
        The per-view stats and the retired snapshot are taken under one
        registry read hold: register/unregister absorb a departing
        view's counters under the write lock, so no view can appear in
        both (or neither of) the live and retired sections, and the
        rollup is monotone across view churn.
        """
        with self._registry_lock.read_locked():
            view_stats = {
                name: view.stats() for name, view in self.views.items()
            }
            snapshot = self.metrics.snapshot()
        rollup: Dict[str, int] = dict(snapshot["retired"])
        for stats in view_stats.values():
            for counter, value in stats["counters"].items():
                rollup[counter] = rollup.get(counter, 0) + value
        snapshot["rollup"] = rollup
        snapshot["gauges"] = {
            "views_registered": len(view_stats),
            "stale_views": sum(
                1 for stats in view_stats.values() if stats["stale"]
            ),
            "inflight_requests": self.metrics.inflight,
            "time_in_degraded": {
                name: stats["degraded_seconds"]
                for name, stats in view_stats.items()
            },
            # Snapshot staleness lag per view: how long ago the served
            # model version was published (None until first publish).
            "snapshot_age": {
                name: stats.get("snapshot_age_seconds")
                for name, stats in view_stats.items()
            },
            # Deepest published delta chain per view: what the first
            # cold read after a write burst would have to walk.
            "chain_depth": {
                name: stats.get("chain_depth", 0)
                for name, stats in view_stats.items()
            },
            # Pending update batches per view: how far writers are
            # running ahead of the group-commit leader right now.
            "update_queue_depth": {
                name: stats.get("queue_depth", 0)
                for name, stats in view_stats.items()
            },
            # Resident demanded binding patterns (capacity-bounded).
            "demand_entries": self.demand.size(),
            # Copy-on-write name-table churn: publishes and total cells
            # copied across them.  The O(churn · views) republish cost
            # is an invariant the name-table unit tests pin down.
            "name_table_republishes": self.name_table_republishes,
            "name_table_copied_cells": self.name_table_copied_cells,
        }
        snapshot["views"] = view_stats
        snapshot["cache"] = self.cache.stats()
        snapshot["lock_mode"] = self.lock_mode
        snapshot["read_mode"] = self.read_mode
        snapshot["maintenance"] = self.maintenance
        snapshot["coalesce"] = self.coalesce
        snapshot["compactor"] = self.compactor_mode
        if self.durability is not None:
            snapshot["durability"] = self.durability.describe()
            snapshot["gauges"]["wal_size"] = self.durability.wal_size_bytes()
            snapshot["gauges"]["recovered_generation"] = (
                self.durability.generation
            )
        return snapshot


# ---------------------------------------------------------------------------
# The line protocol
# ---------------------------------------------------------------------------


def _format_row(predicate: str, row: Row) -> str:
    if not row:
        return predicate
    return f"{predicate}({', '.join(format_value(value) for value in row)})"


def _filter_pattern(
    rows: Iterable[Row], args: Tuple[Optional[Value], ...]
) -> FrozenSet[Row]:
    """The rows matching a bound pattern (``None`` = free position).

    This is the inner loop of every bound-pattern read, so the bound
    positions are hoisted out of the per-row test (and the common
    single-bound-position case skips the ``all()`` machinery entirely).
    """
    arity = len(args)
    checks = [(i, value) for i, value in enumerate(args) if value is not None]
    if len(checks) == 1:
        [(i, value)] = checks
        return frozenset(
            row for row in rows if len(row) == arity and row[i] == value
        )
    return frozenset(
        row
        for row in rows
        if len(row) == arity
        and all(row[i] == value for i, value in checks)
    )


def parse_bound_pattern(text: str) -> Tuple[str, Tuple[Optional[Value], ...]]:
    """Parse a wire bound pattern like ``tc(a, _)``.

    Returns ``(predicate, args)`` where each constant argument is its
    value and each free position (``_`` or any variable name) is
    ``None``.  Rejects function terms and repeated named variables —
    a repeated variable would read like a join constraint the demand
    path does not implement, so it errors instead of silently answering
    the wrong question.
    """
    parser = _Parser(_tokenize(text))
    atom = parser.parse_atom()
    if not parser.at_end():
        raise ValueError(f"trailing input after pattern: {text!r}")
    args: List[Optional[Value]] = []
    named_free = set()
    for term in atom.args:
        if isinstance(term, Const):
            args.append(term.value)
        elif isinstance(term, Var):
            if term.name != "_":
                if term.name in named_free:
                    raise ValueError(
                        "repeated variables are not supported in bound "
                        f"patterns: {text!r}"
                    )
                named_free.add(term.name)
            args.append(None)
        else:
            raise ValueError(
                f"bound patterns take constants and '_', got {term!r}"
            )
    return atom.predicate, tuple(args)


def _handle_line(service: QueryService, line: str) -> List[str]:
    if line.startswith("+") or line.startswith("-"):
        parts = line[1:].split(None, 1)
        if len(parts) != 2:
            return [f"error usage: {line[0]}<view> <fact>[ @ <annotation>]"]
        view_name, fact_text = parts
        predicate, row, annotation = parse_annotated_fact(fact_text)
        if line.startswith("+"):
            if annotation is not None:
                summary = service.update(
                    view_name,
                    inserts=[(predicate, row)],
                    annotations={(predicate, row): annotation},
                )
            else:
                summary = service.insert(view_name, predicate, *row)
        else:
            if annotation is not None:
                return ["error annotations apply to inserts only"]
            summary = service.delete(view_name, predicate, *row)
        reply = {k: v for k, v in summary.items() if isinstance(v, (str, int))}
        return [f"ok {json.dumps(reply, sort_keys=True)}"]

    command, _, rest = line.partition(" ")
    if command == "register":
        usage = (
            "error usage: register <view> <semantics> "
            "[--semiring=<name>] <program>"
        )
        parts = rest.split(None, 2)
        if len(parts) < 3:
            return [usage]
        view_name, semantics, source = parts
        if semantics not in SEMANTICS:
            return [
                f"error unknown semantics {semantics!r}; pick from {SEMANTICS}"
            ]
        semiring = None
        if source.lstrip().startswith("--semiring="):
            pieces = source.split(None, 1)
            if len(pieces) != 2:
                return [usage]
            semiring = pieces[0][len("--semiring=") :]
            source = pieces[1]
            if not semiring:
                return [usage]
        path = Path(source.strip())
        try:
            is_file = path.is_file()
        except OSError:
            is_file = False
        text = path.read_text() if is_file else source
        info = service.register(
            view_name, text, semantics=semantics, semiring=semiring
        )
        return [f"ok {json.dumps(info, sort_keys=True)}"]
    if command == "unregister":
        view_name = rest.strip()
        if not view_name:
            return ["error usage: unregister <view>"]
        info = service.unregister(view_name)
        return [f"ok {json.dumps(info, sort_keys=True)}"]
    if command == "query":
        parts = rest.split(None, 1)
        if len(parts) != 2:
            return ["error usage: query <view> <predicate>[(pattern)]"]
        view_name, remainder = parts[0], parts[1].strip()
        annotations = None
        if "(" in remainder:
            # Bound-pattern form: ``query <view> tc(a, _)`` — served
            # demand-driven through the magic-sets registry.
            predicate, pattern_args = parse_bound_pattern(remainder)
            rows, undefined, stale = service.query_pattern(
                view_name, predicate, pattern_args
            )
        else:
            if remainder.split() != [remainder] or not remainder:
                return ["error usage: query <view> <predicate>[(pattern)]"]
            predicate = remainder
            rows, undefined, stale, annotations = service.query_annotated(
                view_name, predicate
            )
        lines = sorted(f"row {_format_row(predicate, row)}" for row in rows)
        lines += sorted(
            f"undef {_format_row(predicate, row)}" for row in undefined
        )
        if annotations:
            # Annotated views explain every true row: its semiring
            # annotation in wire text (for why-provenance, the lineage
            # witnesses).  Boolean views emit no explain lines, keeping
            # their replies byte-identical to the pre-semiring wire.
            lines += sorted(
                f"explain {_format_row(predicate, row)} @ {text}"
                for row, text in annotations.items()
            )
        # A degraded view answers from its last consistent model; the
        # client sees the staleness on the wire, not silently.
        suffix = " stale" if stale else ""
        lines.append(f"ok {len(rows)} rows{suffix}")
        return lines
    if command == "stats":
        name = rest.strip() or None
        return [f"ok {json.dumps(service.stats(name), sort_keys=True)}"]
    if command == "metrics":
        fmt = rest.strip()
        if fmt in ("--format=prometheus", "--format prometheus"):
            from .prometheus import render_prometheus

            text = render_prometheus(service.metrics_snapshot())
            return text.splitlines() + ["ok prometheus"]
        if fmt and fmt not in ("--format=json", "--format json"):
            return [f"error unknown metrics format {fmt!r}"]
        return [
            f"ok {json.dumps(service.metrics_snapshot(), sort_keys=True)}"
        ]
    if command in ("views", "list"):
        # Served off the published name table — wait-free, like queries.
        names = sorted(service.name_table())
        return [f"ok {json.dumps(names)}"]
    return [f"error unknown command {command!r}"]


def _error_reply(exc: BaseException) -> str:
    """One structured ``error`` line for an exception.

    :class:`~repro.robustness.ReproError` subtypes carry a stable
    machine-readable code (``error <code> <Type>: <message>``); other
    exceptions keep the legacy ``error <Type>: <message>`` shape.
    """
    message = str(exc).replace("\n", " ")
    if isinstance(exc, ReproError):
        return f"error {exc.code} {type(exc).__name__}: {message}"
    return f"error {type(exc).__name__}: {message}"


def serve_stream(
    service: QueryService,
    lines: Iterable[str],
    write: Callable[[str], None],
    max_request_bytes: Optional[int] = None,
    lock: Optional["threading.Lock"] = None,
) -> None:
    """Run the protocol over a line source and a reply sink.

    ``max_request_bytes`` rejects oversized request lines with a
    structured ``request-too-large`` error instead of parsing them.
    ``lock`` (optional) serialises the whole stream's request handling
    through one external mutex; the service itself is already
    thread-safe (registry read/write lock + per-view locks), so the
    socket server no longer passes one — the parameter remains for
    callers that want strict cross-connection ordering.
    """
    for raw in lines:
        if (
            max_request_bytes is not None
            and len(raw.encode("utf-8", errors="replace")) > max_request_bytes
        ):
            write(
                _error_reply(
                    RequestTooLarge(
                        f"request line exceeds {max_request_bytes} bytes"
                    )
                )
            )
            continue
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line in ("quit", "exit"):
            write("ok bye")
            return
        try:
            with service.metrics.request():
                if lock is not None:
                    with lock:
                        replies = _handle_line(service, line)
                else:
                    replies = _handle_line(service, line)
            for reply in replies:
                write(reply)
        except (KeyboardInterrupt, SystemExit):
            # Shutdown signals are never swallowed as request errors.
            raise
        except ReproError as exc:
            logger.warning("request failed (%s): %s", exc.code, exc)
            service.metrics.bump("errors_total")
            write(_error_reply(exc))
        except (KeyError, ValueError) as exc:
            # Expected user errors — unknown views, malformed requests —
            # get a clean warning, not a traceback.
            logger.warning("bad request %r: %s", line, exc)
            service.metrics.bump("errors_total")
            write(_error_reply(exc))
        except Exception as exc:  # the server must survive bad requests
            logger.exception("request failed: %r", line)
            service.metrics.bump("errors_total")
            write(_error_reply(exc))


def serve_unix_socket(
    service: QueryService,
    path: str,
    max_connections: Optional[int] = None,
    max_concurrent: int = 8,
    max_request_bytes: Optional[int] = None,
    stop_event: Optional["threading.Event"] = None,
) -> None:
    """Serve the protocol on a unix socket.

    Connections are handled on worker threads, at most
    ``max_concurrent`` at a time (further clients queue in the listen
    backlog).  Request handling is **not** globally serialised: the
    service's registry read/write lock and per-view locks let requests
    against different views proceed fully in parallel, while same-view
    operations stay ordered.  ``max_connections`` bounds how many
    connections are accepted (None = until interrupted); on the way out
    the server stops accepting and **drains** — live connections finish
    their streams before the socket file is removed.

    ``stop_event`` (optional) requests a graceful shutdown from
    outside — a signal handler sets it, the accept loop notices within
    its poll interval, drains in-flight connections (bounded joins, so
    a wedged client cannot hold shutdown hostage forever), and
    returns.  The caller then closes the service, which takes the
    final durability checkpoint.
    """
    socket_path = Path(path)
    if socket_path.exists():
        socket_path.unlink()
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    slots = threading.BoundedSemaphore(max(1, max_concurrent))
    workers: List[threading.Thread] = []
    stopping = stop_event if stop_event is not None else threading.Event()

    def handle(connection: socket.socket) -> None:
        try:
            with connection:
                reader = connection.makefile("r", encoding="utf-8")
                writer = connection.makefile("w", encoding="utf-8")
                serve_stream(
                    service,
                    reader,
                    lambda reply: (writer.write(reply + "\n"), writer.flush()),
                    max_request_bytes=max_request_bytes,
                )
                writer.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-reply; nothing to salvage
        finally:
            slots.release()

    try:
        server.bind(str(socket_path))
        server.listen(max(1, max_concurrent))
        # Poll so a stop request (signal handler, supervising thread)
        # is noticed even while blocked waiting for clients.
        server.settimeout(0.2)
        accepted = 0
        while max_connections is None or accepted < max_connections:
            if stopping.is_set():
                break
            if not slots.acquire(timeout=0.2):
                continue
            try:
                connection, _address = server.accept()
            except socket.timeout:
                slots.release()
                continue
            except BaseException:
                slots.release()
                raise
            accepted += 1
            worker = threading.Thread(
                target=handle, args=(connection,), daemon=True
            )
            workers.append(worker)
            worker.start()
            workers = [w for w in workers if w.is_alive()]
    finally:
        # Graceful drain: stop accepting, let live connections finish.
        # Joins are bounded on the stop path — SIGTERM must win even
        # against a client that never closes its stream.
        deadline = 10.0 if stopping.is_set() else None
        for worker in workers:
            worker.join(deadline)
        server.close()
        if socket_path.exists():
            os.unlink(socket_path)
