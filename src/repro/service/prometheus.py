"""Prometheus text-format export of the service observability plane.

:func:`render_prometheus` turns a metrics snapshot — either a
single-process :meth:`~repro.service.server.QueryService.
metrics_snapshot` or the cluster router's rolled-up aggregate
(:mod:`repro.service.cluster.rollup`) — into the Prometheus exposition
format (text/plain; version 0.0.4):

* monotone counters become ``repro_service_<name>_total`` (the
  service-level section) and ``repro_<name>_total`` (the per-view
  rollup section);
* gauges become ``repro_<name>`` with ``view=`` / ``shard=`` labels
  where the snapshot carries them per entity;
* phase and lock histograms become native Prometheus histograms
  (cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``) —
  the internal :class:`~repro.service.metrics.Histogram` stores
  non-cumulative buckets, so the renderer re-accumulates.

Two delivery surfaces use this renderer:

* the line protocol's ``metrics --format=prometheus`` verb argument
  (single service and cluster router alike), and
* ``repro serve --metrics-prometheus PATH`` — a
  :class:`PrometheusExporter` daemon thread that rewrites ``PATH``
  atomically every ``interval`` seconds, the file a node-exporter
  textfile collector or a sidecar scraper tails.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Callable, Dict, List, Mapping, Optional, Tuple

__all__ = ["render_prometheus", "PrometheusExporter"]

logger = logging.getLogger(__name__)


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(pairs: Mapping[str, str]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape(value)}"' for name, value in sorted(pairs.items())
    )
    return "{" + inner + "}"


def _sanitize(name: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def _counter_metric(prefix: str, name: str) -> str:
    """``<prefix>_<name>_total`` without doubling an existing suffix."""
    base = _sanitize(name)
    if base.endswith("_total"):
        base = base[: -len("_total")]
    return f"{prefix}_{base}_total"


def _bucket_bound(key: str) -> float:
    suffix = key[3:] if key.startswith("le_") else key
    return float("inf") if suffix == "inf" else float(suffix)


def _render_histogram(
    lines: List[str],
    metric: str,
    snapshot: Mapping,
    labels: Mapping[str, str],
    typed: set,
) -> None:
    """One histogram snapshot as cumulative Prometheus series."""
    if not snapshot or not snapshot.get("count"):
        return
    if metric not in typed:
        lines.append(f"# TYPE {metric} histogram")
        typed.add(metric)
    buckets: List[Tuple[float, int]] = sorted(
        (_bucket_bound(key), count)
        for key, count in snapshot.get("buckets", {}).items()
    )
    cumulative = 0
    for bound, count in buckets:
        cumulative += count
        le = "+Inf" if bound == float("inf") else f"{bound:g}"
        bucket_labels = dict(labels)
        bucket_labels["le"] = le
        lines.append(f"{metric}_bucket{_labels(bucket_labels)} {cumulative}")
    lines.append(f"{metric}_sum{_labels(labels)} {snapshot.get('sum', 0)}")
    lines.append(
        f"{metric}_count{_labels(labels)} {snapshot.get('count', 0)}"
    )


def _render_gauge_entry(
    lines: List[str],
    name: str,
    value,
    labels: Mapping[str, str],
    typed: set,
) -> None:
    """One gauge scalar or per-entity dict, labeled accordingly."""
    metric = f"repro_{_sanitize(name)}"
    if isinstance(value, Mapping):
        for entity, entry in sorted(value.items()):
            entity_labels = dict(labels)
            entity_labels["view"] = str(entity)
            _render_gauge_entry(lines, name, entry, entity_labels, typed)
        return
    if value is None:
        return
    if metric not in typed:
        lines.append(f"# TYPE {metric} gauge")
        typed.add(metric)
    lines.append(f"{metric}{_labels(labels)} {value}")


def render_prometheus(snapshot: Mapping) -> str:
    """The exposition-format text for one metrics snapshot."""
    lines: List[str] = []
    typed: set = set()

    # Service-level counters (requests, errors, registrations, ...).
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _counter_metric("repro_service", name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")

    # The per-view rollup: monotone across view churn (and, in the
    # cluster aggregate, across shard drain/respawn).
    for name, value in sorted(snapshot.get("rollup", {}).items()):
        metric = _counter_metric("repro", name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")

    # Router counters, when this is a cluster aggregate.
    router = snapshot.get("router", {})
    for name, value in sorted(router.get("counters", {}).items()):
        metric = _counter_metric("repro_router", name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")

    # Gauges.  A cluster aggregate labels per shard; a single service
    # labels per view where the entry is a per-view dict.
    gauges = snapshot.get("gauges", {})
    for name, value in sorted(gauges.items()):
        if name == "per_shard":
            for shard, shard_gauges in sorted(value.items()):
                for gauge_name, gauge_value in sorted(shard_gauges.items()):
                    _render_gauge_entry(
                        lines,
                        gauge_name,
                        gauge_value,
                        {"shard": str(shard)},
                        typed,
                    )
            continue
        _render_gauge_entry(lines, name, value, {}, typed)

    # Histograms: lock wait/hold plus the per-phase family.
    locks = snapshot.get("locks", {})
    for side in ("wait", "hold"):
        _render_histogram(
            lines,
            f"repro_lock_{side}_seconds",
            locks.get(side, {}),
            {},
            typed,
        )
    for phase, histogram in sorted(
        snapshot.get("phase_histograms", {}).items()
    ):
        _render_histogram(
            lines,
            "repro_phase_seconds",
            histogram,
            {"phase": phase},
            typed,
        )

    return "\n".join(lines) + "\n"


class PrometheusExporter:
    """Periodically write the rendered snapshot to a textfile.

    ``snapshot_source`` is any zero-argument callable returning a
    metrics snapshot dict (``QueryService.metrics_snapshot``, or a
    closure fetching the cluster rollup).  The file is written
    atomically (tmp + rename) every ``interval`` seconds and once more
    on :meth:`stop`, so scrapers never observe a torn export.
    """

    def __init__(
        self,
        snapshot_source: Callable[[], Mapping],
        path: str,
        interval: float = 5.0,
    ):
        self.snapshot_source = snapshot_source
        self.path = path
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def export_once(self) -> None:
        """Render and atomically replace the export file."""
        try:
            text = render_prometheus(self.snapshot_source())
        except Exception:  # the exporter must never kill the server
            logger.exception("prometheus export failed; keeping last file")
            return
        tmp_path = f"{self.path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, self.path)

    def start(self) -> None:
        """Start the export thread (no-op when already running)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="prometheus-exporter", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the thread and write one final export (idempotent)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout)
            self.export_once()

    def _run(self) -> None:
        self.export_once()
        while not self._stop.wait(self.interval):
            self.export_once()
