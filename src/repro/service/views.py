"""Materialized views: resident models maintained under updates.

A :class:`MaterializedView` binds a prepared program to its own
database and keeps the model resident between queries:

* ``semantics="stratified"`` on a stratified program takes the
  **incremental fast path**: by default (``maintenance="dbsp"``) a
  :class:`~repro.service.dbsp.DBSPEngine` maintains the model as the
  integral of a delta stream — a burst of N update batches submitted
  through :meth:`MaterializedView.apply_stream` is differentiated into
  one net Z-set delta, absorbed in **one** circuit pass, and published
  with **one** snapshot swap.  ``maintenance="legacy"`` keeps the
  counting/DRed :class:`~repro.service.incremental.IncrementalEngine`
  as the per-batch bench baseline;
* every other combination (valid, well-founded, inflationary — or a
  view explicitly forced off the fast path) routes updates through a
  **correctness-preserving recompute fallback**: the database is
  mutated, the resident result invalidated, and the next query
  re-evaluates — reusing the prepared plan's fingerprint-keyed ground
  cache when the database revisits a known state.

Snapshot publication (the primary read path): every consistent model
the view reaches is published as an immutable, versioned
:class:`~repro.service.snapshot.ModelSnapshot` — true *and* undefined
rows — via a single atomic reference swap.  Readers pick the snapshot
off the reference with no lock; writers maintain it **incrementally**,
applying each batch's net plus/minus delta to the previous snapshot
(O(|delta|)) instead of re-copying the whole model.

Failure discipline (the robustness contract, tested by the chaos
suite in ``tests/robustness``):

* a failed delta **never leaves a half-applied view** — when
  maintenance raises mid-batch the EDB is rolled back by the inverse
  batch and the resident model rebuilt from scratch (wrapped in
  :func:`~repro.robustness.retry_with_backoff`);
* if even the rebuild keeps failing, the view enters **degraded mode**:
  it re-publishes its last consistent snapshot flagged ``stale``
  (copy-on-degrade — the cells are shared, so nothing is copied) and
  serves it, **both truth statuses included**, instead of crashing or
  serving a corrupted model.  The next successful update or recompute
  clears the flag.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..datalog.database import Database
from ..datalog.engine import SEMANTICS, QueryResult, run
from ..datalog.stratification import NotStratifiedError
from ..relations.universe import FunctionRegistry
from ..relations.values import Value
from ..robustness import (
    Cancelled,
    EvaluationBudget,
    ReproError,
    ViewDegraded,
    fault_point,
    retry_with_backoff,
)
from ..semiring import get_semiring
from .annotated import AnnotatedEngine
from .dbsp import DBSPEngine, UpdateQueue
from .incremental import IncrementalEngine, IncrementalMaintenanceError
from .locks import AtomicReference
from .metrics import ViewMetrics
from .registry import PreparedProgram
from .snapshot import ModelSnapshot

__all__ = ["MaterializedView"]

Row = Tuple[Value, ...]


class MaterializedView:
    """One registered program's resident, update-maintained model.

    ``budget_factory`` (optional) supplies a fresh
    :class:`~repro.robustness.EvaluationBudget` per expensive operation
    (recompute, incremental batch) — the hook the service layer uses to
    impose per-request deadlines.

    ``compact_on_publish`` turns on the in-line snapshot compactor:
    every ``compact_interval``-th publish flattens delta chains deeper
    than ``compact_depth`` (see :meth:`maybe_compact`), so a write
    burst with no interleaved reads cannot leave the next reader a deep
    chain walk.  Off by default for directly-constructed views; the
    :class:`~repro.service.server.QueryService` turns it on under its
    ``compactor="on-publish"`` mode (and its ``"thread"`` mode calls
    :meth:`maybe_compact` from a background thread instead).
    """

    def __init__(
        self,
        prepared: PreparedProgram,
        database: Optional[Database] = None,
        semantics: str = "stratified",
        registry: Optional[FunctionRegistry] = None,
        metrics: Optional[ViewMetrics] = None,
        incremental: bool = True,
        maintenance: str = "dbsp",
        max_rounds: int = 10_000,
        max_atoms: int = 1_000_000,
        budget_factory: Optional[Callable[[], EvaluationBudget]] = None,
        recovery_attempts: int = 3,
        compact_on_publish: bool = False,
        compact_depth: int = 4,
        compact_interval: int = 8,
        queue_capacity: int = 256,
        semiring: str = "bool",
    ):
        if semantics not in SEMANTICS:
            raise ValueError(
                f"unknown semantics {semantics!r}; pick from {SEMANTICS}"
            )
        if maintenance not in ("dbsp", "legacy"):
            raise ValueError(
                f"unknown maintenance {maintenance!r}; pick 'dbsp' or 'legacy'"
            )
        if semantics == "stratified" and not prepared.stratified:
            raise NotStratifiedError(
                f"program {prepared.name!r} is not stratified; register it "
                "under the valid or wellfounded semantics instead"
            )
        # The annotation algebra.  ``"bool"`` is the zero-overhead fast
        # path: exactly the pre-annotation engines and publish paths,
        # byte-identical answers.  Anything else materializes through
        # :class:`~repro.service.annotated.AnnotatedEngine` and serves
        # per-row annotations from its snapshots.
        self.semiring = semiring
        self.semiring_obj = get_semiring(semiring)
        if semiring != "bool" and semantics != "stratified":
            raise ValueError(
                f"semiring {semiring!r} requires the stratified semantics "
                f"(got {semantics!r}); only boolean views serve the "
                "3-valued semantics"
            )
        self.prepared = prepared
        self.semantics = semantics
        self.maintenance = maintenance
        self.registry = registry
        self.metrics = metrics if metrics is not None else ViewMetrics()
        self.max_rounds = max_rounds
        self.max_atoms = max_atoms
        self.budget_factory = budget_factory
        self.recovery_attempts = recovery_attempts
        self.compact_on_publish = compact_on_publish
        self.compact_depth = compact_depth
        self.compact_interval = max(1, compact_interval)
        self._publish_count = 0
        # Degraded-mode state: when ``stale`` is True, queries answer
        # from the published snapshot (the last consistent model, both
        # truth statuses) instead of the (unavailable or rebuilding)
        # live model.
        self.stale = False
        self._last_error: Optional[str] = None
        # The published snapshot cell: ``(snapshot, servable)``.  Both
        # fields swap together so lock-free readers can never pair a
        # fresh flag with an outdated snapshot.  ``servable`` is False
        # while a recompute-mode view's model trails its database (the
        # next read must take the locked path and re-evaluate).
        self._published: AtomicReference = AtomicReference((None, False))
        self._generation = 0
        # An annotated view is always engine-backed (its snapshots need
        # the annotation maps); ``incremental=False`` there only forces
        # the engine's recompute-on-update discipline.  The requested
        # flag is kept verbatim so checkpoints can re-register the view
        # with the same discipline (``mode`` alone conflates the two
        # annotated sub-modes).
        self.incremental = bool(incremental)
        self.mode = (
            "incremental"
            if (incremental or semiring != "bool")
            and semantics == "stratified"
            and prepared.stratified
            else "recompute"
        )
        # The bounded group-commit queue: the server's update verb
        # submits batches here and the view-lock leader drains them
        # into one apply_stream pass (write pipelining for free on both
        # the single-process and cluster worker tiers).
        self.pending = UpdateQueue(queue_capacity)
        self.engine = None
        self._result: Optional[QueryResult] = None
        if self.mode == "incremental":
            with self.metrics.phase("initialize"):
                # The initial materialization runs under a request
                # budget too — a divergent program must hit its
                # deadline at registration, not loop forever.
                if self.semiring != "bool":
                    self.engine = AnnotatedEngine(
                        prepared,
                        self.semiring_obj,
                        database=database,
                        registry=registry,
                        metrics=self.metrics,
                        budget=self._budget(),
                        differential=incremental,
                    )
                else:
                    engine_cls = (
                        DBSPEngine if maintenance == "dbsp" else IncrementalEngine
                    )
                    self.engine = engine_cls(
                        prepared,
                        database=database,
                        registry=registry,
                        metrics=self.metrics,
                        budget=self._budget(),
                    )
            self.engine.budget = None
            self.database = self.engine.edb
            self._publish_full(self.engine.model(), annotations=self._annotations())
        else:
            self.database = (database or Database()).copy()
            for predicate, row in prepared.seed_facts:
                if not self.database.holds(predicate, *row):
                    self.database.add(predicate, *row)

    def _budget(self) -> Optional[EvaluationBudget]:
        return self.budget_factory() if self.budget_factory is not None else None

    # -- snapshot publication -------------------------------------------------

    def _publish(self, snapshot: ModelSnapshot) -> None:
        """Swap a new snapshot in (writers only, under the view lock)."""
        self._generation = snapshot.generation
        self._published.set((snapshot, True))
        self.metrics.bump("snapshot_swaps")
        # Compact-on-Nth-publish: bound the chain walk a write-heavy /
        # read-light burst would otherwise leave for the first reader.
        self._publish_count += 1
        if (
            self.compact_on_publish
            and self._publish_count % self.compact_interval == 0
        ):
            self.maybe_compact()

    def maybe_compact(self) -> int:
        """Flatten the published snapshot's delta chains past the cap.

        Safe from any thread at any time: compaction only forces the
        same lazy materialization a reader performs, so the snapshot's
        observable contents (rows, fingerprint) never change.  Returns
        the number of cells compacted (0 when the chains are already
        within ``compact_depth``).
        """
        snapshot, _servable = self._published.get()
        if snapshot is None or snapshot.max_chain_depth() <= self.compact_depth:
            return 0
        with self.metrics.phase("compact"):
            cells, rows = snapshot.compact(self.compact_depth)
        if cells:
            self.metrics.bump("compactions")
            self.metrics.bump("compaction_rows", rows)
        return cells

    def chain_depth(self) -> int:
        """The published snapshot's deepest delta chain (the gauge)."""
        snapshot, _servable = self._published.get()
        return snapshot.max_chain_depth() if snapshot is not None else 0

    def _annotations(self) -> Optional[Dict[str, Dict[Row, str]]]:
        """The engine's wire-text annotation maps (None on the boolean
        fast path — boolean snapshots never carry annotations)."""
        if self.semiring == "bool" or self.engine is None:
            return None
        return self.engine.wire_annotations()

    def _publish_full(
        self,
        true_rows: Dict[str, FrozenSet[Row]],
        undefined_rows: Optional[Dict[str, FrozenSet[Row]]] = None,
        annotations: Optional[Dict[str, Dict[Row, str]]] = None,
    ) -> None:
        self._publish(
            ModelSnapshot.full(
                true_rows,
                undefined_rows,
                generation=self._generation + 1,
                annotations=annotations,
            )
        )

    def _publish_delta(
        self,
        plus: Dict[str, FrozenSet[Row]],
        minus: Dict[str, FrozenSet[Row]],
    ) -> None:
        snapshot, _servable = self._published.get()
        assert snapshot is not None
        self._publish(
            snapshot.apply_delta(plus, minus, self._generation + 1)
        )

    def _publish_stale(self) -> None:
        snapshot, _servable = self._published.get()
        if snapshot is not None and not snapshot.stale:
            self._publish(snapshot.as_stale(self._generation + 1))

    def _invalidate_snapshot(self) -> None:
        """Mark the snapshot unservable (model trails the database).

        Also advances the generation: a racing lock-free reader may
        re-insert a cache entry keyed to the last servable snapshot
        *after* the server's invalidation sweep, and the locked query
        path must never hit it once the model trails the database —
        the bumped generation changes every subsequent cache key.
        """
        snapshot, _servable = self._published.get()
        self._generation += 1
        self._published.set((snapshot, False))

    def read_snapshot(self) -> Optional[ModelSnapshot]:
        """The currently served model snapshot, or None when a
        recompute is pending (or nothing was ever materialized).

        Lock-free: safe to call from any thread at any time.  The
        returned snapshot is immutable — holding it across later
        updates keeps serving the same consistent version.
        """
        snapshot, servable = self._published.get()
        return snapshot if servable else None

    def snapshot_generation(self) -> int:
        """The published snapshot's generation (monotone per view)."""
        return self._generation

    def _served_snapshot(self) -> ModelSnapshot:
        snapshot, _servable = self._published.get()
        assert snapshot is not None
        return snapshot

    # -- queries --------------------------------------------------------------

    def rows(self, predicate: str) -> FrozenSet[Row]:
        """Rows of a predicate that are certainly true.

        In degraded mode this serves the last consistent snapshot —
        check :attr:`stale` (the server surfaces it on the wire)."""
        self.metrics.bump("queries")
        if self.stale:
            self.metrics.bump("stale_queries")
            return self._served_snapshot().rows(predicate)
        if self.engine is not None:
            return self.engine.rows(predicate)
        try:
            return self._ensure_result().true_rows(predicate)
        except ViewDegraded:
            # The recompute just failed; degrade in place and answer
            # from the last consistent snapshot rather than erroring.
            self.metrics.bump("stale_queries")
            return self._served_snapshot().rows(predicate)

    def undefined_rows(self, predicate: str) -> FrozenSet[Row]:
        """Rows with undefined status (stratified models are total).

        Degraded service preserves the three-valued answer: the stale
        snapshot carries both truth statuses, so a valid/well-founded
        view keeps distinguishing true from undefined while stale."""
        if self.stale:
            return self._served_snapshot().undefined_rows(predicate)
        if self.engine is not None:
            return frozenset()
        try:
            return self._ensure_result().undefined_rows(predicate)
        except ViewDegraded:
            return self._served_snapshot().undefined_rows(predicate)

    def annotation_texts(self, predicate: str) -> Optional[Dict[Row, str]]:
        """Wire-text semiring annotations of one predicate's rows
        (None for boolean views — they carry no annotations).  Degraded
        views answer from the stale snapshot like :meth:`rows`."""
        if self.semiring == "bool" or self.engine is None:
            return None
        if self.stale:
            served = self._served_snapshot().annotations_for(predicate)
            return dict(served) if served is not None else {}
        semiring = self.semiring_obj
        return {
            row: semiring.format(annotation)
            for row, annotation in self.engine.annotation_map(predicate).items()
        }

    def predicates(self) -> FrozenSet[str]:
        """Every predicate the view can answer about."""
        return (
            self.prepared.program.predicates() | self.database.predicates()
        )

    def _ensure_result(self) -> QueryResult:
        if self._result is not None:
            return self._result

        def recompute() -> QueryResult:
            fault_point("view.recompute")
            ground_program = self.prepared.ground_for(
                self.database,
                registry=self.registry,
                max_rounds=self.max_rounds,
                max_atoms=self.max_atoms,
            )
            return run(
                self.prepared.program,
                self.database,
                semantics=self.semantics,
                registry=self.registry,
                ground_program=ground_program,
                budget=self._budget(),
            )

        try:
            with self.metrics.phase("recompute"):
                self._result = retry_with_backoff(
                    recompute,
                    attempts=self.recovery_attempts,
                    on_retry=lambda *_: self.metrics.bump("recompute_retries"),
                )
        except Cancelled:
            raise
        except ReproError as exc:
            if self._published.get()[0] is None:
                # Nothing consistent was ever materialized — there is no
                # stale model to fall back to, so surface the failure.
                raise
            self._enter_degraded(exc)
            raise ViewDegraded(
                f"recompute failed ({exc}); serving last consistent model",
            ) from exc
        self._mark_healthy()
        predicates = self.predicates()
        self._publish_full(
            {p: self._result.true_rows(p) for p in predicates},
            {p: self._result.undefined_rows(p) for p in predicates},
        )
        return self._result

    def _enter_degraded(self, exc: BaseException) -> None:
        self.stale = True
        self._last_error = f"{type(exc).__name__}: {exc}"
        self.metrics.bump("degraded_entries")
        self.metrics.mark_degraded()
        # Copy-on-degrade: re-publish the last consistent snapshot
        # flagged stale, so lock-free readers keep serving it (both
        # truth statuses) without ever touching the broken live model.
        self._publish_stale()

    def _mark_healthy(self) -> None:
        """Leave degraded mode (no-op when already healthy)."""
        self.stale = False
        self._last_error = None
        self.metrics.mark_healthy()

    # -- updates --------------------------------------------------------------

    def insert(self, predicate: str, *args: Value) -> Dict[str, object]:
        """Insert one fact (a singleton batch)."""
        return self.apply(inserts=[(predicate, tuple(args))])

    def delete(self, predicate: str, *args: Value) -> Dict[str, object]:
        """Delete one fact (a singleton batch)."""
        return self.apply(deletes=[(predicate, tuple(args))])

    def apply(
        self,
        inserts: Iterable[Tuple[str, Row]] = (),
        deletes: Iterable[Tuple[str, Row]] = (),
        annotations: Optional[Dict[Tuple[str, Row], object]] = None,
    ) -> Dict[str, object]:
        """Apply an update batch, maintaining the resident model.

        Atomic under failure: either the whole batch lands (and the
        model reflects it), or the EDB is rolled back and the resident
        model rebuilt — with the view degrading to stale service of the
        last consistent model as the final fallback.

        ``annotations`` attaches explicit semiring carrier values to
        inserts, keyed ``(predicate, row)`` — annotated views only.
        """
        inserts = [(predicate, tuple(row)) for predicate, row in inserts]
        deletes = [(predicate, tuple(row)) for predicate, row in deletes]
        self._check_arities(inserts)
        self._check_arities(deletes)
        if annotations:
            if self.semiring == "bool":
                raise ValueError(
                    "explicit fact annotations require a view registered "
                    "with a non-boolean --semiring"
                )
            annotations = {
                (predicate, tuple(row)): value
                for (predicate, row), value in annotations.items()
            }
        if self.engine is not None:
            return self._apply_incremental(inserts, deletes, annotations)
        applied_deletes = applied_inserts = 0
        for predicate, row in deletes:
            if self.database.holds(predicate, *row):
                self.database.discard(predicate, *row)
                applied_deletes += 1
        for predicate, row in inserts:
            if not self.database.holds(predicate, *row):
                self.database.add(predicate, *row)
                applied_inserts += 1
        self._result = None
        # The model now trails the database: readers must re-evaluate
        # on the locked path instead of serving the outdated snapshot.
        self._invalidate_snapshot()
        # The database moved on; give the next query a fresh chance to
        # recompute instead of pinning the view to its stale snapshot.
        self._mark_healthy()
        self.metrics.bump("update_batches")
        # Routine recompute-mode traffic is *not* a fallback — only a
        # genuine incremental-path failure bumps recompute_fallbacks.
        self.metrics.bump("recompute_batches")
        self.metrics.bump("inserts_applied", applied_inserts)
        self.metrics.bump("deletes_applied", applied_deletes)
        return {
            "mode": "recompute",
            "inserts": applied_inserts,
            "deletes": applied_deletes,
        }

    def _apply_incremental(
        self,
        inserts: List[Tuple[str, Row]],
        deletes: List[Tuple[str, Row]],
        annotations: Optional[Dict[Tuple[str, Row], object]] = None,
    ) -> Dict[str, object]:
        engine = self.engine
        assert engine is not None
        # A degraded view's resident state is untrustworthy; rebuild it
        # before layering a new batch on top (or refuse the batch).
        if self.stale and not self._reinitialize():
            raise ViewDegraded(
                "view is degraded and could not recover before the update; "
                "it keeps serving its last consistent model"
            )
        # Inverse batch, computed against the pre-batch EDB so a failed
        # apply can be undone exactly (only the updates that actually
        # change the database need undoing).
        undo_add = [
            (predicate, row)
            for predicate, row in deletes
            if engine.edb.holds(predicate, *row)
        ]
        undo_discard = [
            (predicate, row)
            for predicate, row in inserts
            if not engine.edb.holds(predicate, *row)
        ]
        engine.budget = self._budget()
        try:
            with self.metrics.phase("maintain"):
                if self.semiring != "bool":
                    summary = engine.apply(
                        inserts=inserts,
                        deletes=deletes,
                        annotations=annotations,
                    )
                else:
                    summary = engine.apply(inserts=inserts, deletes=deletes)
        except IncrementalMaintenanceError:
            # Correctness valve: the EDB update itself is fine, only the
            # derived bookkeeping broke — rebuild from the (already
            # updated) database and keep serving.
            self.metrics.bump("recompute_fallbacks")
            if not self._reinitialize():
                return self._degraded_summary(inserts, deletes)
            return {"mode": "reinitialized"}
        except Cancelled:
            self._rollback(undo_add, undo_discard)
            raise
        except ReproError as exc:
            # The batch failed mid-flight: roll the EDB back to the
            # pre-batch state, then rebuild the model so it matches.
            self._rollback(undo_add, undo_discard)
            self.metrics.bump("rollbacks")
            if not self._reinitialize():
                self._enter_degraded(exc)
                raise ViewDegraded(
                    f"update failed and recovery failed ({exc}); view is "
                    f"degraded and serves its last consistent model",
                ) from exc
            raise
        finally:
            engine.budget = None
        self._mark_healthy()
        # Incremental snapshot maintenance: apply the engine's net
        # plus/minus delta to the previous snapshot — O(|delta|), not a
        # full model copy.  Annotated views publish full instead: the
        # batch may change annotations on rows whose support did not
        # move, which a support-level delta cannot express.
        with self.metrics.phase("snapshot"):
            if self.semiring != "bool":
                self._publish_full(engine.model(), annotations=self._annotations())
            else:
                self._publish_delta(summary["plus"], summary["minus"])
        return {"mode": "incremental", **summary}

    def apply_stream(
        self,
        batches: Iterable[Tuple[Iterable[Tuple[str, Row]], Iterable[Tuple[str, Row]]]],
    ) -> Dict[str, object]:
        """Apply a burst of update batches as **one** maintenance pass.

        The delta-stream engine differentiates the burst into a single
        net Z-set delta and absorbs it in one circuit pass with one
        snapshot publish — N batches never cost N publish cycles.  A
        single-element burst degenerates to :meth:`apply` (so the
        per-batch failure discipline, fault points, and summary shape
        are exactly the singleton ones), and a recompute-mode view
        folds the burst into its database with one invalidation.

        Atomicity matches :meth:`apply`, burst-wide: either the whole
        burst lands, or the EDB is rolled back to the pre-burst state
        and the model rebuilt (degrading as the final fallback).
        """
        batches = [
            (
                [(predicate, tuple(row)) for predicate, row in inserts],
                [(predicate, tuple(row)) for predicate, row in deletes],
            )
            for inserts, deletes in batches
        ]
        for inserts, deletes in batches:
            self._check_arities(inserts)
            self._check_arities(deletes)
        if not batches:
            return {"mode": "noop", "batches": 0}
        if len(batches) == 1:
            inserts, deletes = batches[0]
            summary = self.apply(inserts=inserts, deletes=deletes)
            summary.setdefault("batches", 1)
            return summary
        if self.engine is not None:
            return self._apply_incremental_stream(batches)
        applied_inserts = applied_deletes = 0
        for inserts, deletes in batches:
            for predicate, row in deletes:
                if self.database.holds(predicate, *row):
                    self.database.discard(predicate, *row)
                    applied_deletes += 1
            for predicate, row in inserts:
                if not self.database.holds(predicate, *row):
                    self.database.add(predicate, *row)
                    applied_inserts += 1
            self.metrics.bump("update_batches")
            self.metrics.bump("recompute_batches")
        self._result = None
        self._invalidate_snapshot()
        self._mark_healthy()
        self.metrics.bump("inserts_applied", applied_inserts)
        self.metrics.bump("deletes_applied", applied_deletes)
        return {
            "mode": "recompute",
            "batches": len(batches),
            "inserts": applied_inserts,
            "deletes": applied_deletes,
        }

    def _apply_incremental_stream(
        self,
        batches: List[Tuple[List[Tuple[str, Row]], List[Tuple[str, Row]]]],
    ) -> Dict[str, object]:
        engine = self.engine
        assert engine is not None
        if self.stale and not self._reinitialize():
            raise ViewDegraded(
                "view is degraded and could not recover before the update; "
                "it keeps serving its last consistent model"
            )
        # Pre-burst presence per touched fact, recorded at first
        # mention: replaying it restores the exact pre-burst EDB even
        # when later batches in the burst touch the same fact again.
        presence: Dict[Tuple[str, Row], bool] = {}
        for inserts, deletes in batches:
            for predicate, row in deletes:
                key = (predicate, row)
                if key not in presence:
                    presence[key] = engine.edb.holds(predicate, *row)
            for predicate, row in inserts:
                key = (predicate, row)
                if key not in presence:
                    presence[key] = engine.edb.holds(predicate, *row)
        engine.budget = self._budget()
        try:
            with self.metrics.phase("maintain"):
                summary = engine.apply_stream(batches)
        except IncrementalMaintenanceError:
            # Correctness valve, burst-wide: the EDB holds the whole
            # burst, only the derived bookkeeping broke — rebuild from
            # the updated database and keep serving.
            self.metrics.bump("recompute_fallbacks")
            if not self._reinitialize():
                flat_inserts = [pair for inserts, _ in batches for pair in inserts]
                flat_deletes = [pair for _, deletes in batches for pair in deletes]
                return self._degraded_summary(flat_inserts, flat_deletes)
            return {"mode": "reinitialized", "batches": len(batches)}
        except Cancelled:
            # Unlike the singleton path, a cancelled burst rebuilds the
            # model after the rollback: the burst may have maintained
            # several components before the budget tripped, and the
            # queue's per-batch retry must start from a consistent
            # state.
            self._rollback_presence(presence)
            self._reinitialize()
            raise
        except ReproError as exc:
            self._rollback_presence(presence)
            self.metrics.bump("rollbacks")
            if not self._reinitialize():
                self._enter_degraded(exc)
                raise ViewDegraded(
                    f"update burst failed and recovery failed ({exc}); view "
                    f"is degraded and serves its last consistent model",
                ) from exc
            raise
        finally:
            engine.budget = None
        self._mark_healthy()
        with self.metrics.phase("snapshot"):
            if self.semiring != "bool":
                self._publish_full(engine.model(), annotations=self._annotations())
            else:
                self._publish_delta(summary["plus"], summary["minus"])
        return {"mode": "incremental", **summary}

    def _rollback_presence(
        self, presence: Dict[Tuple[str, Row], bool]
    ) -> None:
        engine = self.engine
        assert engine is not None
        for (predicate, row), present in presence.items():
            if present:
                if not engine.edb.holds(predicate, *row):
                    engine.edb.add(predicate, *row)
            else:
                engine.edb.discard(predicate, *row)

    def _rollback(
        self,
        undo_add: List[Tuple[str, Row]],
        undo_discard: List[Tuple[str, Row]],
    ) -> None:
        engine = self.engine
        assert engine is not None
        for predicate, row in undo_add:
            if not engine.edb.holds(predicate, *row):
                engine.edb.add(predicate, *row)
        for predicate, row in undo_discard:
            engine.edb.discard(predicate, *row)

    def _reinitialize(self) -> bool:
        """Rebuild the resident model from the EDB; True on success."""
        engine = self.engine
        assert engine is not None
        # Recovery is not governed by the (possibly already exhausted)
        # request budget — it must be allowed to finish.
        engine.budget = None
        try:
            with self.metrics.phase("recompute"):
                retry_with_backoff(
                    engine.initialize,
                    attempts=self.recovery_attempts,
                    on_retry=lambda *_: self.metrics.bump("recovery_retries"),
                )
        except Cancelled:
            raise
        except ReproError as exc:
            self._enter_degraded(exc)
            return False
        self._mark_healthy()
        self._publish_full(engine.model(), annotations=self._annotations())
        return True

    def _degraded_summary(
        self,
        inserts: List[Tuple[str, Row]],
        deletes: List[Tuple[str, Row]],
    ) -> Dict[str, object]:
        return {
            "mode": "degraded",
            "stale": True,
            "inserts": len(inserts),
            "deletes": len(deletes),
        }

    def recover(self) -> bool:
        """Try to leave degraded mode by rebuilding the model.

        Returns True when the view is healthy again.  The view reports
        healthy — and the time-in-degraded clock stops — only once the
        rebuild has actually succeeded; a failed recovery leaves the
        degraded flag and clock untouched.
        """
        if not self.stale:
            return True
        if self.engine is not None:
            return self._reinitialize()
        self._result = None
        try:
            self._ensure_result()
        except ReproError:
            return False
        return True

    def _check_arities(self, updates) -> None:
        arities = self.prepared.arities
        for predicate, row in updates:
            expected = arities.get(predicate)
            if expected is not None and expected != len(row):
                raise ValueError(
                    f"predicate {predicate} has arity {expected}, "
                    f"got fact with {len(row)} arguments"
                )

    # -- introspection --------------------------------------------------------

    def fingerprint(self) -> str:
        """Content hash of the view's current database."""
        return self.database.fingerprint()

    def stats(self) -> Dict[str, object]:
        """Metrics snapshot plus structural info."""
        snapshot = self.metrics.snapshot()
        snapshot.update(
            {
                "mode": self.mode,
                "semantics": self.semantics,
                "semiring": self.semiring,
                "maintenance": (
                    "annotated"
                    if self.semiring != "bool"
                    else self.maintenance
                    if self.mode == "incremental"
                    else None
                ),
                "queue_depth": self.pending.depth(),
                "facts": self.database.fact_count(),
                "stale": self.stale,
                "ground_cache_hits": self.prepared.ground_cache_hits,
                "ground_cache_misses": self.prepared.ground_cache_misses,
            }
        )
        published, servable = self._published.get()
        snapshot["snapshot_generation"] = self._generation
        snapshot["snapshot_servable"] = servable
        snapshot["chain_depth"] = (
            published.max_chain_depth() if published is not None else 0
        )
        if published is not None:
            snapshot["snapshot_age_seconds"] = round(
                time.monotonic() - published.published_at, 6
            )
        if self._last_error is not None:
            snapshot["last_error"] = self._last_error
        if self.engine is not None:
            snapshot["model_rows"] = sum(
                len(rows) for rows in self.engine.state.facts.values()
            )
        return snapshot
