"""Materialized views: resident models maintained under updates.

A :class:`MaterializedView` binds a prepared program to its own
database and keeps the model resident between queries:

* ``semantics="stratified"`` on a stratified program takes the
  **incremental fast path** — a :class:`~repro.service.incremental.
  IncrementalEngine` maintains the model under insert/delete batches
  without recomputation;
* every other combination (valid, well-founded, inflationary — or a
  view explicitly forced off the fast path) routes updates through a
  **correctness-preserving recompute fallback**: the database is
  mutated, the resident result invalidated, and the next query
  re-evaluates — reusing the prepared plan's fingerprint-keyed ground
  cache when the database revisits a known state.

Failure discipline (the robustness contract, tested by the chaos
suite in ``tests/robustness``):

* a failed delta **never leaves a half-applied view** — when
  maintenance raises mid-batch the EDB is rolled back by the inverse
  batch and the resident model rebuilt from scratch (wrapped in
  :func:`~repro.robustness.retry_with_backoff`);
* if even the rebuild keeps failing, the view enters **degraded mode**:
  it serves its last consistent model, flagged ``stale``, instead of
  crashing or serving a corrupted one.  The next successful update or
  recompute clears the flag.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..datalog.database import Database
from ..datalog.engine import SEMANTICS, QueryResult, run
from ..datalog.stratification import NotStratifiedError
from ..relations.universe import FunctionRegistry
from ..relations.values import Value
from ..robustness import (
    Cancelled,
    EvaluationBudget,
    ReproError,
    ViewDegraded,
    fault_point,
    retry_with_backoff,
)
from .incremental import IncrementalEngine, IncrementalMaintenanceError
from .metrics import ViewMetrics
from .registry import PreparedProgram

__all__ = ["MaterializedView"]

Row = Tuple[Value, ...]


class MaterializedView:
    """One registered program's resident, update-maintained model.

    ``budget_factory`` (optional) supplies a fresh
    :class:`~repro.robustness.EvaluationBudget` per expensive operation
    (recompute, incremental batch) — the hook the service layer uses to
    impose per-request deadlines.
    """

    def __init__(
        self,
        prepared: PreparedProgram,
        database: Optional[Database] = None,
        semantics: str = "stratified",
        registry: Optional[FunctionRegistry] = None,
        metrics: Optional[ViewMetrics] = None,
        incremental: bool = True,
        max_rounds: int = 10_000,
        max_atoms: int = 1_000_000,
        budget_factory: Optional[Callable[[], EvaluationBudget]] = None,
        recovery_attempts: int = 3,
    ):
        if semantics not in SEMANTICS:
            raise ValueError(
                f"unknown semantics {semantics!r}; pick from {SEMANTICS}"
            )
        if semantics == "stratified" and not prepared.stratified:
            raise NotStratifiedError(
                f"program {prepared.name!r} is not stratified; register it "
                "under the valid or wellfounded semantics instead"
            )
        self.prepared = prepared
        self.semantics = semantics
        self.registry = registry
        self.metrics = metrics if metrics is not None else ViewMetrics()
        self.max_rounds = max_rounds
        self.max_atoms = max_atoms
        self.budget_factory = budget_factory
        self.recovery_attempts = recovery_attempts
        # Degraded-mode state: when ``stale`` is True, queries answer
        # from ``_last_good`` (the last consistent model snapshot)
        # instead of the (unavailable or rebuilding) live model.
        self.stale = False
        self._last_good: Optional[Dict[str, FrozenSet[Row]]] = None
        self._last_error: Optional[str] = None
        self.mode = (
            "incremental"
            if incremental and semantics == "stratified" and prepared.stratified
            else "recompute"
        )
        self.engine: Optional[IncrementalEngine] = None
        self._result: Optional[QueryResult] = None
        if self.mode == "incremental":
            with self.metrics.phase("initialize"):
                # The initial materialization runs under a request
                # budget too — a divergent program must hit its
                # deadline at registration, not loop forever.
                self.engine = IncrementalEngine(
                    prepared,
                    database=database,
                    registry=registry,
                    metrics=self.metrics,
                    budget=self._budget(),
                )
            self.engine.budget = None
            self.database = self.engine.edb
            self._last_good = self.engine.model()
        else:
            self.database = (database or Database()).copy()
            for predicate, row in prepared.seed_facts:
                if not self.database.holds(predicate, *row):
                    self.database.add(predicate, *row)

    def _budget(self) -> Optional[EvaluationBudget]:
        return self.budget_factory() if self.budget_factory is not None else None

    # -- queries --------------------------------------------------------------

    def rows(self, predicate: str) -> FrozenSet[Row]:
        """Rows of a predicate that are certainly true.

        In degraded mode this serves the last consistent model — check
        :attr:`stale` (the server surfaces it on the wire)."""
        self.metrics.bump("queries")
        if self.stale:
            self.metrics.bump("stale_queries")
            assert self._last_good is not None
            return self._last_good.get(predicate, frozenset())
        if self.engine is not None:
            return self.engine.rows(predicate)
        try:
            return self._ensure_result().true_rows(predicate)
        except ViewDegraded:
            # The recompute just failed; degrade in place and answer
            # from the last consistent model rather than erroring.
            self.metrics.bump("stale_queries")
            assert self._last_good is not None
            return self._last_good.get(predicate, frozenset())

    def undefined_rows(self, predicate: str) -> FrozenSet[Row]:
        """Rows with undefined status (stratified models are total)."""
        if self.stale or self.engine is not None:
            return frozenset()
        try:
            return self._ensure_result().undefined_rows(predicate)
        except ViewDegraded:
            return frozenset()

    def predicates(self) -> FrozenSet[str]:
        """Every predicate the view can answer about."""
        return (
            self.prepared.program.predicates() | self.database.predicates()
        )

    def _ensure_result(self) -> QueryResult:
        if self._result is not None:
            return self._result

        def recompute() -> QueryResult:
            fault_point("view.recompute")
            ground_program = self.prepared.ground_for(
                self.database,
                registry=self.registry,
                max_rounds=self.max_rounds,
                max_atoms=self.max_atoms,
            )
            return run(
                self.prepared.program,
                self.database,
                semantics=self.semantics,
                registry=self.registry,
                ground_program=ground_program,
                budget=self._budget(),
            )

        try:
            with self.metrics.phase("recompute"):
                self._result = retry_with_backoff(
                    recompute,
                    attempts=self.recovery_attempts,
                    on_retry=lambda *_: self.metrics.bump("recompute_retries"),
                )
        except Cancelled:
            raise
        except ReproError as exc:
            if self._last_good is None:
                raise
            self._enter_degraded(exc)
            raise ViewDegraded(
                f"recompute failed ({exc}); serving last consistent model",
            ) from exc
        self._mark_healthy()
        self._last_good = {
            predicate: self._result.true_rows(predicate)
            for predicate in self.predicates()
        }
        return self._result

    def _enter_degraded(self, exc: BaseException) -> None:
        self.stale = True
        self._last_error = f"{type(exc).__name__}: {exc}"
        self.metrics.bump("degraded_entries")
        self.metrics.mark_degraded()

    def _mark_healthy(self) -> None:
        """Leave degraded mode (no-op when already healthy)."""
        self.stale = False
        self._last_error = None
        self.metrics.mark_healthy()

    # -- updates --------------------------------------------------------------

    def insert(self, predicate: str, *args: Value) -> Dict[str, object]:
        """Insert one fact (a singleton batch)."""
        return self.apply(inserts=[(predicate, tuple(args))])

    def delete(self, predicate: str, *args: Value) -> Dict[str, object]:
        """Delete one fact (a singleton batch)."""
        return self.apply(deletes=[(predicate, tuple(args))])

    def apply(
        self,
        inserts: Iterable[Tuple[str, Row]] = (),
        deletes: Iterable[Tuple[str, Row]] = (),
    ) -> Dict[str, object]:
        """Apply an update batch, maintaining the resident model.

        Atomic under failure: either the whole batch lands (and the
        model reflects it), or the EDB is rolled back and the resident
        model rebuilt — with the view degrading to stale service of the
        last consistent model as the final fallback.
        """
        inserts = [(predicate, tuple(row)) for predicate, row in inserts]
        deletes = [(predicate, tuple(row)) for predicate, row in deletes]
        self._check_arities(inserts)
        self._check_arities(deletes)
        if self.engine is not None:
            return self._apply_incremental(inserts, deletes)
        applied_deletes = applied_inserts = 0
        for predicate, row in deletes:
            if self.database.holds(predicate, *row):
                self.database.discard(predicate, *row)
                applied_deletes += 1
        for predicate, row in inserts:
            if not self.database.holds(predicate, *row):
                self.database.add(predicate, *row)
                applied_inserts += 1
        self._result = None
        # The database moved on; give the next query a fresh chance to
        # recompute instead of pinning the view to its stale snapshot.
        self._mark_healthy()
        self.metrics.bump("update_batches")
        self.metrics.bump("recompute_fallbacks")
        self.metrics.bump("inserts_applied", applied_inserts)
        self.metrics.bump("deletes_applied", applied_deletes)
        return {
            "mode": "recompute",
            "inserts": applied_inserts,
            "deletes": applied_deletes,
        }

    def _apply_incremental(
        self,
        inserts: List[Tuple[str, Row]],
        deletes: List[Tuple[str, Row]],
    ) -> Dict[str, object]:
        engine = self.engine
        assert engine is not None
        # A degraded view's resident state is untrustworthy; rebuild it
        # before layering a new batch on top (or refuse the batch).
        if self.stale and not self._reinitialize():
            raise ViewDegraded(
                "view is degraded and could not recover before the update; "
                "it keeps serving its last consistent model"
            )
        # Inverse batch, computed against the pre-batch EDB so a failed
        # apply can be undone exactly (only the updates that actually
        # change the database need undoing).
        undo_add = [
            (predicate, row)
            for predicate, row in deletes
            if engine.edb.holds(predicate, *row)
        ]
        undo_discard = [
            (predicate, row)
            for predicate, row in inserts
            if not engine.edb.holds(predicate, *row)
        ]
        engine.budget = self._budget()
        try:
            with self.metrics.phase("maintain"):
                summary = engine.apply(inserts=inserts, deletes=deletes)
        except IncrementalMaintenanceError:
            # Correctness valve: the EDB update itself is fine, only the
            # derived bookkeeping broke — rebuild from the (already
            # updated) database and keep serving.
            self.metrics.bump("recompute_fallbacks")
            if not self._reinitialize():
                return self._degraded_summary(inserts, deletes)
            return {"mode": "reinitialized"}
        except Cancelled:
            self._rollback(undo_add, undo_discard)
            raise
        except ReproError as exc:
            # The batch failed mid-flight: roll the EDB back to the
            # pre-batch state, then rebuild the model so it matches.
            self._rollback(undo_add, undo_discard)
            self.metrics.bump("rollbacks")
            if not self._reinitialize():
                self._enter_degraded(exc)
                raise ViewDegraded(
                    f"update failed and recovery failed ({exc}); view is "
                    f"degraded and serves its last consistent model",
                ) from exc
            raise
        finally:
            engine.budget = None
        self._mark_healthy()
        self._last_good = engine.model()
        return {"mode": "incremental", **summary}

    def _rollback(
        self,
        undo_add: List[Tuple[str, Row]],
        undo_discard: List[Tuple[str, Row]],
    ) -> None:
        engine = self.engine
        assert engine is not None
        for predicate, row in undo_add:
            if not engine.edb.holds(predicate, *row):
                engine.edb.add(predicate, *row)
        for predicate, row in undo_discard:
            engine.edb.discard(predicate, *row)

    def _reinitialize(self) -> bool:
        """Rebuild the resident model from the EDB; True on success."""
        engine = self.engine
        assert engine is not None
        # Recovery is not governed by the (possibly already exhausted)
        # request budget — it must be allowed to finish.
        engine.budget = None
        try:
            with self.metrics.phase("recompute"):
                retry_with_backoff(
                    engine.initialize,
                    attempts=self.recovery_attempts,
                    on_retry=lambda *_: self.metrics.bump("recovery_retries"),
                )
        except Cancelled:
            raise
        except ReproError as exc:
            self._enter_degraded(exc)
            return False
        self._mark_healthy()
        self._last_good = engine.model()
        return True

    def _degraded_summary(
        self,
        inserts: List[Tuple[str, Row]],
        deletes: List[Tuple[str, Row]],
    ) -> Dict[str, object]:
        return {
            "mode": "degraded",
            "stale": True,
            "inserts": len(inserts),
            "deletes": len(deletes),
        }

    def recover(self) -> bool:
        """Try to leave degraded mode by rebuilding the model.

        Returns True when the view is healthy again.  Recompute-mode
        views just drop the poisoned result and retry on next query.
        """
        if not self.stale:
            return True
        if self.engine is not None:
            return self._reinitialize()
        self._result = None
        self._mark_healthy()
        try:
            self._ensure_result()
        except ReproError:
            return False
        return True

    def _check_arities(self, updates) -> None:
        arities = self.prepared.arities
        for predicate, row in updates:
            expected = arities.get(predicate)
            if expected is not None and expected != len(row):
                raise ValueError(
                    f"predicate {predicate} has arity {expected}, "
                    f"got fact with {len(row)} arguments"
                )

    # -- introspection --------------------------------------------------------

    def fingerprint(self) -> str:
        """Content hash of the view's current database."""
        return self.database.fingerprint()

    def stats(self) -> Dict[str, object]:
        """Metrics snapshot plus structural info."""
        snapshot = self.metrics.snapshot()
        snapshot.update(
            {
                "mode": self.mode,
                "semantics": self.semantics,
                "facts": self.database.fact_count(),
                "stale": self.stale,
                "ground_cache_hits": self.prepared.ground_cache_hits,
                "ground_cache_misses": self.prepared.ground_cache_misses,
            }
        )
        if self._last_error is not None:
            snapshot["last_error"] = self._last_error
        if self.engine is not None:
            snapshot["model_rows"] = sum(
                len(rows) for rows in self.engine.state.facts.values()
            )
        return snapshot
