"""Materialized views: resident models maintained under updates.

A :class:`MaterializedView` binds a prepared program to its own
database and keeps the model resident between queries:

* ``semantics="stratified"`` on a stratified program takes the
  **incremental fast path** — a :class:`~repro.service.incremental.
  IncrementalEngine` maintains the model under insert/delete batches
  without recomputation;
* every other combination (valid, well-founded, inflationary — or a
  view explicitly forced off the fast path) routes updates through a
  **correctness-preserving recompute fallback**: the database is
  mutated, the resident result invalidated, and the next query
  re-evaluates — reusing the prepared plan's fingerprint-keyed ground
  cache when the database revisits a known state.

Should the incremental engine ever detect broken bookkeeping it raises,
and the view transparently falls back to re-initialisation, counting
the event in its metrics — incrementality is an optimisation, never a
correctness risk.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..datalog.database import Database
from ..datalog.engine import SEMANTICS, QueryResult, run
from ..datalog.stratification import NotStratifiedError
from ..relations.universe import FunctionRegistry
from ..relations.values import Value
from .incremental import IncrementalEngine, IncrementalMaintenanceError
from .metrics import ViewMetrics
from .registry import PreparedProgram

__all__ = ["MaterializedView"]

Row = Tuple[Value, ...]


class MaterializedView:
    """One registered program's resident, update-maintained model."""

    def __init__(
        self,
        prepared: PreparedProgram,
        database: Optional[Database] = None,
        semantics: str = "stratified",
        registry: Optional[FunctionRegistry] = None,
        metrics: Optional[ViewMetrics] = None,
        incremental: bool = True,
        max_rounds: int = 10_000,
        max_atoms: int = 1_000_000,
    ):
        if semantics not in SEMANTICS:
            raise ValueError(
                f"unknown semantics {semantics!r}; pick from {SEMANTICS}"
            )
        if semantics == "stratified" and not prepared.stratified:
            raise NotStratifiedError(
                f"program {prepared.name!r} is not stratified; register it "
                "under the valid or wellfounded semantics instead"
            )
        self.prepared = prepared
        self.semantics = semantics
        self.registry = registry
        self.metrics = metrics if metrics is not None else ViewMetrics()
        self.max_rounds = max_rounds
        self.max_atoms = max_atoms
        self.mode = (
            "incremental"
            if incremental and semantics == "stratified" and prepared.stratified
            else "recompute"
        )
        self.engine: Optional[IncrementalEngine] = None
        self._result: Optional[QueryResult] = None
        if self.mode == "incremental":
            with self.metrics.phase("initialize"):
                self.engine = IncrementalEngine(
                    prepared,
                    database=database,
                    registry=registry,
                    metrics=self.metrics,
                )
            self.database = self.engine.edb
        else:
            self.database = (database or Database()).copy()
            for predicate, row in prepared.seed_facts:
                if not self.database.holds(predicate, *row):
                    self.database.add(predicate, *row)

    # -- queries --------------------------------------------------------------

    def rows(self, predicate: str) -> FrozenSet[Row]:
        """Rows of a predicate that are certainly true."""
        self.metrics.bump("queries")
        if self.engine is not None:
            return self.engine.rows(predicate)
        return self._ensure_result().true_rows(predicate)

    def undefined_rows(self, predicate: str) -> FrozenSet[Row]:
        """Rows with undefined status (stratified models are total)."""
        if self.engine is not None:
            return frozenset()
        return self._ensure_result().undefined_rows(predicate)

    def predicates(self) -> FrozenSet[str]:
        """Every predicate the view can answer about."""
        return (
            self.prepared.program.predicates() | self.database.predicates()
        )

    def _ensure_result(self) -> QueryResult:
        if self._result is None:
            with self.metrics.phase("recompute"):
                ground_program = self.prepared.ground_for(
                    self.database,
                    registry=self.registry,
                    max_rounds=self.max_rounds,
                    max_atoms=self.max_atoms,
                )
                self._result = run(
                    self.prepared.program,
                    self.database,
                    semantics=self.semantics,
                    registry=self.registry,
                    ground_program=ground_program,
                )
        return self._result

    # -- updates --------------------------------------------------------------

    def insert(self, predicate: str, *args: Value) -> Dict[str, object]:
        """Insert one fact (a singleton batch)."""
        return self.apply(inserts=[(predicate, tuple(args))])

    def delete(self, predicate: str, *args: Value) -> Dict[str, object]:
        """Delete one fact (a singleton batch)."""
        return self.apply(deletes=[(predicate, tuple(args))])

    def apply(
        self,
        inserts: Iterable[Tuple[str, Row]] = (),
        deletes: Iterable[Tuple[str, Row]] = (),
    ) -> Dict[str, object]:
        """Apply an update batch, maintaining the resident model."""
        inserts = [(predicate, tuple(row)) for predicate, row in inserts]
        deletes = [(predicate, tuple(row)) for predicate, row in deletes]
        self._check_arities(inserts)
        self._check_arities(deletes)
        if self.engine is not None:
            try:
                with self.metrics.phase("maintain"):
                    summary = self.engine.apply(inserts=inserts, deletes=deletes)
                return {"mode": "incremental", **summary}
            except IncrementalMaintenanceError:
                # Correctness valve: rebuild the resident model from the
                # (already updated) database and keep serving.
                self.metrics.bump("recompute_fallbacks")
                with self.metrics.phase("recompute"):
                    self.engine.initialize()
                return {"mode": "reinitialized"}
        applied_deletes = applied_inserts = 0
        for predicate, row in deletes:
            if self.database.holds(predicate, *row):
                self.database.discard(predicate, *row)
                applied_deletes += 1
        for predicate, row in inserts:
            if not self.database.holds(predicate, *row):
                self.database.add(predicate, *row)
                applied_inserts += 1
        self._result = None
        self.metrics.bump("update_batches")
        self.metrics.bump("recompute_fallbacks")
        self.metrics.bump("inserts_applied", applied_inserts)
        self.metrics.bump("deletes_applied", applied_deletes)
        return {
            "mode": "recompute",
            "inserts": applied_inserts,
            "deletes": applied_deletes,
        }

    def _check_arities(self, updates) -> None:
        arities = self.prepared.arities
        for predicate, row in updates:
            expected = arities.get(predicate)
            if expected is not None and expected != len(row):
                raise ValueError(
                    f"predicate {predicate} has arity {expected}, "
                    f"got fact with {len(row)} arguments"
                )

    # -- introspection --------------------------------------------------------

    def fingerprint(self) -> str:
        """Content hash of the view's current database."""
        return self.database.fingerprint()

    def stats(self) -> Dict[str, object]:
        """Metrics snapshot plus structural info."""
        snapshot = self.metrics.snapshot()
        snapshot.update(
            {
                "mode": self.mode,
                "semantics": self.semantics,
                "facts": self.database.fact_count(),
                "ground_cache_hits": self.prepared.ground_cache_hits,
                "ground_cache_misses": self.prepared.ground_cache_misses,
            }
        )
        if self.engine is not None:
            snapshot["model_rows"] = sum(
                len(rows) for rows in self.engine.state.facts.values()
            )
        return snapshot
