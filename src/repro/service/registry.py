"""Program registration and prepared plans.

A long-lived query service should pay for parsing, safety checking,
stratification, and binding-order compilation **once** per program, not
once per query.  :class:`ProgramRegistry` does exactly that: it turns
program text (or an AST) into a :class:`PreparedProgram` holding

* the compiled binding order of every rule (the safety check — an
  unsafe rule has no evaluable order, Definition 4.1 operationalised);
* a dependency-condensation **component schedule** (strongly connected
  components of the predicate graph in topological order, each flagged
  recursive or not) — the unit both the from-scratch and the
  incremental evaluators iterate over;
* the classical stratum assignment when the program is stratified; and
* for the non-stratified semantics, a small **ground-program cache**
  keyed by the database fingerprint, so re-grounding is skipped when
  the database returns to a previously seen state.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple, Union

import networkx as nx

from ..datalog.ast import Program, Rule
from ..datalog.database import Database
from ..datalog.grounding import GroundProgram, compiled_binding_order, ground
from ..datalog.parser import parse_program
from ..datalog.stratification import dependency_graph, is_stratified, stratify
from ..relations.universe import FunctionRegistry

__all__ = [
    "Component",
    "PreparedProgram",
    "ProgramRegistry",
    "prepare_program",
    "split_program_and_facts",
]


def split_program_and_facts(program: Program) -> Tuple[Program, Database]:
    """Ground facts written inside a program become database facts."""
    rules = []
    database = Database()
    for rule in program.rules:
        if rule.is_fact():
            database.add(rule.head.predicate, *(arg.value for arg in rule.head.args))
        else:
            rules.append(rule)
    return Program(tuple(rules), name=program.name), database


@dataclass(frozen=True)
class Component:
    """One strongly connected component of the predicate graph.

    ``recursive`` is True when the component contains a dependency edge
    (mutual or self recursion) — the flag that routes incremental
    maintenance to DRed over-delete/re-derive instead of exact
    derivation counting.
    """

    predicates: FrozenSet[str]
    rules: Tuple[Tuple[Rule, Tuple[Tuple[str, object], ...]], ...]
    recursive: bool

    def has_rules(self) -> bool:
        """False for pure-EDB components (no rule derives them)."""
        return bool(self.rules)


@dataclass
class PreparedProgram:
    """A program compiled once for repeated serving."""

    name: str
    program: Program
    seed_facts: Database
    stratified: bool
    strata: Optional[Dict[str, int]]
    schedule: Tuple[Component, ...]
    arities: Dict[str, int]
    _ground_cache: "OrderedDict[str, GroundProgram]" = field(
        default_factory=OrderedDict, repr=False
    )
    ground_cache_capacity: int = 8
    ground_cache_hits: int = 0
    ground_cache_misses: int = 0

    def component_of(self, predicate: str) -> Optional[Component]:
        """The schedule component owning a predicate (None for strays)."""
        for component in self.schedule:
            if predicate in component.predicates:
                return component
        return None

    def ground_for(
        self,
        database: Database,
        registry: Optional[FunctionRegistry] = None,
        max_rounds: int = 10_000,
        max_atoms: int = 1_000_000,
        require_complete: bool = True,
    ) -> GroundProgram:
        """Ground against ``database``, reusing the fingerprint cache."""
        key = database.fingerprint()
        cached = self._ground_cache.get(key)
        if cached is not None:
            self.ground_cache_hits += 1
            self._ground_cache.move_to_end(key)
            return cached
        self.ground_cache_misses += 1
        ground_program = ground(
            self.program,
            database,
            registry=registry,
            max_rounds=max_rounds,
            max_atoms=max_atoms,
            require_complete=require_complete,
        )
        self._ground_cache[key] = ground_program
        while len(self._ground_cache) > self.ground_cache_capacity:
            self._ground_cache.popitem(last=False)
        return ground_program

    def describe(self) -> Dict[str, object]:
        """A JSON-friendly summary (the ``register`` reply)."""
        return {
            "name": self.name,
            "rules": len(self.program.rules),
            "stratified": self.stratified,
            "strata": (max(self.strata.values(), default=0) + 1)
            if self.strata is not None and self.strata
            else (1 if self.stratified else None),
            "components": len(self.schedule),
            "recursive_components": sum(
                1 for component in self.schedule if component.recursive
            ),
            "idb": sorted(self.program.idb_predicates()),
            "edb": sorted(self.program.edb_predicates()),
            "seed_facts": self.seed_facts.fact_count(),
        }


def _build_schedule(program: Program) -> Tuple[Component, ...]:
    graph = dependency_graph(program)
    condensation = nx.condensation(graph)
    components = []
    for component_id in nx.topological_sort(condensation):
        members = frozenset(condensation.nodes[component_id]["members"])
        recursive = any(
            graph.has_edge(source, target)
            for source in members
            for target in members
        )
        rules = tuple(
            (rule, compiled_binding_order(rule))
            for rule in program.rules
            if rule.head.predicate in members
        )
        components.append(Component(members, rules, recursive))
    return tuple(components)


def prepare_program(
    name: str, source: Union[str, Program]
) -> PreparedProgram:
    """Compile ``source`` (text or AST) into a :class:`PreparedProgram`.

    Raises :class:`~repro.datalog.grounding.UnsafeRuleError` when any
    rule lacks an evaluable binding order, and parse errors verbatim.
    Inline ground facts are split off into ``seed_facts``.
    """
    if isinstance(source, str):
        program = parse_program(source, name=name)
    else:
        program = source
    program, seed_facts = split_program_and_facts(program)
    arities = program.arities()
    for rule in program.rules:
        compiled_binding_order(rule)  # safety check; memoized for reuse
    stratified = is_stratified(program)
    strata = stratify(program) if stratified else None
    schedule = _build_schedule(program)
    return PreparedProgram(
        name=name,
        program=program,
        seed_facts=seed_facts,
        stratified=stratified,
        strata=strata,
        schedule=schedule,
        arities=arities,
    )


class ProgramRegistry:
    """Named prepared programs, compiled once and reused."""

    def __init__(self) -> None:
        self._programs: Dict[str, PreparedProgram] = {}

    def register(
        self, name: str, source: Union[str, Program], replace: bool = True
    ) -> PreparedProgram:
        """Prepare and store a program under ``name``."""
        if not replace and name in self._programs:
            raise ValueError(f"program {name!r} already registered")
        prepared = prepare_program(name, source)
        self._programs[name] = prepared
        return prepared

    def store(self, name: str, prepared: PreparedProgram) -> None:
        """Store an already-prepared program under ``name``.

        The query service compiles outside its registry write lock and
        stores inside it, keeping the program table and the view table
        in lockstep without paying for compilation under the lock.
        """
        self._programs[name] = prepared

    def unregister(self, name: str) -> PreparedProgram:
        """Drop a program; raises ``KeyError`` when absent."""
        try:
            return self._programs.pop(name)
        except KeyError:
            raise KeyError(f"program {name!r} not registered") from None

    def get(self, name: str) -> PreparedProgram:
        """Look up a prepared program; raises ``KeyError`` when absent."""
        return self._programs[name]

    def names(self):
        """Registered program names, sorted."""
        return sorted(self._programs)

    def __contains__(self, name: str) -> bool:
        return name in self._programs

    def __len__(self) -> int:
        return len(self._programs)
