"""The background snapshot compactor (``serve --compactor=thread``).

Under a write-heavy / read-light workload, each publish stacks another
copy-on-write delta cell on the hot predicates' chains; the first
reader after the burst pays the whole chain walk.  The default defence
is compact-on-Nth-publish (see :meth:`~repro.service.views.
MaterializedView.maybe_compact`), which amortizes the flattening into
the write path.  :class:`SnapshotCompactor` is the alternative for
deployments that want the write path untouched: a daemon thread sweeps
every registered view on a fixed cadence and flattens any published
snapshot whose chains exceed the view's depth cap.

The sweep is wait-free with respect to the service: it walks the
copy-on-write name table (the same lock-free structure queries resolve
against), and compaction itself only forces the lazy materialization a
reader would perform anyway — no lock is taken, no observable value
changes, and a view unregistered mid-sweep is simply compacted one
last time in vain.
"""

from __future__ import annotations

import logging
import threading

__all__ = ["SnapshotCompactor"]

logger = logging.getLogger(__name__)


class SnapshotCompactor:
    """A daemon thread that periodically flattens deep snapshot chains.

    ``sweep_interval`` is the pause between sweeps, in seconds.  The
    thread starts on :meth:`start` and stops — promptly, mid-pause —
    on :meth:`stop`; both are idempotent.  ``sweeps`` counts completed
    passes (test hooks wait on it instead of sleeping blindly).
    """

    def __init__(self, service, sweep_interval: float = 0.05):
        self.service = service
        self.sweep_interval = sweep_interval
        self.sweeps = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        """Start the sweeper thread (no-op when already running)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="snapshot-compactor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the sweeper to exit and join it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def sweep(self) -> int:
        """One pass over every registered view; cells compacted total.

        Public so tests (and the ``thread`` mode's loop) share one code
        path.  Resolution is lock-free: the name table read is one
        atomic reference load, and a racing register/unregister just
        means this sweep sees the table published before or after it.
        """
        compacted = 0
        for view, _generation in self.service.name_table().values():
            try:
                compacted += view.maybe_compact()
            except Exception:  # a broken view must not kill the sweeper
                logger.exception(
                    "compaction sweep failed for a view; continuing"
                )
        self.sweeps += 1
        return compacted

    def _run(self) -> None:
        while not self._stop.wait(self.sweep_interval):
            self.sweep()

    def __repr__(self) -> str:
        alive = self._thread is not None and self._thread.is_alive()
        return f"<SnapshotCompactor sweeps={self.sweeps} alive={alive}>"
