"""The serving layer: registered programs, resident views, updates.

Everything below this package exists so a query is *not* a full
parse–ground–solve round trip: programs are compiled once into prepared
plans (:mod:`registry`), their models kept resident and maintained
as the integral of a delta stream (:mod:`dbsp`, :mod:`views` — with
:mod:`incremental` as the legacy baseline), repeated answers
served from an LRU cache (:mod:`cache`), and the whole thing observable
(:mod:`metrics`) and scriptable over a line protocol (:mod:`server`,
``repro serve``).  See ``docs/SERVICE.md`` for the architecture.
"""

from .cache import LRUCache
from .compactor import SnapshotCompactor
from .dbsp import DBSPEngine, UpdateQueue, ZSet
from .incremental import IncrementalEngine, IncrementalMaintenanceError
from .locks import AtomicReference, InstrumentedLock, ReadWriteLock
from .metrics import Histogram, ServiceMetrics, ViewMetrics
from .prometheus import PrometheusExporter, render_prometheus
from .snapshot import ModelSnapshot
from .registry import (
    Component,
    PreparedProgram,
    ProgramRegistry,
    prepare_program,
    split_program_and_facts,
)
from .annotated import AnnotatedEngine
from .demand import DemandEntry, DemandRegistry
from .server import (
    QueryService,
    parse_annotated_fact,
    parse_bound_pattern,
    parse_fact,
    serve_stream,
    serve_unix_socket,
)
from .views import MaterializedView

__all__ = [
    "AnnotatedEngine",
    "AtomicReference",
    "Component",
    "DBSPEngine",
    "DemandEntry",
    "DemandRegistry",
    "Histogram",
    "IncrementalEngine",
    "IncrementalMaintenanceError",
    "InstrumentedLock",
    "LRUCache",
    "MaterializedView",
    "ModelSnapshot",
    "PreparedProgram",
    "PrometheusExporter",
    "ProgramRegistry",
    "QueryService",
    "ReadWriteLock",
    "ServiceMetrics",
    "SnapshotCompactor",
    "UpdateQueue",
    "ViewMetrics",
    "ZSet",
    "parse_annotated_fact",
    "parse_bound_pattern",
    "parse_fact",
    "prepare_program",
    "render_prometheus",
    "serve_stream",
    "serve_unix_socket",
    "split_program_and_facts",
]
