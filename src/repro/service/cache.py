"""A small LRU result cache with explicit invalidation.

The query service answers repeated ``query view predicate`` requests
from here; the update path invalidates a view's entries the moment a
delta batch lands, so a hit is always consistent with the resident
model.  Keys are ``(scope, ...)`` tuples — the scope (the view name) is
what invalidation targets.

Thread-safe: the service shards its big lock per view, so cache
entries for different scopes are read and written concurrently; every
operation takes the cache's internal mutex.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Set, Tuple

__all__ = ["LRUCache"]


_MISSING = object()


class LRUCache:
    """Least-recently-used mapping with per-scope invalidation."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[Hashable, ...], object]" = OrderedDict()
        self._scope_keys: Dict[Hashable, Set[Tuple[Hashable, ...]]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Tuple[Hashable, ...], default=None):
        """Look up a key, refreshing its recency.  Counts hit/miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self.hits += 1
            self._entries.move_to_end(key)
            return value

    def put(self, key: Tuple[Hashable, ...], value) -> None:
        """Insert/overwrite a key; the first key element is its scope."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            self._scope_keys.setdefault(key[0], set()).add(key)
            while len(self._entries) > self.capacity:
                evicted, _value = self._entries.popitem(last=False)
                keys = self._scope_keys.get(evicted[0])
                if keys is not None:
                    keys.discard(evicted)
                    if not keys:
                        del self._scope_keys[evicted[0]]

    def invalidate(self, scope: Hashable) -> int:
        """Drop every entry whose scope matches; returns the count."""
        with self._lock:
            keys = self._scope_keys.pop(scope, None)
            if not keys:
                return 0
            for key in keys:
                self._entries.pop(key, None)
            return len(keys)

    def clear(self) -> None:
        """Drop everything (counters survive)."""
        with self._lock:
            self._entries.clear()
            self._scope_keys.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "capacity": self.capacity,
            }
