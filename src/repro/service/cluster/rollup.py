"""Rolling per-shard ``ServiceMetrics`` snapshots into one aggregate.

The router's ``metrics`` verb fans out to every live shard and merges
the JSON snapshots each worker's
:meth:`~repro.service.server.QueryService.metrics_snapshot` returns.
The rollup rules:

* **monotone counters are summed** — the service-level ``counters``
  section, the per-view ``rollup`` section, and the ``retired``
  section each become the element-wise sum across shards, plus the
  *router-retired* totals: when a shard is drained or its worker
  crashes, the router absorbs the shard's last-reported counters
  (exactly the discipline ``ServiceMetrics.absorb`` applies to
  unregistered views), so the cluster-wide rollup stays monotone
  across shard drain and respawn even though a fresh worker restarts
  its own counters at zero;
* **gauges are labeled per shard** — a gauge describes *current*
  state, so summing would hide which shard is hot; the aggregate keeps
  ``gauges.per_shard[shard]`` verbatim and adds the three cheap
  cluster totals (``views_registered``, ``stale_views``,
  ``inflight_requests``) where a sum is meaningful;
* **histograms are merged bucket-wise** — equal bucket bounds across
  shards make lock-wait/hold and phase histograms summable without
  loss;
* **view sections merge flat** — view names are unique cluster-wide
  (the router owns the namespace), each entry annotated with the shard
  that served it.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

__all__ = ["merge_counters", "merge_histograms", "rollup_metrics"]


def merge_counters(
    into: Dict[str, int], source: Mapping[str, int]
) -> Dict[str, int]:
    """Element-wise sum ``source`` into ``into`` (returned)."""
    for name, value in source.items():
        into[name] = into.get(name, 0) + int(value)
    return into


def merge_histograms(into: Dict, source: Mapping) -> Dict:
    """Bucket-wise sum of one histogram snapshot into another."""
    if not into:
        into.update({"count": 0, "sum": 0.0, "buckets": {}})
    into["count"] += source.get("count", 0)
    into["sum"] = round(into["sum"] + source.get("sum", 0.0), 6)
    buckets = into["buckets"]
    for bound, count in source.get("buckets", {}).items():
        buckets[bound] = buckets.get(bound, 0) + count
    return into


def rollup_metrics(
    shard_snapshots: Mapping[str, Mapping],
    router_retired: Optional[Mapping[str, int]] = None,
    drained: Optional[Mapping[str, str]] = None,
) -> Dict[str, object]:
    """One aggregate snapshot from per-shard ``metrics_snapshot`` dicts.

    ``router_retired`` is the router's absorbed-counter table for
    departed worker incarnations (drained shards, crashed-and-respawned
    workers); ``drained`` maps drained shard ids to a human-readable
    status.  The invariant the metamorphic suite checks:
    ``aggregate["rollup"]`` and ``aggregate["counters"]`` never
    decrease across any sequence of updates, drains, crashes, and
    respawns.
    """
    counters: Dict[str, int] = {}
    rollup: Dict[str, int] = dict(router_retired or {})
    retired: Dict[str, int] = {}
    views: Dict[str, object] = {}
    gauges_per_shard: Dict[str, object] = {}
    phase_histograms: Dict[str, Dict] = {}
    locks = {"wait": {}, "hold": {}}
    caches: Dict[str, object] = {}
    totals = {"views_registered": 0, "stale_views": 0, "inflight_requests": 0}

    for shard in sorted(shard_snapshots):
        snapshot = shard_snapshots[shard]
        merge_counters(counters, snapshot.get("counters", {}))
        merge_counters(rollup, snapshot.get("rollup", {}))
        merge_counters(retired, snapshot.get("retired", {}))
        for view_name, stats in snapshot.get("views", {}).items():
            entry = dict(stats)
            entry["shard"] = shard
            views[view_name] = entry
        shard_gauges = snapshot.get("gauges", {})
        gauges_per_shard[shard] = shard_gauges
        for total in totals:
            totals[total] += int(shard_gauges.get(total, 0) or 0)
        for name, histogram in snapshot.get("phase_histograms", {}).items():
            merge_histograms(
                phase_histograms.setdefault(name, {}), histogram
            )
        for side in ("wait", "hold"):
            merge_histograms(
                locks[side], snapshot.get("locks", {}).get(side, {})
            )
        caches[shard] = snapshot.get("cache", {})

    gauges: Dict[str, object] = dict(totals)
    gauges["per_shard"] = gauges_per_shard
    return {
        "shards": sorted(shard_snapshots),
        "drained": dict(drained or {}),
        "counters": counters,
        "rollup": rollup,
        "retired": retired,
        "router_retired": dict(router_retired or {}),
        "gauges": gauges,
        "views": views,
        "phase_histograms": phase_histograms,
        "locks": locks,
        "cache": caches,
    }
