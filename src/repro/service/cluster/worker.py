"""Worker processes of the sharded serving tier.

Each shard is one OS process hosting a full single-process
:class:`~repro.service.server.QueryService` behind the existing
newline protocol on its own unix socket — the worker needs **no**
protocol change to live under the router; the binary framing exists
only on the client ↔ router hop.  Running the service in a separate
process is what buys true write parallelism: each worker owns its own
GIL, so update batches on views living on different shards run on
different cores.

``worker_main`` is a module-level function with picklable arguments so
the ``spawn`` start method works everywhere (no reliance on ``fork``
inheriting an importable closure); the router terminates workers with
``Process.terminate()`` and respawns crashed ones from its own records.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, Optional

__all__ = ["worker_main", "spawn_worker", "DEFAULT_START_METHOD"]

#: ``spawn`` is the safe default: the router runs threads (the asyncio
#: loop, test harnesses), and forking a multi-threaded process can
#: inherit held locks.  Override with REPRO_CLUSTER_START_METHOD=fork
#: for faster startup where that risk is acceptable.
DEFAULT_START_METHOD = os.environ.get("REPRO_CLUSTER_START_METHOD", "spawn")


def worker_main(socket_path: str, options: Optional[Dict] = None) -> None:
    """Run one shard: a QueryService on a unix socket, until terminated.

    ``options`` are :class:`~repro.service.server.QueryService` keyword
    arguments (``deadline_ms``, ``cache_capacity``, ``read_mode``,
    ``compactor``, ...) plus the socket-server knobs ``max_concurrent``
    and ``max_request_bytes``.
    """
    # Imports happen inside the function so a ``spawn``-ed child pays
    # them once, after the interpreter boots with a clean slate.
    import signal
    import threading

    from ...core.algebra_to_datalog import translation_registry
    from ..server import QueryService, serve_unix_socket

    options = dict(options or {})
    max_concurrent = options.pop("max_concurrent", 8)
    max_request_bytes = options.pop("max_request_bytes", None)
    service = QueryService(
        function_registry=translation_registry(), **options
    )
    # ``Process.terminate()`` is SIGTERM: drain in-flight requests and
    # close the service (flushing any durability plane) instead of
    # dying mid-reply.  The router tolerates either way — this just
    # makes the common shutdown graceful.
    stop_event = threading.Event()
    signal.signal(signal.SIGTERM, lambda _signum, _frame: stop_event.set())
    try:
        serve_unix_socket(
            service,
            socket_path,
            max_concurrent=max_concurrent,
            max_request_bytes=max_request_bytes,
            stop_event=stop_event,
        )
    finally:
        service.close()


def spawn_worker(
    socket_path: str,
    options: Optional[Dict] = None,
    start_method: str = DEFAULT_START_METHOD,
) -> multiprocessing.Process:
    """Start one worker process serving ``socket_path``.

    The process is a daemon, so an abandoned router cannot leak workers
    past its own lifetime; the caller is responsible for waiting until
    the socket accepts connections (the router probes with
    :func:`~repro.robustness.retry_with_backoff`).
    """
    context = multiprocessing.get_context(start_method)
    process = context.Process(
        target=worker_main,
        args=(socket_path, dict(options or {})),
        name=f"repro-worker-{os.path.basename(socket_path)}",
        daemon=True,
    )
    process.start()
    return process
