"""The asyncio front door of the multi-process sharded serving tier.

Topology::

    client ──frames──▶ ClusterRouter (asyncio, one process)
                          │  consistent-hash routing table (COW)
                          ├──line protocol──▶ worker shard-0 (QueryService)
                          ├──line protocol──▶ worker shard-1 (QueryService)
                          └──line protocol──▶ worker shard-N (QueryService)

The router owns the cluster's control plane and nothing else — every
query, update, and registration is executed by exactly one worker's
:class:`~repro.service.server.QueryService`, each in its own process
with its own GIL, which is what finally buys true multi-core write
parallelism (incremental view maintenance is embarrassingly shardable
by view: each MaterializedView is already an independent lock domain).

Responsibilities:

* **routing** — views are consistent-hash-assigned to shards at
  ``register`` time (:mod:`.hashring`) and the assignment is published
  in a copy-on-write routing table (an immutable ``view → shard`` dict
  behind an :class:`~repro.service.locks.AtomicReference`, mirroring
  the PR 5 name table): the data path reads it with zero locks, and
  topology changes republish it in one swap;
* **single-view verbs** (``query``, ``+``/``-`` updates, ``stats
  <view>``, ``register``, ``unregister``) forward to the owning
  worker over a pooled line-protocol connection;
* **fan-out verbs** — ``metrics`` collects every live shard's
  ``ServiceMetrics`` snapshot and rolls them up (:mod:`.rollup`:
  counters summed, gauges labeled per shard); ``views``/``list`` union
  the shards' listings with the routing table;
* **lifecycle** — workers are spawned via :mod:`multiprocessing`,
  health-checked by heartbeat, and respawned on crash with
  retry-with-backoff socket probing
  (:func:`~repro.robustness.retry_with_backoff`); a respawned worker
  is restored from the router's **view records** (the registered
  program plus the net acked base-fact delta), so an acked update
  never silently disappears from a surviving shard;
* **drain** (``drain <shard>``) — stop routing to the shard, flush its
  in-flight requests, absorb its final metrics into the router-retired
  rollup, re-hash its views onto the survivors by replaying their
  records, republish the routing table, and stop the worker.  Requests
  for a moving view wait on the drain instead of racing it, so
  drain-then-query re-routes correctly and no acked update lands on a
  worker that is about to disappear.

Failure contract: a request in flight to a worker that dies resolves
with a wire-coded ``worker-unavailable`` error (never a hang); the
supervisor respawns the worker and replays its views, after which
retries succeed.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import socket as socket_module
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ...robustness import (
    ClusterError,
    RecoveryError,
    WorkerUnavailable,
    fault_point,
    retry_with_backoff,
)
from ..locks import AtomicReference
from ..server import _error_reply
from .framing import FrameError, read_frame_async, write_frame_async
from .hashring import HashRing
from .rollup import merge_counters, rollup_metrics
from .worker import DEFAULT_START_METHOD, spawn_worker

__all__ = ["ClusterRouter", "ViewRecord", "WorkerHandle", "cluster", "canonical_fact_text"]

logger = logging.getLogger(__name__)


def canonical_fact_text(text: str) -> str:
    """A spelling-independent key for one ground-fact literal.

    ``edge(a, b)``, ``edge(a,b)`` and ``edge(a, b).`` must replay as
    the *same* fact, so the router's view records strip whitespace
    outside double-quoted strings and the trailing period — without
    paying a full parse on the write hot path (the worker parses
    anyway; the router only needs a stable identity).
    """
    out = []
    in_string = False
    for ch in text.strip():
        if ch == '"':
            in_string = not in_string
            out.append(ch)
        elif in_string or not ch.isspace():
            out.append(ch)
    canonical = "".join(out)
    return canonical[:-1] if canonical.endswith(".") else canonical


class ViewRecord:
    """What the router must remember to rebuild a view elsewhere.

    ``semantics`` and ``source`` replay the original ``register`` (the
    program text carries its own inline base facts); ``added`` and
    ``removed`` are the *net* acked base-fact delta applied since, as
    canonical fact texts — replaying register + removals + additions
    reconstructs the view's exact database on a fresh worker.
    """

    __slots__ = ("semantics", "source", "added", "removed")

    def __init__(self, semantics: str, source: str):
        self.semantics = semantics
        self.source = source
        self.added: Set[str] = set()
        self.removed: Set[str] = set()

    def record_insert(self, fact: str) -> None:
        self.added.add(fact)
        self.removed.discard(fact)

    def record_delete(self, fact: str) -> None:
        self.removed.add(fact)
        self.added.discard(fact)


class WorkerHandle:
    """One shard: its process, socket, connection pool, and liveness.

    ``call`` forwards one line-protocol request and collects the reply
    lines (terminated by ``ok``/``error``) over a pooled connection.
    Any transport failure — refused connect, EOF mid-reply, timeout —
    marks the incarnation dead, wakes the supervisor, and surfaces as
    :class:`~repro.robustness.WorkerUnavailable`, so a caller is never
    left hanging on a corpse.
    """

    def __init__(
        self,
        shard_id: str,
        socket_path: str,
        options: Optional[Dict] = None,
        start_method: str = DEFAULT_START_METHOD,
        pool_size: int = 4,
        max_concurrent: int = 8,
        request_timeout: float = 60.0,
        # ~25s of backoff in total: a cold interpreter spawn on a
        # loaded single-core box can take >10s to import and bind.
        connect_attempts: int = 28,
    ):
        self.shard_id = shard_id
        self.socket_path = socket_path
        self.options = dict(options or {})
        self.options.setdefault("max_concurrent", max_concurrent)
        self.start_method = start_method
        self.pool_size = pool_size
        self.request_timeout = request_timeout
        self.connect_attempts = connect_attempts
        self.process = None
        self.live = False
        self.draining = False
        self.inflight = 0
        self.incarnation = 0
        #: Last counters this worker reported through a ``metrics``
        #: fan-out — absorbed into the router-retired rollup when the
        #: incarnation dies, keeping the aggregate monotone.
        self.last_counters: Dict[str, Dict[str, int]] = {}
        self.dead = asyncio.Event()
        #: Cleared while the incarnation is dead or mid-replay; the
        #: router's data path waits on it so a client can never observe
        #: a half-replayed view on a fresh worker.
        self.ready = asyncio.Event()
        # At most as many concurrent calls as the worker accepts
        # connections, so the listen backlog can never overflow.
        self._slots = asyncio.Semaphore(self.options["max_concurrent"])
        self._pool: "asyncio.Queue[Tuple]" = asyncio.Queue()
        self._conns: Set[Tuple] = set()

    # -- lifecycle ----------------------------------------------------------

    async def start(self, ready: bool = True) -> None:
        """Spawn the worker process and wait until its socket accepts.

        ``ready=False`` leaves :attr:`ready` cleared — the respawn path
        uses it to keep clients parked until the view replay finishes.
        """
        self.incarnation += 1
        self.process = spawn_worker(
            self.socket_path, self.options, self.start_method
        )
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(None, self._probe)
        except OSError as exc:
            raise WorkerUnavailable(
                f"shard {self.shard_id}: worker socket never came up: {exc}"
            ) from exc
        self.live = True
        self.dead = asyncio.Event()
        if ready:
            self.ready.set()

    def _probe(self) -> None:
        """Block until the worker socket accepts, with backoff retries."""

        def attempt() -> None:
            probe = socket_module.socket(
                socket_module.AF_UNIX, socket_module.SOCK_STREAM
            )
            probe.settimeout(2.0)
            try:
                probe.connect(self.socket_path)
            finally:
                probe.close()

        retry_with_backoff(
            attempt,
            attempts=self.connect_attempts,
            base_delay=0.05,
            max_delay=1.0,
            retry_on=(OSError,),
        )

    async def restart(self) -> None:
        """Tear down the dead incarnation and bring up a fresh one.

        The new incarnation is *live* (accepts calls — the replay needs
        that) but not *ready*: the caller flips :attr:`ready` once the
        shard's views are replayed.
        """
        self.stop_process()
        await self.start(ready=False)

    def mark_dead(self) -> None:
        """Flag the incarnation dead and wake the supervisor."""
        self.live = False
        self.ready.clear()
        self._close_pool()
        self.dead.set()

    def _close_pool(self) -> None:
        while True:
            try:
                conn = self._pool.get_nowait()
            except asyncio.QueueEmpty:
                break
        for conn in list(self._conns):
            self._discard(conn)

    def _discard(self, conn: Tuple) -> None:
        self._conns.discard(conn)
        _reader, writer = conn
        try:
            writer.close()
        except Exception:
            pass

    def stop_process(self, timeout: float = 5.0) -> None:
        """Terminate the worker process (idempotent)."""
        self.live = False
        self._close_pool()
        process = self.process
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout)
        self.process = None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    # -- the forwarding path ------------------------------------------------

    async def _checkout(self) -> Tuple:
        try:
            while True:
                conn = self._pool.get_nowait()
                if conn in self._conns:
                    return conn
        except asyncio.QueueEmpty:
            pass
        try:
            conn = await asyncio.open_unix_connection(self.socket_path)
        except OSError as exc:
            self.mark_dead()
            raise WorkerUnavailable(
                f"shard {self.shard_id}: connect failed: {exc}"
            ) from exc
        self._conns.add(conn)
        return conn

    def _checkin(self, conn: Tuple) -> None:
        if conn in self._conns and self._pool.qsize() < self.pool_size:
            self._pool.put_nowait(conn)
        else:
            self._discard(conn)

    async def call(
        self, line: str, timeout: Optional[float] = None
    ) -> List[str]:
        """Forward one request line; the reply lines, terminator last."""
        timeout = self.request_timeout if timeout is None else timeout
        if not self.live:
            raise WorkerUnavailable(
                f"shard {self.shard_id} is down (respawn in progress)"
            )
        # Count the request in-flight *before* parking on a slot: the
        # increment runs in the same synchronous segment as the
        # caller's _route() resolution, so once drain() flips
        # ``draining`` every already-routed request is visible to its
        # inflight flush — even one still waiting for a slot.  Counting
        # after the semaphore would let such a request slip past the
        # flush and land an acked update on a worker whose views were
        # already replayed elsewhere.
        self.inflight += 1
        try:
            async with self._slots:
                if not self.live:
                    raise WorkerUnavailable(
                        f"shard {self.shard_id} is down (respawn in progress)"
                    )
                conn = await self._checkout()
                reader, _writer = conn
                try:
                    _writer.write(line.encode("utf-8") + b"\n")
                    await _writer.drain()
                    replies: List[str] = []
                    while True:
                        raw = await asyncio.wait_for(
                            reader.readline(), timeout
                        )
                        if not raw:
                            raise ConnectionResetError(
                                "worker closed the connection mid-reply"
                            )
                        text = raw.decode("utf-8").rstrip("\r\n")
                        replies.append(text)
                        if (
                            text == "ok"
                            or text.startswith("ok ")
                            or text.startswith("error")
                        ):
                            self._checkin(conn)
                            return replies
                except (
                    OSError,
                    ConnectionError,
                    asyncio.TimeoutError,
                    UnicodeDecodeError,
                ) as exc:
                    self._discard(conn)
                    self.mark_dead()
                    raise WorkerUnavailable(
                        f"shard {self.shard_id}: {type(exc).__name__}: {exc}"
                    ) from exc
        finally:
            self.inflight -= 1

    def __repr__(self) -> str:
        state = (
            "draining"
            if self.draining
            else ("live" if self.live else "dead")
        )
        return f"<WorkerHandle {self.shard_id} {state} pid={self.pid}>"


class ClusterRouter:
    """The sharded serving tier: N workers behind one asyncio router.

    ``socket_path`` is the front door (binary framing, see
    :mod:`.framing`); worker sockets live next to it as
    ``<socket_path>.<shard-id>``.  Use :meth:`start` / :meth:`stop`
    from an event loop, or the :func:`cluster` context manager /
    ``repro serve --shards N`` from synchronous code.
    """

    def __init__(
        self,
        socket_path: str,
        shards: int = 2,
        worker_options: Optional[Dict] = None,
        start_method: str = DEFAULT_START_METHOD,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 5.0,
        request_timeout: float = 60.0,
        pool_size: int = 4,
        max_request_bytes: int = 1 << 20,
        hash_replicas: int = 160,
        data_dir: Optional[str] = None,
        fsync: str = "batch",
        checkpoint_every: int = 256,
    ):
        if shards < 1:
            raise ValueError("a cluster needs at least one shard")
        self.socket_path = socket_path
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.request_timeout = request_timeout
        self.max_request_bytes = max_request_bytes
        self._workers: Dict[str, WorkerHandle] = {}
        for index in range(shards):
            shard_id = f"shard-{index}"
            self._workers[shard_id] = WorkerHandle(
                shard_id,
                f"{socket_path}.{shard_id}",
                options=worker_options,
                start_method=start_method,
                pool_size=pool_size,
                request_timeout=request_timeout,
            )
        self._ring = HashRing(self._workers, replicas=hash_replicas)
        #: The COW routing table: immutable ``view → shard`` dict,
        #: republished in one atomic swap by register/unregister/drain.
        self._routes = AtomicReference({})
        self._records: Dict[str, ViewRecord] = {}
        self._registry_lock = asyncio.Lock()
        self._draining: Dict[str, asyncio.Event] = {}
        self._drained: Dict[str, str] = {}
        self._retired: Dict[str, Dict[str, int]] = {
            "counters": {},
            "rollup": {},
        }
        self.counters: Dict[str, int] = {
            "requests_total": 0,
            "errors_total": 0,
            "forwarded_total": 0,
            "fanouts_total": 0,
            "respawns": 0,
            "drains": 0,
            "recoveries": 0,
            "recovery_replay_records": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._supervisors: List[asyncio.Task] = []
        self._stopping = False
        self._started = False
        # The durable control plane (inert without a data directory):
        # every accepted register/unregister, every acked base-fact
        # update, and every completed drain is journaled; checkpoints
        # snapshot the records + routing table + drain ledger + retired
        # rollup.  All manager calls happen on the event-loop thread,
        # so no extra locking is needed around them.
        self.durability = None
        self.last_recovery: Optional[Dict[str, object]] = None
        if data_dir is not None:
            from ..durability import DurabilityManager

            self.durability = DurabilityManager(
                data_dir,
                fsync=fsync,
                checkpoint_every=checkpoint_every,
                capture=self._durability_capture,
                on_event=self._bump_counter,
            )

    def _bump_counter(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _journal(self, operation: Dict[str, object]) -> None:
        """Journal one completed control-plane operation (durable mode).

        Called on the event-loop thread after the operation was acked
        by the owning worker — the same total order clients observe —
        and before the reply frame leaves the router.
        """
        manager = self.durability
        if manager is not None and not manager.replaying:
            manager.append(operation)
            manager.maybe_checkpoint()

    def _durability_capture(self) -> Dict[str, object]:
        """The full control plane, as a checkpoint document.

        Runs synchronously on the event-loop thread, so it sees the
        registry between requests — never a half-applied registration.
        Each worker's ``last_counters`` rides along so a recovered
        router can retire them: the pre-crash incarnations are gone,
        and banking their last-reported counters keeps the aggregate
        rollup monotone across the restart.
        """
        return {
            "records": {
                name: {
                    "semantics": record.semantics,
                    "source": record.source,
                    "added": sorted(record.added),
                    "removed": sorted(record.removed),
                }
                for name, record in self._records.items()
            },
            "routes": dict(self._routes.get()),
            "drained": dict(self._drained),
            "retired": {
                section: dict(counters)
                for section, counters in self._retired.items()
            },
            "last_counters": {
                shard_id: {
                    section: dict(counters)
                    for section, counters in handle.last_counters.items()
                }
                for shard_id, handle in self._workers.items()
                if handle.last_counters
            },
            "router_counters": dict(self.counters),
        }

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Recover the control plane (durable mode), spawn every live
        worker, replay recovered views onto them, then open the front
        door."""
        recovered = self._recover_control_plane()
        spawning = [
            handle
            for shard_id, handle in self._workers.items()
            if shard_id not in self._drained
        ]
        await asyncio.gather(
            *(handle.start(ready=recovered is None) for handle in spawning)
        )
        if recovered is not None:
            await self._replay_recovered_views(recovered)
            for handle in spawning:
                handle.ready.set()
            recovered["generation"] = self.durability.bump_generation()
            self._bump_counter("recoveries")
            if recovered["replayed_records"]:
                self._bump_counter(
                    "recovery_replay_records",
                    int(recovered["replayed_records"]),
                )
            self.last_recovery = recovered
            logger.info(
                "cluster recovered generation %s: %s views "
                "(checkpoint lsn %s, %s WAL records replayed, "
                "%s skipped, %s torn dropped)",
                recovered["generation"],
                recovered["views_restored"],
                recovered["checkpoint_lsn"],
                recovered["replayed_records"],
                recovered["skipped_records"],
                recovered["torn_records_dropped"],
            )
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._server = await asyncio.start_unix_server(
            self._serve_client, path=self.socket_path
        )
        self._supervisors = [
            asyncio.get_running_loop().create_task(self._supervise(handle))
            for shard_id, handle in self._workers.items()
            if shard_id not in self._drained
        ]
        self._started = True

    async def stop(self) -> None:
        """Close the front door and terminate every worker."""
        self._stopping = True
        for task in self._supervisors:
            task.cancel()
        for task in self._supervisors:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.durability is not None:
            # The graceful-shutdown checkpoint: the next cold start
            # restores the exact routing table without replaying the
            # whole log.  Capture only reads router-owned dicts, so it
            # does not care that the workers are about to die.  A
            # router that never finished start() skips the checkpoint —
            # a half-recovered control plane must not overwrite the
            # good on-disk state.
            try:
                self.durability.close(final_checkpoint=self._started)
            except Exception:  # pragma: no cover - shutdown best effort
                logger.exception("final cluster checkpoint failed")
            self.durability = None
        loop = asyncio.get_running_loop()
        for handle in self._workers.values():
            await loop.run_in_executor(None, handle.stop_process)
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    # -- cold-start recovery ------------------------------------------------

    def _recover_control_plane(self) -> Optional[Dict[str, object]]:
        """Restore records/routes/drains from the data directory.

        Runs before any worker spawns: the checkpoint seeds the control
        plane, the WAL suffix re-drives every later acked operation
        onto it, and the drain ledger prunes the ring so a drained
        shard stays gone across the restart.  Returns the recovery
        report (``None`` when the router is not durable); the caller
        spawns the surviving workers and replays the routed views.
        """
        manager = self.durability
        if manager is None:
            return None
        fault_point("durability.recover")
        state, records = manager.scan()
        report: Dict[str, object] = {
            "checkpoint_lsn": manager.last_checkpoint_lsn,
            "views_restored": 0,
            "replayed_records": 0,
            "skipped_records": 0,
            "torn_records_dropped": manager.torn_records_dropped,
        }
        manager.replaying = True
        try:
            if state:
                for name, info in state.get("records", {}).items():
                    record = ViewRecord(
                        str(info.get("semantics", "stratified")),
                        str(info.get("source", "")),
                    )
                    record.added = set(info.get("added", ()))
                    record.removed = set(info.get("removed", ()))
                    self._records[name] = record
                self._routes.set(dict(state.get("routes", {})))
                self._drained.update(state.get("drained", {}))
                for section, counters in state.get("retired", {}).items():
                    merge_counters(
                        self._retired.setdefault(section, {}), counters
                    )
                # The pre-crash worker incarnations are gone; bank the
                # counters they last reported so the aggregate rollup
                # stays monotone across the restart.
                for shard_counters in state.get("last_counters", {}).values():
                    for section in ("counters", "rollup"):
                        merge_counters(
                            self._retired[section],
                            shard_counters.get(section, {}),
                        )
                for name, value in state.get("router_counters", {}).items():
                    if value:
                        self._bump_counter(name, int(value))
            for record in records:
                try:
                    self._apply_journal_record(record.operation)
                    report["replayed_records"] = (
                        int(report["replayed_records"]) + 1
                    )
                except (KeyError, ValueError) as exc:
                    report["skipped_records"] = (
                        int(report["skipped_records"]) + 1
                    )
                    logger.warning(
                        "skipping unreplayable cluster WAL record "
                        "lsn %d: %s: %s",
                        record.lsn,
                        type(exc).__name__,
                        exc,
                    )
        finally:
            manager.replaying = False
        report["views_restored"] = len(self._records)
        for shard_id in self._drained:
            if shard_id in self._ring:
                self._ring = self._ring.without_shard(shard_id)
        if len(self._ring) < 1:
            raise RecoveryError(
                "the recovered drain ledger leaves no live shard; "
                "restart with more shards"
            )
        return report

    def _apply_journal_record(self, operation: Dict[str, object]) -> None:
        """Re-drive one journaled control-plane operation."""
        op = operation.get("op")
        if op == "register":
            name = str(operation["view"])
            self._records[name] = ViewRecord(
                str(operation.get("semantics", "stratified")),
                str(operation.get("source", "")),
            )
            routes = dict(self._routes.get())
            routes[name] = str(operation["shard"])
            self._routes.set(routes)
        elif op == "unregister":
            name = str(operation["view"])
            self._records.pop(name, None)
            routes = dict(self._routes.get())
            routes.pop(name, None)
            self._routes.set(routes)
        elif op in ("insert", "delete"):
            record = self._records.get(str(operation["view"]))
            if record is None:
                raise KeyError(
                    f"update journaled for unregistered view "
                    f"{operation.get('view')!r}"
                )
            fact = str(operation["fact"])
            if op == "insert":
                record.record_insert(fact)
            else:
                record.record_delete(fact)
        elif op == "drain":
            self._drained[str(operation["shard"])] = "drained"
            routes = dict(self._routes.get())
            for name, target in dict(operation.get("moved", {})).items():
                if name in routes:
                    routes[name] = str(target)
            self._routes.set(routes)
        else:
            raise ValueError(f"unknown cluster WAL operation {op!r}")

    async def _replay_recovered_views(
        self, report: Dict[str, object]
    ) -> None:
        """Rebuild every recovered view on its (fresh) owning worker.

        A view routed at a shard that no longer exists — the cluster
        restarted with fewer shards, or the route's owner is in the
        drain ledger — is reassigned on the recovered ring, exactly as
        a drain would have moved it.
        """
        routes = dict(self._routes.get())
        reassigned = 0
        for name in sorted(routes):
            if name not in self._records:
                logger.warning(
                    "recovered route for %r has no view record; dropping",
                    name,
                )
                routes.pop(name)
                continue
            shard = routes[name]
            if shard not in self._workers or shard in self._drained:
                target = self._ring.assign(name)
                logger.warning(
                    "view %r was routed at missing shard %s; "
                    "reassigned to %s",
                    name,
                    shard,
                    target,
                )
                routes[name] = target
                shard = target
                reassigned += 1
            await self._replay_view(name, self._workers[shard])
        self._routes.set(routes)
        report["views_reassigned"] = reassigned

    async def serve_forever(self) -> None:
        """Block until cancelled (the CLI entry point's main loop)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- supervision --------------------------------------------------------

    async def _supervise(self, handle: WorkerHandle) -> None:
        """Heartbeat one shard; respawn-with-replay when it dies."""
        backoff = self.heartbeat_interval
        while not self._stopping:
            try:
                await asyncio.wait_for(
                    handle.dead.wait(), timeout=self.heartbeat_interval
                )
            except asyncio.TimeoutError:
                if handle.shard_id in self._drained:
                    return
                if handle.live and not handle.draining:
                    try:
                        await handle.call(
                            "views", timeout=self.heartbeat_timeout
                        )
                    except WorkerUnavailable:
                        continue  # dead event is set; respawn next turn
                continue
            if self._stopping:
                return
            if handle.shard_id in self._drained:
                return
            if handle.draining:
                # A drain is flushing this shard; wait for its outcome
                # instead of racing the respawn against the replay.  On
                # success the shard is retired (next turn returns via
                # the _drained check); on a rolled-back drain the shard
                # is live topology again and must keep its supervisor.
                drain_event = self._draining.get(handle.shard_id)
                if drain_event is not None:
                    await drain_event.wait()
                continue
            try:
                await self._respawn(handle)
                backoff = self.heartbeat_interval
            except Exception:
                logger.exception(
                    "respawn of %s failed; retrying", handle.shard_id
                )
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, 10.0)

    async def _respawn(self, handle: WorkerHandle) -> None:
        """Replace a dead incarnation and replay its views onto it."""
        async with self._registry_lock:
            if handle.draining or self._stopping:
                return
            self._absorb_last_counters(handle)
            await handle.restart()
            names = [
                name
                for name, shard in self._routes.get().items()
                if shard == handle.shard_id
            ]
            for name in sorted(names):
                await self._replay_view(name, handle)
            handle.ready.set()
            self.counters["respawns"] += 1
            logger.warning(
                "respawned %s (incarnation %d, %d views replayed)",
                handle.shard_id,
                handle.incarnation,
                len(names),
            )

    def _absorb_last_counters(self, handle: WorkerHandle) -> None:
        """Bank a dead incarnation's last-reported counters.

        ``last_counters`` is updated on every successful ``metrics``
        fan-out, so everything the aggregate ever *reported* for this
        incarnation is preserved — the rollup can only grow.
        """
        for section in ("counters", "rollup"):
            merge_counters(
                self._retired[section],
                handle.last_counters.get(section, {}),
            )
        handle.last_counters = {}

    async def _replay_view(self, name: str, handle: WorkerHandle) -> None:
        """Rebuild one view on ``handle`` from the router's record."""
        record = self._records[name]
        replies = await handle.call(
            f"register {name} {record.semantics} {record.source}"
        )
        if replies[-1].startswith("error"):
            raise ClusterError(
                f"replaying view {name!r} on {handle.shard_id} failed: "
                f"{replies[-1]}"
            )
        for fact in sorted(record.removed):
            await handle.call(f"-{name} {fact}")
        for fact in sorted(record.added):
            await handle.call(f"+{name} {fact}")

    # -- drain --------------------------------------------------------------

    async def drain(self, shard_id: str) -> Dict[str, object]:
        """Gracefully remove one shard, re-hashing its views.

        Rejected cleanly (``ClusterError``) for unknown shards, double
        drains, and the last live shard.
        """
        async with self._registry_lock:
            if shard_id not in self._workers:
                raise ClusterError(f"unknown shard {shard_id!r}")
            if shard_id in self._drained or (
                self._workers[shard_id].draining
            ):
                raise ClusterError(f"shard {shard_id!r} already drained")
            if len(self._ring) <= 1:
                raise ClusterError("cannot drain the last live shard")
            handle = self._workers[shard_id]
            event = asyncio.Event()
            self._draining[shard_id] = event
            handle.draining = True
            # Stop routing *new* registrations at the drained shard.
            self._ring = self._ring.without_shard(shard_id)
            moved: List[str] = []
            try:
                # Flush in-flight requests (new ones wait on the event).
                while handle.inflight:
                    await asyncio.sleep(0.005)
                # Absorb the shard's final counters so the rolled-up
                # metrics stay monotone after it disappears.
                if handle.live:
                    try:
                        replies = await handle.call("metrics")
                        snapshot = json.loads(replies[-1][3:])
                        handle.last_counters = {
                            "counters": snapshot.get("counters", {}),
                            "rollup": snapshot.get("rollup", {}),
                        }
                    except (WorkerUnavailable, ValueError):
                        pass
                # Re-hash the shard's views onto the survivors by
                # replaying their programs and net base facts.
                routes = dict(self._routes.get())
                moved = sorted(
                    name
                    for name, shard in routes.items()
                    if shard == shard_id
                )
                for name in moved:
                    target = self._ring.assign(name)
                    await self._replay_view(name, self._workers[target])
                    routes[name] = target
                # Retire the final counters only once the replay cannot
                # fail anymore: a rolled-back drain leaves the shard
                # live and still reporting, so absorbing earlier would
                # double-count it (retired + live) in the aggregate.
                self._absorb_last_counters(handle)
                self._routes.set(routes)
                self._drained[shard_id] = "drained"
                handle.stop_process()
                self.counters["drains"] += 1
                # The moved map is journaled explicitly: re-hashing is
                # not reproducible from the drain op alone (it depends
                # on the ring the drain saw), and the next recovery
                # must restore the exact post-drain routing table.
                self._journal(
                    {
                        "op": "drain",
                        "shard": shard_id,
                        "moved": {name: routes[name] for name in moved},
                    }
                )
            except BaseException:
                # Roll back: the routing table was never republished
                # (the swap above is all-or-nothing), so every view
                # still points at this shard and the shard still holds
                # all its data — put it back on the ring and make it
                # routable again.  Views already replayed onto a
                # survivor are harmless stale copies; register is
                # register-or-replace, so a retried drain replays them
                # cleanly.  If the worker itself died mid-drain, its
                # ``dead`` event is set and the supervisor (which waits
                # out the drain instead of skipping it) respawns it.
                self._ring = self._ring.with_shard(shard_id)
                handle.draining = False
                raise
            finally:
                event.set()
                self._draining.pop(shard_id, None)
        return {"shard": shard_id, "moved_views": moved}

    # -- routing ------------------------------------------------------------

    def routing_table(self) -> Dict[str, str]:
        """The published routing table (treat as immutable)."""
        return self._routes.get()

    async def _route(self, name: str) -> WorkerHandle:
        """The worker owning ``name`` — waiting out an active drain."""
        while True:
            shard = self._routes.get().get(name)
            if shard is None:
                raise KeyError(f"no view registered under {name!r}")
            event = self._draining.get(shard)
            if event is not None:
                await event.wait()
                continue  # re-resolve: the view moved
            handle = self._workers[shard]
            if handle.live and not handle.ready.is_set():
                # A fresh incarnation is mid-replay; park until its
                # views are whole so no client sees a partial rebuild.
                waiter = handle.ready.wait()
                try:
                    await asyncio.wait_for(
                        waiter, timeout=self.request_timeout
                    )
                except asyncio.TimeoutError:
                    raise WorkerUnavailable(
                        f"shard {shard}: replay still in progress"
                    )
                except RuntimeError as exc:
                    # The loop is shutting down; wait_for can bail out
                    # before ever scheduling the waiter.
                    with contextlib.suppress(Exception):
                        waiter.close()
                    raise WorkerUnavailable(
                        f"shard {shard}: router shutting down"
                    ) from exc
                continue  # re-resolve: routing may have changed
            return handle

    def _live_handles(self) -> List[WorkerHandle]:
        return [
            handle
            for handle in self._workers.values()
            if handle.live and not handle.draining
        ]

    # -- the front door -----------------------------------------------------

    async def _serve_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One framed client connection.

        Pipelining happens at the transport: a client may send any
        number of request frames without waiting for replies (they
        accumulate in the stream buffer), which removes per-request
        round trips.  Execution stays strictly serial and in order per
        connection — Redis-pipeline semantics — so a pipelined query
        always observes the connection's earlier acked updates.
        Cross-connection requests run concurrently on the event loop.
        """
        try:
            while True:
                try:
                    payload = await read_frame_async(
                        reader, self.max_request_bytes
                    )
                except FrameError as exc:
                    await self._reply(writer, [_error_reply(exc)])
                    break
                except (ConnectionError, OSError):
                    break
                if payload is None:
                    break
                line = payload.decode("utf-8", errors="replace").strip()
                if line in ("quit", "exit"):
                    await self._reply(writer, ["ok bye"])
                    break
                if not await self._reply(writer, await self._dispatch(line)):
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _reply(writer: asyncio.StreamWriter, lines: List[str]) -> bool:
        try:
            await write_frame_async(writer, "\n".join(lines).encode("utf-8"))
            return True
        except (ConnectionError, OSError):
            return False

    async def _dispatch(self, line: str) -> List[str]:
        """Handle one request line, never letting an exception escape."""
        self.counters["requests_total"] += 1
        try:
            return await self._handle(line)
        except (KeyboardInterrupt, SystemExit, asyncio.CancelledError):
            raise
        except (ClusterError, KeyError, ValueError) as exc:
            self.counters["errors_total"] += 1
            logger.warning("cluster request failed %r: %s", line, exc)
            return [_error_reply(exc)]
        except Exception as exc:  # the router must survive bad requests
            self.counters["errors_total"] += 1
            logger.exception("cluster request failed: %r", line)
            return [_error_reply(exc)]

    async def _handle(self, line: str) -> List[str]:
        if not line or line.startswith("#"):
            return ["ok"]
        if "\n" in line or "\r" in line:
            raise ValueError(
                "frame payloads must be single line-protocol requests"
            )
        if line.startswith("+") or line.startswith("-"):
            return await self._handle_update(line)
        command, _, rest = line.partition(" ")
        if command == "register":
            return await self._handle_register(line, rest)
        if command == "unregister":
            return await self._handle_unregister(line, rest)
        if command in ("query", "stats") and rest.strip():
            return await self._forward_single(rest.split()[0], line)
        if command == "stats":
            return await self._handle_stats_fanout()
        if command == "metrics":
            return await self._handle_metrics(rest.strip())
        if command in ("views", "list"):
            return await self._handle_views()
        if command == "drain":
            shard_id = rest.strip()
            if not shard_id:
                return ["error usage: drain <shard>"]
            summary = await self.drain(shard_id)
            return [f"ok {json.dumps(summary, sort_keys=True)}"]
        if command == "shards":
            return [f"ok {json.dumps(self.describe(), sort_keys=True)}"]
        return [f"error unknown command {command!r}"]

    async def _forward_single(self, view_name: str, line: str) -> List[str]:
        handle = await self._route(view_name)
        self.counters["forwarded_total"] += 1
        return await handle.call(line)

    async def _handle_update(self, line: str) -> List[str]:
        parts = line[1:].split(None, 1)
        if len(parts) != 2:
            return [f"error usage: {line[0]}<view> <fact>"]
        view_name, fact_text = parts
        handle = await self._route(view_name)
        self.counters["forwarded_total"] += 1
        replies = await handle.call(line)
        if replies[-1].startswith("ok"):
            record = self._records.get(view_name)
            if record is not None:
                fact = canonical_fact_text(fact_text)
                if line.startswith("+"):
                    record.record_insert(fact)
                    self._journal(
                        {"op": "insert", "view": view_name, "fact": fact}
                    )
                else:
                    record.record_delete(fact)
                    self._journal(
                        {"op": "delete", "view": view_name, "fact": fact}
                    )
        return replies

    async def _handle_register(self, line: str, rest: str) -> List[str]:
        parts = rest.split(None, 2)
        if len(parts) < 3:
            return ["error usage: register <view> <semantics> <program>"]
        view_name, semantics, source = parts
        async with self._registry_lock:
            routes = self._routes.get()
            target = routes.get(view_name)
            if target is None or target in self._drained:
                target = self._ring.assign(view_name)
            handle = self._workers[target]
            self.counters["forwarded_total"] += 1
            replies = await handle.call(line)
            if replies[-1].startswith("ok"):
                self._records[view_name] = ViewRecord(semantics, source)
                new_routes = dict(self._routes.get())
                new_routes[view_name] = target
                self._routes.set(new_routes)
                self._journal(
                    {
                        "op": "register",
                        "view": view_name,
                        "semantics": semantics,
                        "source": source,
                        "shard": target,
                    }
                )
        return replies

    async def _handle_unregister(self, line: str, rest: str) -> List[str]:
        view_name = rest.strip()
        if not view_name:
            return ["error usage: unregister <view>"]
        async with self._registry_lock:
            handle = await self._route(view_name)
            self.counters["forwarded_total"] += 1
            replies = await handle.call(line)
            if replies[-1].startswith("ok"):
                self._records.pop(view_name, None)
                new_routes = dict(self._routes.get())
                new_routes.pop(view_name, None)
                self._routes.set(new_routes)
                self._journal({"op": "unregister", "view": view_name})
        return replies

    async def _fan_out(self, line: str) -> Dict[str, List[str]]:
        """``line`` to every live, non-draining shard, concurrently."""
        handles = self._live_handles()
        self.counters["fanouts_total"] += 1
        results = await asyncio.gather(
            *(handle.call(line) for handle in handles),
            return_exceptions=True,
        )
        replies: Dict[str, List[str]] = {}
        for handle, result in zip(handles, results):
            if isinstance(result, BaseException):
                if not isinstance(result, WorkerUnavailable):
                    raise result
                continue  # a crashed shard is simply absent this round
            replies[handle.shard_id] = result
        return replies

    async def _handle_metrics(self, rest: str) -> List[str]:
        fanned = await self._fan_out("metrics")
        shard_snapshots: Dict[str, Dict] = {}
        for shard_id, replies in fanned.items():
            if not replies[-1].startswith("ok "):
                continue
            snapshot = json.loads(replies[-1][3:])
            shard_snapshots[shard_id] = snapshot
            self._workers[shard_id].last_counters = {
                "counters": snapshot.get("counters", {}),
                "rollup": snapshot.get("rollup", {}),
            }
        aggregate = rollup_metrics(
            shard_snapshots,
            router_retired=self._retired["rollup"],
            drained=self._drained,
        )
        merge_counters(aggregate["counters"], self._retired["counters"])
        aggregate["router"] = {"counters": dict(self.counters)}
        if self.durability is not None:
            aggregate["router"]["durability"] = self.durability.describe()
            gauges = aggregate.setdefault("gauges", {})
            gauges["router_wal_size"] = self.durability.wal_size_bytes()
            gauges["recovered_generation"] = self.durability.generation
        if rest in ("--format=prometheus", "--format prometheus"):
            from ..prometheus import render_prometheus

            text = render_prometheus(aggregate)
            return text.splitlines() + ["ok prometheus"]
        if rest and rest not in ("--format=json", "--format json"):
            return [f"error unknown metrics format {rest!r}"]
        return [f"ok {json.dumps(aggregate, sort_keys=True)}"]

    async def _handle_stats_fanout(self) -> List[str]:
        fanned = await self._fan_out("stats")
        shards = {
            shard_id: json.loads(replies[-1][3:])
            for shard_id, replies in fanned.items()
            if replies[-1].startswith("ok ")
        }
        return [f"ok {json.dumps({'shards': shards}, sort_keys=True)}"]

    async def _handle_views(self) -> List[str]:
        fanned = await self._fan_out("views")
        names = set(self._routes.get())
        for replies in fanned.values():
            if replies[-1].startswith("ok "):
                names.update(json.loads(replies[-1][3:]))
        return [f"ok {json.dumps(sorted(names))}"]

    def describe(self) -> Dict[str, object]:
        """Topology for the ``shards`` verb and the harness."""
        routes = self._routes.get()
        per_shard: Dict[str, int] = {}
        for shard in routes.values():
            per_shard[shard] = per_shard.get(shard, 0) + 1
        return {
            "shards": {
                shard_id: {
                    "live": handle.live,
                    "draining": handle.draining,
                    "drained": shard_id in self._drained,
                    "pid": handle.pid,
                    "incarnation": handle.incarnation,
                    "views": per_shard.get(shard_id, 0),
                }
                for shard_id, handle in self._workers.items()
            },
            "views": len(routes),
            "router": dict(self.counters),
            "durability": (
                self.durability.describe()
                if self.durability is not None
                else None
            ),
        }


@contextmanager
def cluster(
    socket_path: str, shards: int = 2, **router_kwargs
) -> Iterator[ClusterRouter]:
    """Run a cluster (router + workers) from synchronous code.

    The router's event loop runs on a daemon thread; the yielded
    :class:`ClusterRouter` is fully started when the body begins, and
    torn down (front door closed, workers terminated) on the way out.
    Tests and benchmarks drive it through a
    :class:`~repro.service.cluster.client.ClusterClient` against
    ``socket_path``.
    """
    loop = asyncio.new_event_loop()
    thread = threading.Thread(
        target=loop.run_forever, name="cluster-router", daemon=True
    )
    thread.start()
    router = ClusterRouter(socket_path, shards=shards, **router_kwargs)
    try:
        asyncio.run_coroutine_threadsafe(router.start(), loop).result(
            timeout=180
        )
        yield router
    finally:
        try:
            asyncio.run_coroutine_threadsafe(router.stop(), loop).result(
                timeout=60
            )
            # Settle leftover client-handler tasks before stopping the
            # loop, so none is destroyed with an unstarted coroutine.
            asyncio.run_coroutine_threadsafe(
                _cancel_pending_tasks(), loop
            ).result(timeout=10)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            loop.close()


async def _cancel_pending_tasks() -> None:
    current = asyncio.current_task()
    tasks = [
        task
        for task in asyncio.all_tasks()
        if task is not current and not task.done()
    ]
    for task in tasks:
        task.cancel()
    await asyncio.gather(*tasks, return_exceptions=True)
