"""A blocking client for the cluster front door.

Speaks the length-prefixed framing of :mod:`.framing` over a unix
socket.  One request frame carries one line-protocol request; the
matching response frame carries the full multi-line reply.  The client
supports **pipelining** (:meth:`ClusterClient.pipeline`): write many
request frames back-to-back, then collect the responses, which the
router guarantees arrive in request order.

This is the surface the CLI smoke tests, the failure-path suites, and
bench P10 drive; application code embedding the cluster would speak
the same few dozen lines of framing.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional, Sequence, Tuple

from ...robustness import ClusterError, retry_with_backoff
from .framing import MAX_FRAME_BYTES, read_frame, write_frame

__all__ = ["ClusterClient", "ClusterReplyError"]


class ClusterReplyError(RuntimeError):
    """A request resolved to an ``error ...`` reply line.

    ``code`` is the wire code when the reply carried one (the
    structured :class:`~repro.robustness.ReproError` shape
    ``error <code> <Type>: <message>``), else ``"error"``.
    """

    def __init__(self, reply: str):
        super().__init__(reply)
        self.reply = reply
        parts = reply.split(None, 2)
        self.code = (
            parts[1]
            if len(parts) > 2 and not parts[1].endswith(":")
            else "error"
        )


class ClusterClient:
    """One framed connection to a :class:`~.router.ClusterRouter`.

    Connecting retries transient failures — ``ConnectionRefusedError``
    while the router (re)binds its front door, ``FileNotFoundError``
    while the socket file does not exist yet (a router still starting,
    or mid-restart after a crash) — with exponential backoff, up to
    ``connect_attempts`` tries.  Exhaustion raises the wire-coded
    :class:`~repro.robustness.ClusterError` instead of a raw OSError,
    so supervising scripts see the same structured shape as protocol
    errors.  Each attempt opens a *fresh* socket: a socket that failed
    ``connect`` is dead, not retryable.
    """

    def __init__(
        self,
        socket_path: str,
        timeout: Optional[float] = 60.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        connect_attempts: int = 8,
    ):
        self.socket_path = socket_path
        self.max_frame_bytes = max_frame_bytes
        self._sock: Optional[socket.socket] = None

        def attempt() -> socket.socket:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            try:
                sock.connect(socket_path)
            except BaseException:
                sock.close()
                raise
            return sock

        try:
            self._sock = retry_with_backoff(
                attempt,
                attempts=max(1, connect_attempts),
                base_delay=0.02,
                max_delay=0.5,
                retry_on=(ConnectionRefusedError, FileNotFoundError),
            )
        except (ConnectionRefusedError, FileNotFoundError) as exc:
            raise ClusterError(
                f"cluster front door {socket_path} unavailable after "
                f"{max(1, connect_attempts)} connect attempts: {exc}"
            ) from exc

    # -- transport ----------------------------------------------------------

    def send(self, line: str) -> None:
        """Write one request frame without waiting for the response."""
        write_frame(self._sock, line.encode("utf-8"))

    def receive(self) -> List[str]:
        """Read one response frame as its reply lines."""
        payload = read_frame(self._sock, self.max_frame_bytes)
        if payload is None:
            raise ConnectionError("router closed the connection")
        return payload.decode("utf-8").split("\n")

    def request(self, line: str) -> List[str]:
        """One round trip: the reply lines, terminator last."""
        self.send(line)
        return self.receive()

    def request_ok(self, line: str) -> List[str]:
        """Like :meth:`request`, raising on an ``error`` reply."""
        replies = self.request(line)
        if replies[-1].startswith("error"):
            raise ClusterReplyError(replies[-1])
        return replies

    def pipeline(self, lines: Sequence[str]) -> List[List[str]]:
        """Send every request before reading any response (pipelined)."""
        for line in lines:
            self.send(line)
        return [self.receive() for _ in lines]

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- verbs --------------------------------------------------------------

    @staticmethod
    def _json_of(replies: List[str]):
        return json.loads(replies[-1][3:])

    def register(
        self, name: str, source: str, semantics: str = "stratified"
    ) -> Dict:
        """Register a program (newlines in ``source`` collapse to spaces
        — the wire request is one line)."""
        flat = " ".join(source.split())
        return self._json_of(
            self.request_ok(f"register {name} {semantics} {flat}")
        )

    def unregister(self, name: str) -> Dict:
        return self._json_of(self.request_ok(f"unregister {name}"))

    def insert(self, view: str, fact: str) -> Dict:
        return self._json_of(self.request_ok(f"+{view} {fact}"))

    def delete(self, view: str, fact: str) -> Dict:
        return self._json_of(self.request_ok(f"-{view} {fact}"))

    def query(self, view: str, predicate: str) -> Tuple[List[str], List[str]]:
        """``(true_rows, undefined_rows)`` as their wire renderings."""
        replies = self.request_ok(f"query {view} {predicate}")
        rows = [r[4:] for r in replies if r.startswith("row ")]
        undefined = [r[6:] for r in replies if r.startswith("undef ")]
        return rows, undefined

    def query_pattern(
        self, view: str, pattern: str
    ) -> Tuple[List[str], List[str]]:
        """A bound-pattern (demand-driven) query — ``pattern`` is the
        wire form, e.g. ``"tc(a, _)"``.  Same reply shape as
        :meth:`query`; the router routes it to the view's home shard."""
        replies = self.request_ok(f"query {view} {pattern}")
        rows = [r[4:] for r in replies if r.startswith("row ")]
        undefined = [r[6:] for r in replies if r.startswith("undef ")]
        return rows, undefined

    def views(self) -> List[str]:
        return self._json_of(self.request_ok("views"))

    def metrics(self) -> Dict:
        return self._json_of(self.request_ok("metrics"))

    def metrics_prometheus(self) -> str:
        replies = self.request_ok("metrics --format=prometheus")
        return "\n".join(replies[:-1])

    def stats(self, view: Optional[str] = None) -> Dict:
        verb = f"stats {view}" if view else "stats"
        return self._json_of(self.request_ok(verb))

    def drain(self, shard_id: str) -> Dict:
        return self._json_of(self.request_ok(f"drain {shard_id}"))

    def shards(self) -> Dict:
        return self._json_of(self.request_ok("shards"))
