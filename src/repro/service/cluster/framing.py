"""The length-prefixed binary framing of the cluster front door.

The sharded serving tier keeps the workers on the existing newline
protocol (:mod:`repro.service.server`) and puts the framing only on
the client ↔ router hop, where pipelining matters:

* a **frame** is a 4-byte big-endian unsigned length followed by that
  many bytes of UTF-8 payload;
* a **request payload** is exactly one line-protocol request (no
  trailing newline, no embedded newlines — the router rejects those
  with a structured error rather than forwarding a torn request);
* a **response payload** is the full multi-line reply of that request,
  lines joined with ``\\n`` (``row ...`` lines, then the terminal
  ``ok ...`` / ``error ...`` line — the same grammar the line protocol
  emits, just delivered as one atomic unit);
* frames are **pipelined**: a client may write any number of request
  frames before reading; the router executes a connection's requests
  strictly serially in arrival order (so a pipelined query always sees
  the pipelined inserts before it) and writes one response frame per
  request, in order.  Requests on *different* connections run
  concurrently on the event loop.

Both asyncio (router-side) and blocking-socket (client-side) helpers
live here so the two ends cannot drift apart on the wire format.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Optional

__all__ = [
    "MAX_FRAME_BYTES",
    "FrameError",
    "encode_frame",
    "read_frame",
    "write_frame",
    "read_frame_async",
    "write_frame_async",
]

_HEADER = struct.Struct(">I")

#: Refuse absurd frames before allocating for them (16 MiB default).
MAX_FRAME_BYTES = 16 * 1024 * 1024


class FrameError(ValueError):
    """A malformed or oversized frame on the cluster wire."""


def encode_frame(payload: bytes) -> bytes:
    """``payload`` with its 4-byte big-endian length prefix."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _HEADER.pack(len(payload)) + payload


# -- blocking-socket side (the ClusterClient) -------------------------------


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Exactly ``count`` bytes, or ``None`` on clean EOF at a boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise FrameError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[bytes]:
    """One frame payload off a blocking socket (``None`` on EOF)."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise FrameError(f"frame of {length} bytes exceeds {max_bytes}")
    if length == 0:
        return b""
    payload = _recv_exact(sock, length)
    if payload is None:
        raise FrameError("connection closed mid-frame")
    return payload


def write_frame(sock: socket.socket, payload: bytes) -> None:
    """Send one frame on a blocking socket."""
    sock.sendall(encode_frame(payload))


# -- asyncio side (the router) ----------------------------------------------


async def read_frame_async(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[bytes]:
    """One frame payload off an asyncio stream (``None`` on EOF)."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed mid-frame") from None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise FrameError(f"frame of {length} bytes exceeds {max_bytes}")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise FrameError("connection closed mid-frame") from None


async def write_frame_async(
    writer: asyncio.StreamWriter, payload: bytes
) -> None:
    """Send one frame on an asyncio stream and drain the buffer."""
    writer.write(encode_frame(payload))
    await writer.drain()
