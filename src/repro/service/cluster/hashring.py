"""Consistent hashing of view names onto worker shards.

The router assigns each registered view to a shard at ``register``
time and the assignment must survive topology churn gracefully: when a
shard is drained, *only its own* views move (onto the survivors), and
every view that was not on the drained shard keeps its placement — the
consistent-hashing invariant that makes drain a local event instead of
a full reshuffle.

The ring is immutable, like every published structure in this service
(PR 4's snapshots, PR 5's name table): topology changes build a *new*
ring with :meth:`without_shard` / :meth:`with_shard` and the router
republishes its routing table in one atomic swap.

Hashing is :func:`hashlib.sha256` (stable across processes and Python
releases, unlike built-in ``hash``), with ``replicas`` virtual nodes
per shard smoothing the key distribution.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Tuple

__all__ = ["HashRing"]


def _position(token: str) -> int:
    """A stable 64-bit ring position for one token."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """An immutable consistent-hash ring of shard identifiers.

    ``assign(key)`` walks clockwise from the key's position to the
    first virtual node and returns that node's shard.  Equal keys map
    to equal shards for the life of the ring, and across rings that
    share the shard set.
    """

    __slots__ = ("_points", "_shards")

    def __init__(self, shards: Iterable[str], replicas: int = 160):
        self._shards: Tuple[str, ...] = tuple(sorted(set(shards)))
        points: List[Tuple[int, str]] = []
        for shard in self._shards:
            for replica in range(replicas):
                points.append((_position(f"{shard}#{replica}"), shard))
        points.sort()
        self._points = points

    @property
    def shards(self) -> Tuple[str, ...]:
        """The shard identifiers on the ring, sorted."""
        return self._shards

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    def assign(self, key: str) -> str:
        """The shard owning ``key`` (raises when the ring is empty)."""
        if not self._points:
            raise ValueError("cannot assign on an empty ring")
        index = bisect.bisect_right(self._points, (_position(key), ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def without_shard(self, shard: str) -> "HashRing":
        """A new ring with ``shard`` removed (drain)."""
        replicas = len(self._points) // max(1, len(self._shards))
        return HashRing(
            (s for s in self._shards if s != shard), replicas=replicas
        )

    def with_shard(self, shard: str) -> "HashRing":
        """A new ring with ``shard`` added (scale-out)."""
        replicas = (
            len(self._points) // max(1, len(self._shards))
            if self._shards
            else 160
        )
        return HashRing((*self._shards, shard), replicas=replicas)

    def __repr__(self) -> str:
        return f"<HashRing shards={list(self._shards)}>"
