"""The multi-process sharded serving tier (``repro serve --shards N``).

Everything below :mod:`repro.service` scales within one process; the
GIL caps true parallel write throughput there.  This package crosses
the process boundary: N worker processes each host a full
single-process :class:`~repro.service.server.QueryService` behind the
existing line protocol on a per-worker unix socket, fronted by one
asyncio router speaking a pipelined length-prefixed binary framing.

* :mod:`.framing` — the client ↔ router wire format;
* :mod:`.hashring` — consistent-hash view placement;
* :mod:`.worker` — worker process entry points;
* :mod:`.router` — the asyncio front door: routing, fan-out,
  heartbeats, respawn, drain;
* :mod:`.rollup` — per-shard ``ServiceMetrics`` → one aggregate;
* :mod:`.client` — a blocking framed client for tests, benchmarks,
  and scripting.

See the "Sharded serving" section of ``docs/SERVICE.md`` for the
topology, drain semantics, and metrics rollup rules.
"""

from .client import ClusterClient, ClusterReplyError
from .framing import (
    MAX_FRAME_BYTES,
    FrameError,
    encode_frame,
    read_frame,
    read_frame_async,
    write_frame,
    write_frame_async,
)
from .hashring import HashRing
from .rollup import merge_counters, merge_histograms, rollup_metrics
from .router import (
    ClusterRouter,
    ViewRecord,
    WorkerHandle,
    canonical_fact_text,
    cluster,
)
from .worker import DEFAULT_START_METHOD, spawn_worker, worker_main

__all__ = [
    "MAX_FRAME_BYTES",
    "ClusterClient",
    "ClusterReplyError",
    "ClusterRouter",
    "DEFAULT_START_METHOD",
    "FrameError",
    "HashRing",
    "ViewRecord",
    "WorkerHandle",
    "canonical_fact_text",
    "cluster",
    "encode_frame",
    "merge_counters",
    "merge_histograms",
    "read_frame",
    "read_frame_async",
    "rollup_metrics",
    "spawn_worker",
    "worker_main",
    "write_frame",
    "write_frame_async",
]
