"""Locking primitives for the concurrent query service.

The service used to serialise every request through one big lock; now
it holds

* one :class:`ReadWriteLock` over the **registry** — register and
  unregister take the write side; locked-path reads, updates, and
  admin verbs take the (shared) read side just long enough to resolve
  a view name.  Snapshot-mode queries do not take it at all: they
  resolve against the **copy-on-write name table**, an immutable
  ``name → (view, generation)`` dict the writers rebuild under the
  write lock and publish through an :class:`AtomicReference` — one
  atomic load per resolution, zero lock acquisitions; and
* one :class:`InstrumentedLock` per **view** — held by *writers*
  (updates, recompute, recovery), so update batches on the same view
  stay serialised; and
* one :class:`AtomicReference` per view holding its published
  :class:`~repro.service.snapshot.ModelSnapshot` — *readers* pick the
  current snapshot off the reference with no lock at all (RCU-style),
  so queries on a hot view never wait behind maintenance.  Queries
  that cannot be served from a snapshot (a recompute-mode view whose
  model is behind the database) fall back to the view lock.

Both wrappers are observability-aware: every :class:`InstrumentedLock`
acquisition reports its wait and hold wall-clock to a recorder (the
service's :class:`~repro.service.metrics.ServiceMetrics`), and the
acquisition itself is an injectable fault site (``service.lock``) so
the chaos suite can blow up a request *before* it touches any state.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from ..robustness import fault_point

__all__ = ["AtomicReference", "InstrumentedLock", "ReadWriteLock"]

#: recorder(lock_name, wait_seconds, hold_seconds)
LockRecorder = Callable[[str, float, float], None]


class AtomicReference:
    """A single cell whose reads and writes are indivisible.

    The RCU publication primitive of the snapshot read path: a writer
    constructs a fully immutable value and swaps the reference in one
    step; readers call :meth:`get` with no lock and always observe a
    complete value, never a torn one.  (In CPython an attribute
    assignment is a single GIL-protected store, which is exactly the
    memory-ordering guarantee this wrapper names and documents — and
    the one place to add a real barrier on a free-threaded build.)

    Holding a value read from the cell remains safe indefinitely: the
    reference swap never mutates the previous value, it only stops new
    readers from finding it.
    """

    __slots__ = ("_value",)

    def __init__(self, value=None):
        self._value = value

    def get(self):
        """The currently published value (lock-free)."""
        return self._value

    def set(self, value) -> None:
        """Publish a new value with one atomic reference swap."""
        self._value = value


class ReadWriteLock:
    """A writer-preferring readers/writer lock.

    Many readers may hold the lock simultaneously; a writer holds it
    exclusively.  Waiting writers block new readers, so a stream of
    lookups cannot starve a registration.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Hold the shared (read) side for the ``with`` body."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Hold the exclusive (write) side for the ``with`` body."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()


class InstrumentedLock:
    """A reentrant lock that reports wait/hold times and can be faulted.

    The ``service.lock`` fault point fires *before* the acquisition
    attempt, so an injected failure rejects the request without ever
    taking (and thus never leaking) the lock.
    """

    def __init__(self, name: str, recorder: Optional[LockRecorder] = None):
        self.name = name
        self.recorder = recorder
        self._lock = threading.RLock()

    @contextmanager
    def held(self) -> Iterator[None]:
        """Acquire for the ``with`` body, recording wait and hold time."""
        fault_point("service.lock")
        requested = time.perf_counter()
        self._lock.acquire()
        acquired = time.perf_counter()
        try:
            yield
        finally:
            held = time.perf_counter() - acquired
            self._lock.release()
            if self.recorder is not None:
                self.recorder(self.name, acquired - requested, held)

    def __repr__(self) -> str:
        return f"<InstrumentedLock {self.name!r}>"
