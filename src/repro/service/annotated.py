"""Annotated-view maintenance: K-relation models behind the service.

:class:`AnnotatedEngine` is the maintenance engine a view registered
with a non-boolean ``--semiring`` runs on.  It keeps the full
annotation map (predicate → row → carrier value) of the view's
stratified program and maintains it under update batches two ways:

* **weighted differential** — when the semiring *admits differences*
  (its carrier embeds in a ring, ℤ for the naturals) **and** the
  program is non-recursive and negation-free, update batches propagate
  through the bilinearity expansion
  ``Δ(L₁ ⋈ … ⋈ Lₖ) = Σᵢ new₍<ᵢ₎ ⋈ ΔLᵢ ⋈ old₍>ᵢ₎`` with the Z-set
  weight type generalized to the semiring's carrier — the dbsp
  circuit's integer weights are exactly the ``naturals`` instance.
* **recompute-on-update** — everything else (idempotent semirings,
  recursion, negation) re-runs the annotated fixpoint
  (:func:`~repro.datalog.annotated.annotated_model`) against the
  updated EDB.  Correct for any semiring, priced by bench P14.

Both paths are atomic: state (EDB and annotation maps) is only
committed after the whole batch has evaluated, so the view layer's
generic rollback machinery finds nothing to undo on failure and
explicit EDB annotations are never lost to a half-applied batch.

The engine is API-compatible with
:class:`~repro.service.dbsp.engine.DBSPEngine` where the view layer
cares (``edb``, ``state.facts``, ``model()``, ``rows()``, ``apply()``,
``apply_stream()``, ``initialize()``, ``budget``) and adds the
annotation surface (:meth:`annotation_map`, :meth:`wire_annotations`)
the snapshot/explain path serves from.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..datalog.annotated import AnnotationMap, WeightedEvaluator, annotated_model, edb_annotations
from ..datalog.ast import Literal
from ..datalog.database import Database
from ..datalog.stratification import NotStratifiedError
from ..relations.universe import FunctionRegistry
from ..relations.values import Value
from ..robustness import EvaluationBudget, fault_point
from ..semiring import Semiring
from .incremental import IncrementalMaintenanceError
from .metrics import ViewMetrics
from .registry import PreparedProgram

__all__ = ["AnnotatedEngine"]

Row = Tuple[Value, ...]
Batch = Tuple[Iterable[Tuple[str, Row]], Iterable[Tuple[str, Row]]]
#: Explicit per-fact annotations riding along with a batch's inserts.
Annotations = Mapping[Tuple[str, Row], object]


def _has_negation(program) -> bool:
    return any(
        not literal.positive
        for rule in program.rules
        for literal in rule.body
        if isinstance(literal, Literal)
    )


class AnnotatedEngine:
    """A resident annotated model over a pluggable semiring."""

    def __init__(
        self,
        prepared: PreparedProgram,
        semiring: Semiring,
        database: Optional[Database] = None,
        registry: Optional[FunctionRegistry] = None,
        metrics: Optional[ViewMetrics] = None,
        max_rounds: int = 1_000,
        budget: Optional[EvaluationBudget] = None,
        differential: bool = True,
    ):
        if not prepared.stratified:
            raise NotStratifiedError(
                f"program {prepared.name!r} is not stratified; annotated "
                "evaluation requires the stratified fast path"
            )
        self.prepared = prepared
        self.semiring = semiring
        self.registry = registry
        self.metrics = metrics if metrics is not None else ViewMetrics()
        self.max_rounds = max_rounds
        self.budget = budget
        self.edb = (database or Database()).copy()
        for predicate, row in prepared.seed_facts:
            if not self.edb.holds(predicate, *row):
                self.edb.add(predicate, *row)
        # The weighted delta path needs ring differences in the carrier
        # and the simple (non-recursive, negation-free) circuit shape;
        # anything else recomputes the annotated fixpoint per batch.
        self.differential = (
            differential
            and semiring.admits_differences
            and not any(
                component.recursive and component.has_rules()
                for component in prepared.schedule
            )
            and not _has_negation(prepared.program)
        )
        self.evaluator = WeightedEvaluator(registry, semiring)
        self.state = SimpleNamespace(facts={})
        self.initialize()

    # -- lifecycle ------------------------------------------------------------

    def initialize(self) -> None:
        """(Re)compute the annotated model from the EDB."""
        fault_point("incremental.initialize")
        maps = annotated_model(
            self.prepared.program,
            self.edb,
            self.semiring,
            registry=self.registry,
            strata=self.prepared.strata,
            max_rounds=self.max_rounds,
            budget=self.budget,
        )
        self.evaluator = WeightedEvaluator(self.registry, self.semiring)
        self.evaluator.maps = maps
        self._sync_support()
        self.metrics.bump("annotated_initializes")

    def _sync_support(self) -> None:
        self.state.facts = {
            predicate: set(rows)
            for predicate, rows in self.evaluator.maps.items()
        }

    # -- reads ----------------------------------------------------------------

    def model(self) -> Dict[str, FrozenSet[Row]]:
        """The resident support, predicate → rows (EDB and IDB alike)."""
        return {
            predicate: frozenset(rows)
            for predicate, rows in self.evaluator.maps.items()
        }

    def rows(self, predicate: str) -> FrozenSet[Row]:
        """Current (non-zero) rows of one predicate."""
        return frozenset(self.evaluator.maps.get(predicate, ()))

    def annotation_map(self, predicate: str) -> Dict[Row, object]:
        """Row → carrier annotation of one predicate (a copy)."""
        return dict(self.evaluator.maps.get(predicate, {}))

    def wire_annotations(self) -> Dict[str, Dict[Row, str]]:
        """The whole model's annotations in canonical wire text —
        what snapshots carry and ``explain`` lines serve."""
        semiring = self.semiring
        return {
            predicate: {
                row: semiring.format(annotation)
                for row, annotation in rows.items()
            }
            for predicate, rows in self.evaluator.maps.items()
        }

    def _effective(self, predicate: str, row: Row):
        """The EDB annotation a present fact contributes (explicit or
        the semiring's default); None when the fact is absent."""
        if not self.edb.holds(predicate, *row):
            return None
        explicit = self.edb.annotation(predicate, row)
        if explicit is not None:
            return explicit
        return self.semiring.from_edb(predicate, row)

    # -- updates --------------------------------------------------------------

    def apply(
        self,
        inserts: Iterable[Tuple[str, Row]] = (),
        deletes: Iterable[Tuple[str, Row]] = (),
        annotations: Optional[Annotations] = None,
    ) -> Dict[str, object]:
        """Maintain the annotated model under one update batch.

        ``annotations`` attaches explicit carrier values to inserts,
        keyed ``(predicate, row)``.  Annotations are *absolute*: an
        insert with one replaces the fact's previous annotation, an
        insert without one on a present fact is a no-op — both
        idempotent, which WAL replay relies on.  Zero annotations are
        rejected (zero denotes absence; use a delete).
        """
        return self.apply_stream([(inserts, deletes)], annotations=annotations)

    def apply_stream(
        self,
        batches: Sequence[Batch],
        annotations: Optional[Annotations] = None,
    ) -> Dict[str, object]:
        """Apply a burst of batches (in order, atomically overall)."""
        fault_point("incremental.apply")
        if self.budget is not None:
            self.budget.check(phase="annotated-apply")
        annotations = dict(annotations or {})
        for key, value in annotations.items():
            if self.semiring.is_zero(value):
                raise ValueError(
                    f"zero annotation on insert {key[0]}{tuple(key[1])!r} "
                    "denotes absence; use a delete instead"
                )
        support_before = {
            predicate: frozenset(rows)
            for predicate, rows in self.evaluator.maps.items()
        }
        applied_inserts = applied_deletes = 0
        for inserts, deletes in batches:
            ins, dels = self._apply_one(list(inserts), list(deletes), annotations)
            applied_inserts += ins
            applied_deletes += dels
        self._sync_support()
        plus: Dict[str, Set[Row]] = {}
        minus: Dict[str, Set[Row]] = {}
        for predicate, rows in self.evaluator.maps.items():
            before = support_before.get(predicate, frozenset())
            added = set(rows) - before
            if added:
                plus[predicate] = added
        for predicate, before in support_before.items():
            gone = before - set(self.evaluator.maps.get(predicate, ()))
            if gone:
                minus[predicate] = gone
        batch_count = len(batches)
        self.metrics.bump("update_batches", batch_count)
        self.metrics.bump("incremental_batches", batch_count)
        self.metrics.bump("inserts_applied", applied_inserts)
        self.metrics.bump("deletes_applied", applied_deletes)
        delta_plus = sum(len(rows) for rows in plus.values())
        delta_minus = sum(len(rows) for rows in minus.values())
        self.metrics.bump("delta_plus_total", delta_plus)
        self.metrics.bump("delta_minus_total", delta_minus)
        return {
            "delta_plus": delta_plus,
            "delta_minus": delta_minus,
            "batches": batch_count,
            "plus": {p: frozenset(rows) for p, rows in plus.items()},
            "minus": {p: frozenset(rows) for p, rows in minus.items()},
        }

    def _apply_one(
        self,
        inserts: List[Tuple[str, Row]],
        deletes: List[Tuple[str, Row]],
        annotations: Annotations,
    ) -> Tuple[int, int]:
        """One batch, atomically: evaluate first, commit after."""
        # Net EDB effect of the batch, as (op, predicate, row, value,
        # prior): deletes first, then inserts (the wire order).
        # ``prior`` records the effective annotation the op displaces
        # ("del"/"ann"), so the differential path never re-reads the
        # pre-batch database for a row an earlier op in the same batch
        # already changed.
        staged: List[Tuple[str, str, Row, object, object]] = []
        applied_inserts = applied_deletes = 0
        # In-batch row state — a duplicate mention of one row must
        # stage its *net sequential* effect, not a second copy of the
        # same delta: key -> (present, explicit annotation or None).
        state: Dict[Tuple[str, Row], Tuple[bool, object]] = {}

        def current(predicate: str, row: Row) -> Tuple[bool, object]:
            key = (predicate, row)
            if key in state:
                return state[key]
            return (
                self.edb.holds(predicate, *row),
                self.edb.annotation(predicate, row),
            )

        for predicate, row in deletes:
            row = tuple(row)
            present, explicit = current(predicate, row)
            if present:
                prior = (
                    explicit
                    if explicit is not None
                    else self.semiring.from_edb(predicate, row)
                )
                staged.append(("del", predicate, row, None, prior))
                state[(predicate, row)] = (False, None)
                applied_deletes += 1
        for predicate, row in inserts:
            row = tuple(row)
            annotation = annotations.get((predicate, row))
            present, explicit = current(predicate, row)
            if present:
                effective = (
                    explicit
                    if explicit is not None
                    else self.semiring.from_edb(predicate, row)
                )
                if annotation is not None and annotation != effective:
                    staged.append(("ann", predicate, row, annotation, effective))
                    state[(predicate, row)] = (True, annotation)
                    applied_inserts += 1
            else:
                staged.append(("add", predicate, row, annotation, None))
                state[(predicate, row)] = (True, annotation)
                applied_inserts += 1
        if not staged:
            return 0, 0
        if self.differential:
            self._commit_differential(staged)
            self.metrics.bump("annotated_delta_batches")
        else:
            self._commit_recompute(staged)
            self.metrics.bump("annotated_recomputes")
        return applied_inserts, applied_deletes

    def _commit_edb(self, staged) -> None:
        for op, predicate, row, value, _prior in staged:
            if op == "del":
                self.edb.discard(predicate, *row)
            elif op == "add":
                self.edb.add(predicate, *row, annotation=value)
            else:  # "ann"
                self.edb.set_annotation(predicate, row, value)

    def _commit_recompute(self, staged) -> None:
        """Evaluate against a scratch EDB; commit both on success."""
        scratch = self.edb.copy()
        saved, self.edb = self.edb, scratch
        try:
            self._commit_edb(staged)
            maps = annotated_model(
                self.prepared.program,
                self.edb,
                self.semiring,
                registry=self.registry,
                strata=self.prepared.strata,
                max_rounds=self.max_rounds,
                budget=self.budget,
            )
        except BaseException:
            self.edb = saved
            raise
        # Success: replay the staged ops on the *original* database
        # object (the view aliases it as ``view.database``) and swap
        # the maps in.
        self.edb = saved
        self._commit_edb(staged)
        self.evaluator.maps = maps

    # -- the weighted differential path --------------------------------------

    def _commit_differential(self, staged) -> None:
        """Propagate a batch as carrier-weighted deltas (Z-sets whose
        weight type is the semiring's difference ring — ℤ for the
        naturals).  Non-recursive, negation-free programs only; the
        eligibility check in ``__init__`` guarantees that shape."""
        maps = self.evaluator.maps
        # Staged per-predicate deltas over the difference ring.
        delta: Dict[str, Dict[Row, object]] = {}
        new_maps: Dict[str, Dict[Row, object]] = {}

        def bump(predicate: str, row: Row, weight) -> None:
            bucket = delta.setdefault(predicate, {})
            bucket[row] = bucket.get(row, 0) + weight
            if bucket[row] == 0:
                del bucket[row]
            staged_map = new_maps.setdefault(
                predicate, dict(maps.get(predicate, {}))
            )
            updated = staged_map.get(row, 0) + weight
            if updated == 0:
                staged_map.pop(row, None)
            elif updated < 0:
                raise IncrementalMaintenanceError(
                    f"negative annotation for {predicate}{row!r} under "
                    f"semiring {self.semiring.name!r} — differential "
                    "bookkeeping lost sync"
                )
            else:
                staged_map[row] = updated

        for op, predicate, row, value, prior in staged:
            if op == "del":
                bump(predicate, row, -prior)
            elif op == "add":
                annotation = (
                    value
                    if value is not None
                    else self.semiring.from_edb(predicate, row)
                )
                bump(predicate, row, annotation)
            else:  # "ann" — replace: delta is the difference
                bump(predicate, row, value - prior)

        def new_view(predicate: str) -> Mapping[Row, object]:
            staged_map = new_maps.get(predicate)
            return staged_map if staged_map is not None else maps.get(predicate, {})

        for component in self.prepared.schedule:
            if not component.has_rules():
                continue
            for rule, order in component.rules:
                match_literals = [
                    payload for kind, payload in order if kind == "match"
                ]
                for position, literal in enumerate(match_literals):
                    body_delta = delta.get(literal.atom.predicate)
                    if not body_delta:
                        continue

                    def source(index: int, lit: Literal, _pos=position, _d=body_delta):
                        if index < _pos:
                            return new_view(lit.atom.predicate)
                        if index == _pos:
                            return _d
                        return maps.get(lit.atom.predicate, {})

                    for head_row, weight in self.evaluator.fire(
                        rule, order, source, self.budget
                    ):
                        if weight != 0:
                            bump(rule.head.predicate, head_row, weight)
        # Commit: EDB mutations plus the staged maps.
        self._commit_edb(staged)
        for predicate, staged_map in new_maps.items():
            maps[predicate] = staged_map
