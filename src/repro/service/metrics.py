"""Per-view serving metrics.

Every materialized view carries a :class:`ViewMetrics`: monotone
counters (cache traffic, delta sizes, rules fired, recompute fallbacks)
plus accumulated wall-clock per maintenance phase.  The ``stats()`` API
and the ``repro serve`` line protocol expose snapshots of these — the
observability layer the ROADMAP's scaling PRs (sharding, async) will
hang dashboards on.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["ViewMetrics"]


#: Counter names every snapshot reports, even when still zero.
_COUNTERS = (
    "queries",
    "cache_hits",
    "cache_misses",
    "update_batches",
    "inserts_applied",
    "deletes_applied",
    "delta_plus_total",
    "delta_minus_total",
    "rules_fired",
    "overdeleted_total",
    "rederived_total",
    "incremental_batches",
    "recompute_fallbacks",
)


class ViewMetrics:
    """Counters and phase timings for one materialized view."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {name: 0 for name in _COUNTERS}
        self.phase_seconds: Dict[str, float] = {}

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a counter (creating it on first use)."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock of a maintenance/query phase."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed

    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly copy of counters and timings."""
        return {
            "counters": dict(self.counters),
            "phase_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.phase_seconds.items())
            },
        }

    def __repr__(self) -> str:
        busy = {k: v for k, v in self.counters.items() if v}
        return f"<ViewMetrics {busy}>"
