"""The service observability plane: per-view and service-level metrics.

Two layers:

* every materialized view carries a :class:`ViewMetrics` — monotone
  counters (cache traffic, delta sizes, rules fired, recompute
  fallbacks), accumulated wall-clock and a :class:`Histogram` per
  maintenance phase, and the time the view has spent degraded;
* the :class:`~repro.service.server.QueryService` carries one
  :class:`ServiceMetrics` — service-level monotone counters (requests,
  errors, registrations, updates, queries), gauges (in-flight request
  depth; stale-view count and per-view time-in-degraded are derived
  from the live views at snapshot time), lock wait/hold histograms fed
  by :class:`~repro.service.locks.InstrumentedLock`, service-wide phase
  histograms (every view's phases roll up here through the ``sink``
  hook), and a **retired rollup**: when a view is unregistered or
  replaced, its counters are absorbed so service totals stay monotone.

The ``stats`` / ``metrics`` verbs of the line protocol and
``repro serve --metrics-snapshot`` expose snapshots of all of this —
the dashboard surface the ROADMAP's scaling PRs hang on.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = ["Histogram", "ServiceMetrics", "ViewMetrics"]


#: Counter names every view snapshot reports, even when still zero.
_COUNTERS = (
    "queries",
    "cache_hits",
    "cache_misses",
    "update_batches",
    "inserts_applied",
    "deletes_applied",
    "delta_plus_total",
    "delta_minus_total",
    "rules_fired",
    "overdeleted_total",
    "rederived_total",
    "incremental_batches",
    "circuit_steps",
    "delta_batches_coalesced",
    "recompute_batches",
    "recompute_fallbacks",
    "snapshot_swaps",
    "snapshot_reads",
    "stale_queries",
    "compactions",
    "compaction_rows",
)

#: Counter names every service snapshot reports, even when still zero.
_SERVICE_COUNTERS = (
    "requests_total",
    "errors_total",
    "registrations",
    "unregistrations",
    "updates_total",
    "queries_total",
    "lock_acquisitions",
    # The demand registry (magic-sets bound-pattern queries).
    "demand_registrations",
    "demand_hits",
    "demand_evictions",
    "demand_fallbacks",
    # The durability plane (zero and inert without --data-dir).
    "wal_appends",
    "wal_fsyncs",
    "wal_checkpoints",
    "wal_torn_records_dropped",
    "recoveries",
    "recovery_replay_records",
)

#: Exponential latency buckets (seconds), Prometheus-style ``le`` bounds.
_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Histogram:
    """A fixed-bucket timing histogram (cumulative-free, seconds).

    ``observe`` files a value into the first bucket whose upper bound
    contains it (the last bucket is unbounded); ``snapshot`` renders a
    JSON-friendly dict whose ``count`` always equals the sum of the
    bucket counts — the internal-consistency invariant the metamorphic
    suite checks.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds=_BUCKETS):
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """File one observation (negative values clamp to zero)."""
        value = max(0.0, value)
        self.count += 1
        self.sum += value
        self.bucket_counts[bisect_left(self.bounds, value)] += 1

    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly copy: count, sum, and per-bucket counts."""
        buckets = {
            f"le_{bound:g}": count
            for bound, count in zip(self.bounds, self.bucket_counts)
        }
        buckets["le_inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": round(self.sum, 6),
            "buckets": buckets,
        }


class ViewMetrics:
    """Counters, phase timings, and degraded time for one view.

    ``sink`` (optional) is a :class:`ServiceMetrics`: every phase
    observation is forwarded there so the service-level histograms see
    all views combined.
    """

    def __init__(self, sink: Optional["ServiceMetrics"] = None) -> None:
        self.counters: Dict[str, int] = {name: 0 for name in _COUNTERS}
        self.phase_seconds: Dict[str, float] = {}
        self.phase_histograms: Dict[str, Histogram] = {}
        self.sink = sink
        # Snapshot-path queries bump counters without holding the view
        # lock, so increments take this mutex (a read-modify-write on a
        # dict entry is not atomic even under the GIL).
        self._counter_lock = threading.Lock()
        self._degraded_seconds = 0.0
        self._degraded_since: Optional[float] = None

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a counter (creating it on first use). Thread-safe."""
        with self._counter_lock:
            self.counters[counter] = self.counters.get(counter, 0) + amount

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock of a maintenance/query phase."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed
            histogram = self.phase_histograms.get(name)
            if histogram is None:
                histogram = self.phase_histograms[name] = Histogram()
            histogram.observe(elapsed)
            if self.sink is not None:
                self.sink.observe_phase(name, elapsed)

    # -- degraded-time tracking ----------------------------------------------

    def mark_degraded(self) -> None:
        """Start the degraded clock (idempotent while degraded)."""
        if self._degraded_since is None:
            self._degraded_since = time.perf_counter()

    def mark_healthy(self) -> None:
        """Stop the degraded clock, banking the elapsed time."""
        if self._degraded_since is not None:
            self._degraded_seconds += time.perf_counter() - self._degraded_since
            self._degraded_since = None

    def degraded_seconds(self) -> float:
        """Total time spent degraded, including the current spell."""
        total = self._degraded_seconds
        if self._degraded_since is not None:
            total += time.perf_counter() - self._degraded_since
        return total

    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly copy of counters, timings, degraded time."""
        with self._counter_lock:
            counters = dict(self.counters)
        return {
            "counters": counters,
            "phase_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.phase_seconds.items())
            },
            "phase_histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self.phase_histograms.items())
            },
            "degraded_seconds": round(self.degraded_seconds(), 6),
        }

    def __repr__(self) -> str:
        busy = {k: v for k, v in self.counters.items() if v}
        return f"<ViewMetrics {busy}>"


class ServiceMetrics:
    """Service-level aggregation: counters, gauges, histograms, rollup.

    Thread-safe — bumped from every worker thread of the socket server
    without any outer lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = {name: 0 for name in _SERVICE_COUNTERS}
        self.lock_wait = Histogram()
        self.lock_hold = Histogram()
        self.phase_histograms: Dict[str, Histogram] = {}
        # Counters absorbed from unregistered/replaced views, so the
        # service-wide rollup stays monotone across view churn.
        self.retired_counters: Dict[str, int] = {}
        self.retired_degraded_seconds = 0.0
        self._inflight = 0

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a service-level counter."""
        with self._lock:
            self.counters[counter] = self.counters.get(counter, 0) + amount

    def record_lock(self, name: str, wait: float, hold: float) -> None:
        """File one lock acquisition (the InstrumentedLock recorder)."""
        with self._lock:
            self.counters["lock_acquisitions"] += 1
            self.lock_wait.observe(wait)
            self.lock_hold.observe(hold)

    def observe_phase(self, name: str, seconds: float) -> None:
        """File one phase timing (the ViewMetrics sink)."""
        with self._lock:
            histogram = self.phase_histograms.get(name)
            if histogram is None:
                histogram = self.phase_histograms[name] = Histogram()
            histogram.observe(seconds)

    @contextmanager
    def request(self) -> Iterator[None]:
        """Track one protocol request: total counter + in-flight gauge."""
        with self._lock:
            self.counters["requests_total"] += 1
            self._inflight += 1
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1

    @property
    def inflight(self) -> int:
        """Requests currently being handled (the queue-depth gauge)."""
        return self._inflight

    def absorb_counters(self, counters: Dict[str, int]) -> None:
        """Roll a plain counter dict into the retired totals.

        Cold-start recovery uses this to re-seat the rollup persisted
        in a checkpoint, so service totals stay monotone across a
        crash-restart cycle even though every live view restarts from
        zero.
        """
        with self._lock:
            for name, value in counters.items():
                self.retired_counters[name] = (
                    self.retired_counters.get(name, 0) + value
                )

    def absorb(self, view_metrics: ViewMetrics) -> None:
        """Roll a departing view's counters into the retired totals."""
        # Copy under the view's counter mutex: snapshot-path readers may
        # still be bumping a straggler increment while the view retires.
        with view_metrics._counter_lock:
            absorbed = dict(view_metrics.counters)
        with self._lock:
            for name, value in absorbed.items():
                self.retired_counters[name] = (
                    self.retired_counters.get(name, 0) + value
                )
            self.retired_degraded_seconds += view_metrics.degraded_seconds()

    def snapshot(self) -> Dict[str, object]:
        """The service-level part (no view data — see the QueryService
        ``metrics_snapshot``, which adds views, gauges, and the rollup)."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "locks": {
                    "wait": self.lock_wait.snapshot(),
                    "hold": self.lock_hold.snapshot(),
                },
                "phase_histograms": {
                    name: histogram.snapshot()
                    for name, histogram in sorted(self.phase_histograms.items())
                },
                "retired": dict(self.retired_counters),
                "retired_degraded_seconds": round(
                    self.retired_degraded_seconds, 6
                ),
            }

    def __repr__(self) -> str:
        busy = {k: v for k, v in self.counters.items() if v}
        return f"<ServiceMetrics {busy} inflight={self._inflight}>"
