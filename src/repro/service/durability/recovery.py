"""Cold-start recovery of a :class:`~repro.service.server.QueryService`.

:func:`recover_service` rebuilds a freshly-constructed service from its
data directory, in three steps:

1. **Checkpoint restore** — every view in the newest valid checkpoint
   is re-registered from its journaled program source (the same text
   the original ``register`` saw), then its database is *reconciled*
   to the checkpointed fact set through the normal update path: the
   checkpoint stores the facts as canonical text and the declared
   predicate set, the restore re-registers (seed facts and all),
   diffs, and applies the difference as one insert/delete batch.  The
   restored database's fingerprint must then equal the one recorded at
   capture time — a mismatch means the serialize/parse roundtrip or
   the restore path is broken, and recovery refuses to serve
   (:class:`~repro.robustness.RecoveryError`) rather than hand out a
   silently different model.

2. **WAL replay** — every journaled operation past the checkpoint
   boundary is re-driven through the public ``register`` /
   ``unregister`` / ``update`` methods, in lsn order.  The checkpoint
   may already contain the effects of a few records past its boundary
   (capture races tail appends by design); replay is convergent —
   fact-level inserts/deletes are last-writer-wins and a re-register
   resets then rebuilds — so re-applying them is harmless.  A record
   that fails to apply (e.g. an update for a view a later record
   unregisters anyway) is skipped with a warning, not fatal: the log
   is a history, and history can reference state that no longer
   matters.

3. **Generation bump** — the data directory's recovered-generation
   marker advances, and the checkpoint's persisted service-counter
   rollup is absorbed into the retired totals so service metrics stay
   monotone across the crash (replayed operations bump live counters
   again, so totals may over-count — never under-count or regress).

The manager's ``replaying`` flag is held high throughout so the
service's own journaling hooks stay quiet — recovery must not re-log
the log.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ...robustness import RecoveryError, ReproError, fault_point
from .manager import DurabilityManager
from .wal import WalRecord

__all__ = ["RecoveryReport", "recover_service"]

logger = logging.getLogger(__name__)


@dataclass
class RecoveryReport:
    """What one cold-start recovery did (returned and kept on the
    service as ``service.last_recovery``)."""

    generation: int = 0
    checkpoint_lsn: int = 0
    views_restored: int = 0
    facts_restored: int = 0
    replayed_records: int = 0
    skipped_records: int = 0
    torn_records_dropped: int = 0
    errors: List[str] = field(default_factory=list)

    def describe(self) -> Dict[str, object]:
        return {
            "generation": self.generation,
            "checkpoint_lsn": self.checkpoint_lsn,
            "views_restored": self.views_restored,
            "facts_restored": self.facts_restored,
            "replayed_records": self.replayed_records,
            "skipped_records": self.skipped_records,
            "torn_records_dropped": self.torn_records_dropped,
            "errors": list(self.errors),
        }


def _fact_set(texts) -> Set[Tuple[str, tuple]]:
    from ..server import parse_fact

    return {parse_fact(text) for text in texts}


def _annotated_fact_set(texts):
    """Parse ``fact[ @ annotation]`` texts into ``(facts, annotations)``.

    ``annotations`` keeps the wire text verbatim (keyed by fact); the
    service's update path parses it with the target view's semiring.
    Checkpoint and WAL records from boolean views never carry the
    suffix, so this degrades to :func:`_fact_set` with an empty map.
    """
    from ..server import parse_annotated_fact

    facts: Set[Tuple[str, tuple]] = set()
    annotations: Dict[Tuple[str, tuple], str] = {}
    for text in texts:
        predicate, row, annotation = parse_annotated_fact(text)
        facts.add((predicate, row))
        if annotation is not None:
            annotations[(predicate, row)] = annotation
    return facts, annotations


def _fact_order(fact: Tuple[str, tuple]):
    """A total order over facts that never compares row values
    directly: rows hold arbitrary ``Value`` types (``Atom`` defines no
    ``<``), so sorting raw tuples crashes on the first same-predicate
    pair.  repr is canonical per value and deterministic across runs,
    which is all replay determinism needs."""
    predicate, row = fact
    return (predicate, tuple(repr(value) for value in row))


def _restore_view(service, name: str, info: Dict[str, object]) -> int:
    """Re-register one checkpointed view and reconcile its database."""
    service.register(
        name,
        info["source"],
        semantics=info.get("semantics", "stratified"),
        incremental=bool(info.get("incremental", True)),
        # Explicit, not the service default: an operator who changes
        # ``--semiring`` must not silently re-interpret old state.
        semiring=info.get("semiring", "bool"),
    )
    view = service.view(name)
    target, target_annotations = _annotated_fact_set(info.get("facts", ()))
    current = {(predicate, row) for predicate, row in view.database}
    inserts = set(target - current)
    deletes = sorted(current - target, key=_fact_order)
    if target_annotations:
        # A fresh registration carries no explicit annotations, so
        # every explicitly annotated checkpoint fact is re-inserted
        # with its annotation — insert-with-annotation is absolute
        # (replace), so this converges even for facts the seed pass
        # already created.
        inserts |= set(target_annotations)
    inserts = sorted(inserts, key=_fact_order)
    if inserts or deletes:
        service.update(
            name,
            inserts=inserts,
            deletes=deletes,
            annotations=target_annotations or None,
        )
    # Reconciling through update cannot re-declare a predicate that
    # ended the pre-crash epoch declared-but-empty (an insert-then-
    # delete history), and the database fingerprint covers declared
    # predicates — so restore the declarations explicitly before
    # checking it.
    for predicate in info.get("declared", ()):
        if predicate not in view.database:
            view.database.declare(predicate)
    recorded = info.get("fingerprint")
    if recorded and view.database.fingerprint() != recorded:
        raise RecoveryError(
            f"restored view {name!r} disagrees with its checkpoint: "
            f"fingerprint {view.database.fingerprint()[:12]}… != "
            f"recorded {str(recorded)[:12]}…"
        )
    return len(target)


def _apply_record(service, record: WalRecord) -> None:
    """Re-drive one journaled operation through the public service API."""
    operation = record.operation
    op = operation.get("op")
    name = operation.get("view")
    if op == "register":
        service.register(
            name,
            operation["source"],
            semantics=operation.get("semantics", "stratified"),
            incremental=bool(operation.get("incremental", True)),
            # Old (pre-semiring) records carry no key and replay as
            # boolean regardless of the service's current default.
            semiring=operation.get("semiring", "bool"),
        )
    elif op == "unregister":
        service.unregister(name)
    elif op == "update":
        inserts, annotations = _annotated_fact_set(operation.get("inserts", ()))
        service.update(
            name,
            inserts=sorted(inserts, key=_fact_order),
            deletes=sorted(_fact_set(operation.get("deletes", ())), key=_fact_order),
            annotations=annotations or None,
        )
    else:
        raise RecoveryError(f"unknown WAL operation {op!r} at lsn {record.lsn}")


def recover_service(service, manager: DurabilityManager) -> RecoveryReport:
    """Rebuild ``service`` from ``manager``'s data directory.

    ``service`` must be freshly constructed (no views registered).
    Raises :class:`~repro.robustness.RecoveryError` on a fingerprint
    mismatch or an unreadable checkpointed view; tolerates individual
    WAL records that no longer apply.
    """
    fault_point("durability.recover")
    state, records = manager.scan()
    report = RecoveryReport(
        checkpoint_lsn=manager.last_checkpoint_lsn,
        torn_records_dropped=manager.torn_records_dropped,
    )
    manager.replaying = True
    try:
        if state:
            views = state.get("views", {})
            for name in sorted(views):
                report.facts_restored += _restore_view(service, name, views[name])
                report.views_restored += 1
            rollup = state.get("rollup")
            if rollup:
                # Absorbed into the retired totals: the rollup stays
                # monotone across the restart even though the live
                # views start from zero.
                service.metrics.absorb_counters(
                    {name: int(value) for name, value in rollup.items()}
                )
            # Service-level counters are re-seated directly, so
            # requests_total & co. are monotone across the restart too
            # (replay bumps some of them again — totals may over-count
            # the crash window, never regress).
            for name, value in state.get("service_counters", {}).items():
                if value:
                    service.metrics.bump(name, int(value))
        for record in records:
            try:
                _apply_record(service, record)
                report.replayed_records += 1
            except (ReproError, KeyError, ValueError) as exc:
                if isinstance(exc, RecoveryError):
                    raise
                report.skipped_records += 1
                message = f"lsn {record.lsn}: {type(exc).__name__}: {exc}"
                report.errors.append(message)
                logger.warning("skipping unreplayable WAL record (%s)", message)
    finally:
        manager.replaying = False
    report.generation = manager.bump_generation()
    service.metrics.bump("recoveries")
    if report.replayed_records:
        service.metrics.bump("recovery_replay_records", report.replayed_records)
    logger.info(
        "recovered generation %d: %d views, %d facts from checkpoint lsn %d, "
        "%d WAL records replayed (%d skipped, %d torn dropped)",
        report.generation,
        report.views_restored,
        report.facts_restored,
        report.checkpoint_lsn,
        report.replayed_records,
        report.skipped_records,
        report.torn_records_dropped,
    )
    return report
