"""Atomic checkpoints: write-tmp-rename snapshots at a WAL position.

A checkpoint file ``checkpoint-<lsn>.json`` carries the complete
serving state as of log position ``lsn`` — recovery loads the newest
valid one and replays only the WAL records past it.  Writing is
crash-safe by construction: the JSON is written to a ``.tmp`` sibling,
fsynced, and renamed into place (``os.replace`` is atomic on POSIX),
then the directory entry is fsynced so the rename itself survives
power loss.  A reader can therefore only ever observe a whole
checkpoint or none; a half-written ``.tmp`` is ignored and eventually
overwritten.

Older checkpoint files are pruned after a successful save — at most
the newest two are kept, so a save that itself crashes mid-rename
still leaves a previous checkpoint to fall back to.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = ["CheckpointStore"]

logger = logging.getLogger(__name__)

_PREFIX = "checkpoint-"
_SUFFIX = ".json"


def fsync_directory(directory: Path) -> None:
    """Flush a directory entry (renames, unlinks) to stable storage."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - not all FSes support dir fsync
        pass
    finally:
        os.close(fd)


class CheckpointStore:
    """The checkpoint files of one data directory."""

    def __init__(self, directory: Path, keep: int = 2):
        self.directory = Path(directory)
        self.keep = max(1, keep)

    def _files(self) -> List[Path]:
        """Checkpoint files, oldest first (lexicographic = lsn order)."""
        return sorted(
            path
            for path in self.directory.iterdir()
            if path.name.startswith(_PREFIX) and path.name.endswith(_SUFFIX)
        )

    def save(self, state: Dict[str, object], lsn: int, durable: bool = True) -> Path:
        """Atomically write ``state`` as the checkpoint at position ``lsn``.

        ``durable=False`` (the ``fsync=off`` policy) skips the fsyncs
        but keeps the tmp+rename dance, so even then a crash can only
        lose the checkpoint, never tear it.
        """
        path = self.directory / f"{_PREFIX}{lsn:020d}{_SUFFIX}"
        tmp_path = path.with_suffix(path.suffix + ".tmp")
        document = {"lsn": lsn, "state": state}
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        if durable:
            fsync_directory(self.directory)
        self._prune(keep_at_least=path)
        return path

    def _prune(self, keep_at_least: Path) -> None:
        files = self._files()
        for path in files[: -self.keep]:
            if path != keep_at_least:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing cleanup
                    pass

    def load_newest(self) -> Tuple[int, Optional[Dict[str, object]]]:
        """``(lsn, state)`` of the newest *valid* checkpoint.

        Unparsable files (a torn write on a filesystem without atomic
        rename, manual tampering) are skipped with a warning, falling
        back to the next older one; ``(0, None)`` when none is usable —
        recovery then replays the WAL from the beginning.
        """
        for path in reversed(self._files()):
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
                return int(document["lsn"]), document["state"]
            except (ValueError, KeyError, TypeError, OSError):
                logger.warning("skipping unreadable checkpoint %s", path)
        return 0, None
