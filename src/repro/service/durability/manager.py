"""The :class:`DurabilityManager`: one data directory, journaled.

A serving tier that wants durability owns exactly one manager.  The
manager owns the data directory — the single-writer ``LOCK`` file, the
WAL segments, the checkpoint files, and the ``GENERATION`` marker —
and exposes the small surface the tier needs:

* :meth:`scan` — everything on disk at cold start: the newest valid
  checkpoint, the torn-tail-truncated WAL suffix past it, and the
  truncation count (how many records the crash tore off the tail);
* :meth:`append` — journal one operation (the tier calls this *after*
  the operation succeeded and *before* acknowledging it, so a logged
  record is always a real state transition and an acked one is always
  logged);
* :meth:`maybe_checkpoint` / :meth:`checkpoint` — the every-N-records
  cadence.  Checkpointing rotates the WAL first, so the checkpoint's
  boundary lsn cleanly separates covered segments (pruned) from the
  fresh one appends continue into.  The state captured *may* already
  include a few operations past the boundary — replaying a contiguous
  suffix of insert/delete/register operations onto a state that
  already contains its effects reconverges to the same fixpoint, so
  recovery is correct either way (docs/DURABILITY.md spells out the
  argument);
* :meth:`close` — final checkpoint (graceful shutdown), log close,
  lock release.

The manager is deliberately tier-agnostic: it never interprets the
operation dicts it journals.  What to journal and how to replay live
with the tier — :mod:`.recovery` for the single-process
:class:`~repro.service.server.QueryService`, the router's own loader
for the cluster control plane.
"""

from __future__ import annotations

import logging
import os
import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ...robustness import DataDirLocked, RecoveryError, fault_point
from .checkpoint import CheckpointStore, fsync_directory
from .wal import (
    FSYNC_MODES,
    WalRecord,
    WriteAheadLog,
    scan_segment,
    segment_files,
    truncate_segment,
)

__all__ = ["DurabilityManager", "DataDirLocked", "RecoveryError"]

logger = logging.getLogger(__name__)

try:  # pragma: no cover - fcntl is always present on the target platform
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None


class DurabilityManager:
    """Journaling, checkpoint cadence, and recovery plumbing for one tier.

    ``capture`` (set after construction via :meth:`attach`, or passed
    here) is the zero-argument callable producing the tier's complete
    JSON-friendly state for a checkpoint.  ``on_event(name, amount)``
    receives counter bumps (``wal_appends``, ``wal_fsyncs``,
    ``wal_checkpoints``, ``wal_torn_records_dropped``,
    ``recovery_replay_records``, ``recoveries``) — the tier points it
    at its metrics plane.
    """

    def __init__(
        self,
        data_dir,
        fsync: str = "batch",
        checkpoint_every: int = 256,
        fsync_every: int = 16,
        capture: Optional[Callable[[], Dict[str, object]]] = None,
        on_event: Optional[Callable[[str, int], None]] = None,
    ):
        if fsync not in FSYNC_MODES:
            raise ValueError(f"unknown fsync mode {fsync!r}; pick from {FSYNC_MODES}")
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.checkpoint_every = max(1, checkpoint_every)
        self.capture = capture
        self.on_event = on_event
        #: True while recovery replays the log through the tier's normal
        #: operation paths — those paths consult it to skip re-journaling.
        self.replaying = False
        self._lock_handle = self._acquire_lock()
        self._checkpoint_lock = threading.Lock()
        self._appends_since_checkpoint = 0
        self._last_checkpoint_lsn = 0
        self._closed = False
        self.generation = self._read_generation()
        # Cold-start disk scan happens before the WAL reopens, so the
        # new active segment starts past everything recovery saw.
        self._store = CheckpointStore(self.data_dir)
        (
            self._scanned_checkpoint_lsn,
            self._scanned_state,
            self._scanned_records,
            self.torn_records_dropped,
        ) = self._scan_disk()
        highest = (
            self._scanned_records[-1].lsn
            if self._scanned_records
            else self._scanned_checkpoint_lsn
        )
        self._wal = WriteAheadLog(
            self.data_dir,
            fsync=fsync,
            fsync_every=fsync_every,
            next_lsn=highest + 1,
            on_event=on_event,
        )
        self._last_checkpoint_lsn = self._scanned_checkpoint_lsn
        if self.torn_records_dropped:
            self._event("wal_torn_records_dropped", self.torn_records_dropped)

    # -- locking -------------------------------------------------------------

    def _acquire_lock(self):
        path = self.data_dir / "LOCK"
        handle = open(path, "a+")
        if fcntl is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.close()
                raise DataDirLocked(
                    f"data directory {self.data_dir} is locked by another "
                    "live server process"
                ) from None
        handle.seek(0)
        handle.truncate()
        handle.write(f"{os.getpid()}\n")
        handle.flush()
        return handle

    # -- the generation marker ----------------------------------------------

    def _generation_path(self) -> Path:
        return self.data_dir / "GENERATION"

    def _read_generation(self) -> int:
        try:
            return int(self._generation_path().read_text().strip())
        except (OSError, ValueError):
            return 0

    def bump_generation(self) -> int:
        """Advance the recovered-generation marker (tmp + rename)."""
        self.generation += 1
        tmp = self._generation_path().with_suffix(".tmp")
        tmp.write_text(f"{self.generation}\n")
        os.replace(tmp, self._generation_path())
        if self.fsync != "off":
            fsync_directory(self.data_dir)
        return self.generation

    # -- cold-start scan -----------------------------------------------------

    def _scan_disk(self) -> Tuple[int, Optional[Dict], List[WalRecord], int]:
        """Newest checkpoint + truncated, deduplicated WAL suffix."""
        checkpoint_lsn, state = self._store.load_newest()
        records: List[WalRecord] = []
        torn_total = 0
        stop = False
        for path in segment_files(self.data_dir):
            if stop:
                # A torn record in a *non-final* segment means every
                # later segment is unreachable from a consistent
                # prefix; count and drop them rather than replay a
                # stream with a hole in the middle.
                segment_records, _end, torn = scan_segment(path)
                torn_total += len(segment_records) + torn
                path.unlink()
                continue
            segment_records, clean_end, torn = scan_segment(path)
            if torn:
                torn_total += torn
                truncate_segment(path, clean_end)
                stop = True
            records.extend(
                record
                for record in segment_records
                if record.lsn > checkpoint_lsn
            )
        records.sort(key=lambda record: record.lsn)
        return checkpoint_lsn, state, records, torn_total

    def scan(self) -> Tuple[Optional[Dict], List[WalRecord]]:
        """What recovery must restore: ``(checkpoint_state, wal_suffix)``.

        The suffix is already torn-tail-truncated and contains only
        records past the checkpoint, in lsn order.
        """
        return self._scanned_state, self._scanned_records

    @property
    def last_checkpoint_lsn(self) -> int:
        return self._last_checkpoint_lsn

    def attach(
        self,
        capture: Optional[Callable[[], Dict[str, object]]] = None,
        on_event: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        """Late-bind the capture/metrics hooks (after tier construction)."""
        if capture is not None:
            self.capture = capture
        if on_event is not None:
            self.on_event = on_event
            self._wal.on_event = on_event

    def _event(self, name: str, amount: int = 1) -> None:
        if self.on_event is not None:
            self.on_event(name, amount)

    # -- journaling ----------------------------------------------------------

    def append(self, operation: Dict[str, object]) -> int:
        """Journal one completed operation; its lsn.

        Call *after* the operation succeeded, *before* acknowledging it
        to the client — and, for ordering, inside whatever hold
        serialises operations on the touched entity (the view lock, the
        registry write lock), so replay order matches apply order
        per entity.
        """
        lsn = self._wal.append(operation)
        self._appends_since_checkpoint += 1
        return lsn

    def should_checkpoint(self) -> bool:
        return self._appends_since_checkpoint >= self.checkpoint_every

    def maybe_checkpoint(self) -> bool:
        """Checkpoint when the cadence says so.

        Call **outside** any entity lock: the capture callback walks
        the tier's state and may take those locks itself.
        """
        if not self.should_checkpoint():
            return False
        return self.checkpoint()

    def checkpoint(self) -> bool:
        """Take one checkpoint now (False when one is already running)."""
        if self.capture is None:
            return False
        if not self._checkpoint_lock.acquire(blocking=False):
            return False
        try:
            fault_point("durability.checkpoint")
            # Rotate first: the boundary lsn separates segments the
            # checkpoint covers (pruned below) from the one appends
            # keep landing in while we capture.
            boundary = self._wal.rotate()
            self._appends_since_checkpoint = 0
            state = self.capture()
            self._store.save(state, boundary, durable=self.fsync != "off")
            self._wal.prune(boundary)
            self._last_checkpoint_lsn = boundary
            self._event("wal_checkpoints")
            return True
        finally:
            self._checkpoint_lock.release()

    # -- observability -------------------------------------------------------

    def wal_size_bytes(self) -> int:
        return self._wal.size_bytes()

    def last_lsn(self) -> int:
        return self._wal.last_lsn()

    def describe(self) -> Dict[str, object]:
        """The JSON block ``metrics`` snapshots embed."""
        return {
            "data_dir": str(self.data_dir),
            "fsync": self.fsync,
            "checkpoint_every": self.checkpoint_every,
            "generation": self.generation,
            "last_lsn": self._wal.last_lsn(),
            "last_checkpoint_lsn": self._last_checkpoint_lsn,
            "wal_size": self._wal.size_bytes(),
        }

    # -- shutdown ------------------------------------------------------------

    def close(self, final_checkpoint: bool = True) -> None:
        """Graceful shutdown: final checkpoint, close the log, unlock."""
        if self._closed:
            return
        self._closed = True
        try:
            if final_checkpoint and self.capture is not None:
                try:
                    self.checkpoint()
                except Exception:  # keep shutting down on a failed flush
                    logger.exception("final checkpoint failed; WAL remains")
            self._wal.close()
        finally:
            if fcntl is not None:
                try:
                    fcntl.flock(self._lock_handle.fileno(), fcntl.LOCK_UN)
                except OSError:  # pragma: no cover
                    pass
            self._lock_handle.close()
