"""The write-ahead log: CRC32-framed, length-prefixed, append-only.

Frame layout, one per record::

    +----------------+----------------+------------------------+
    | length (4B BE) | crc32 (4B BE)  | payload (JSON, utf-8)  |
    +----------------+----------------+------------------------+

The CRC covers the payload bytes; the payload is one JSON object
carrying the operation plus its ``lsn`` (log sequence number, assigned
monotonically by the writer).  A reader that hits a short header, a
short payload, a CRC mismatch, or unparsable JSON treats everything
from that offset on as a **torn tail** — the bytes a crash mid-write
left behind — and recovery truncates the file back to the last whole
record (:func:`truncate_segment`).

The log is a directory of **segments** (``wal-<first-lsn>.log``): the
writer appends to the newest one and :meth:`WriteAheadLog.rotate`
starts a fresh one at a checkpoint boundary, after which
:meth:`WriteAheadLog.prune` deletes segments wholly covered by the
checkpoint.  Opening a directory always starts a new segment after the
highest existing lsn — old segments are never appended to, so a
recovered tail can never interleave with new writes.

``fsync`` policies:

``always``
    ``os.fsync`` after every append — an acknowledged operation
    survives power loss (the crash-matrix guarantee);
``batch``
    fsync every ``fsync_every``-th append and on :meth:`sync` /
    :meth:`rotate` / :meth:`close` — bounded loss window, much cheaper;
``off``
    never fsync; every append still reaches the OS page cache (one
    unbuffered ``write``), so a process crash (``kill -9``) loses
    nothing — only the machine dying can.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ...robustness import fault_point

__all__ = [
    "FSYNC_MODES",
    "MAX_RECORD_BYTES",
    "WalRecord",
    "WriteAheadLog",
    "scan_segment",
    "truncate_segment",
]

FSYNC_MODES = ("always", "batch", "off")

_HEADER = struct.Struct(">II")

#: Sanity cap on one record's payload — a corrupt length field must not
#: make the scanner try to allocate gigabytes.
MAX_RECORD_BYTES = 64 * 1024 * 1024

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


def _segment_name(first_lsn: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_lsn:020d}{_SEGMENT_SUFFIX}"


def segment_files(directory: Path) -> List[Path]:
    """The directory's WAL segments, oldest first (by first lsn)."""
    return sorted(
        path
        for path in directory.iterdir()
        if path.name.startswith(_SEGMENT_PREFIX)
        and path.name.endswith(_SEGMENT_SUFFIX)
    )


def encode_record(payload: bytes) -> bytes:
    """Frame one payload: length + CRC32 header, then the bytes."""
    return _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record: its lsn and the operation dict."""

    lsn: int
    operation: Dict[str, object]


def scan_segment(path: Path) -> Tuple[List[WalRecord], int, int]:
    """Decode one segment: ``(records, clean_end_offset, torn_records)``.

    ``clean_end_offset`` is the byte offset of the last whole record's
    end — equal to the file size when the segment is clean.  Anything
    past it is a torn tail: at most one physically torn frame plus any
    frames queued behind it, reported in ``torn_records`` (counted as 1
    when trailing garbage exists but no whole header is readable).
    """
    data = path.read_bytes()
    records: List[WalRecord] = []
    offset = 0
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            break
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES or offset + _HEADER.size + length > len(data):
            break
        payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            break
        try:
            decoded = json.loads(payload.decode("utf-8"))
            lsn = int(decoded.pop("lsn"))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            break
        records.append(WalRecord(lsn, decoded))
        offset += _HEADER.size + length
    torn = 0
    if offset < len(data):
        # Count the whole frames drowned behind the torn one, so the
        # truncation metric reflects every record the tail cost us.
        torn = 1 + _count_frames(data, offset)
    return records, offset, torn


def _count_frames(data: bytes, offset: int) -> int:
    """Whole well-formed frames *after* the first torn byte (best effort)."""
    count = 0
    # Skip the torn frame itself: we cannot know its length, so walk
    # forward byte-by-byte until a valid frame parses.  Bounded scan —
    # torn tails are small (one interrupted write).
    probe = offset + 1
    while probe + _HEADER.size <= len(data) and probe - offset < 4096:
        length, crc = _HEADER.unpack_from(data, probe)
        end = probe + _HEADER.size + length
        if length <= MAX_RECORD_BYTES and end <= len(data):
            if zlib.crc32(data[probe + _HEADER.size : end]) & 0xFFFFFFFF == crc:
                count += 1
                probe = end
                continue
        probe += 1
    return count


def truncate_segment(path: Path, clean_end: int) -> int:
    """Cut a segment back to its clean prefix; bytes dropped returned."""
    size = path.stat().st_size
    if clean_end >= size:
        return 0
    with open(path, "r+b") as handle:
        handle.truncate(clean_end)
        handle.flush()
        os.fsync(handle.fileno())
    return size - clean_end


class WriteAheadLog:
    """The append side of the log: one active segment, thread-safe.

    ``next_lsn`` is seeded by the caller (recovery hands in the highest
    lsn it saw, plus one) so a reopened log continues the sequence.
    """

    def __init__(
        self,
        directory: Path,
        fsync: str = "batch",
        fsync_every: int = 16,
        next_lsn: int = 1,
        on_event=None,
    ):
        if fsync not in FSYNC_MODES:
            raise ValueError(f"unknown fsync mode {fsync!r}; pick from {FSYNC_MODES}")
        self.directory = Path(directory)
        self.fsync = fsync
        self.fsync_every = max(1, fsync_every)
        self.next_lsn = next_lsn
        self.on_event = on_event
        self._lock = threading.Lock()
        self._handle = None
        self._segment_path: Optional[Path] = None
        self._segment_bytes = 0
        self._older_bytes = sum(
            path.stat().st_size for path in segment_files(self.directory)
        )
        self._unsynced = 0
        self._open_segment()

    # -- internals (call with the lock held) --------------------------------

    def _open_segment(self) -> None:
        path = self.directory / _segment_name(self.next_lsn)
        # O_APPEND + buffering=0: every append is one whole-frame write
        # syscall, so a crash can tear at most the frame being written.
        self._handle = open(path, "ab", buffering=0)
        self._segment_path = path
        self._segment_bytes = 0

    def _event(self, name: str, amount: int = 1) -> None:
        if self.on_event is not None:
            self.on_event(name, amount)

    def _fsync_now(self) -> None:
        fault_point("durability.fsync")
        os.fsync(self._handle.fileno())
        self._unsynced = 0
        self._event("wal_fsyncs")

    # -- the write path ------------------------------------------------------

    def append(self, operation: Dict[str, object]) -> int:
        """Frame, write, and (per policy) fsync one operation; its lsn."""
        with self._lock:
            fault_point("durability.append")
            lsn = self.next_lsn
            payload = json.dumps(
                {"lsn": lsn, **operation}, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            frame = encode_record(payload)
            self._handle.write(frame)
            self.next_lsn = lsn + 1
            self._segment_bytes += len(frame)
            self._unsynced += 1
            self._event("wal_appends")
            if self.fsync == "always" or (
                self.fsync == "batch" and self._unsynced >= self.fsync_every
            ):
                self._fsync_now()
            return lsn

    def sync(self) -> None:
        """Force everything appended so far to stable storage."""
        with self._lock:
            if self.fsync != "off" and self._unsynced:
                self._fsync_now()

    def rotate(self) -> int:
        """Close the active segment, start a fresh one; the boundary lsn.

        Every record with ``lsn <=`` the returned boundary lives in the
        closed (or older) segments — the position a checkpoint covers.
        """
        with self._lock:
            if self.fsync != "off":
                self._fsync_now()
            self._handle.close()
            self._older_bytes += self._segment_bytes
            boundary = self.next_lsn - 1
            self._open_segment()
            return boundary

    def prune(self, upto_lsn: int) -> int:
        """Delete segments whose records are all ``<= upto_lsn``.

        A segment is prunable when the *next* segment starts at or
        below ``upto_lsn + 1`` (its own records all precede that
        start).  The active segment is never deleted.  Returns the
        number of segments removed.
        """
        with self._lock:
            segments = segment_files(self.directory)
            removed = 0
            for path, following in zip(segments, segments[1:]):
                if path == self._segment_path:
                    continue
                next_first = int(
                    following.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
                )
                if next_first <= upto_lsn + 1:
                    self._older_bytes -= path.stat().st_size
                    path.unlink()
                    removed += 1
            return removed

    def size_bytes(self) -> int:
        """Total on-disk bytes across all live segments (the gauge)."""
        with self._lock:
            return self._older_bytes + self._segment_bytes

    def last_lsn(self) -> int:
        """The highest lsn appended so far (0 when empty)."""
        with self._lock:
            return self.next_lsn - 1

    def close(self) -> None:
        """Flush, fsync (unless ``off``), and close the active segment."""
        with self._lock:
            if self._handle is None:
                return
            if self.fsync != "off" and self._unsynced:
                self._fsync_now()
            self._handle.close()
            self._handle = None
