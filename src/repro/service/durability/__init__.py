"""Durable serving: write-ahead log, checkpoints, crash recovery.

The serving tiers are exactly reproducible from their operation
streams — the paper's fixpoint semantics guarantees that replaying the
same ``register``/``unregister``/``batch`` sequence reconverges to the
same model — so durability reduces to three small, composable pieces:

* :mod:`.wal` — a CRC32-framed, length-prefixed append-only log of
  operations, with ``fsync`` policies ``always`` / ``batch`` / ``off``
  and segment rotation;
* :mod:`.checkpoint` — atomic write-tmp-rename snapshots of the full
  state at a log position, after which older log segments are pruned;
* :mod:`.manager` — the :class:`DurabilityManager` facade one serving
  tier owns: journaling, checkpoint cadence, the single-writer data
  directory lock, and the recovered-generation marker;
* :mod:`.recovery` — cold-start recovery for the single-process
  :class:`~repro.service.server.QueryService`: newest valid
  checkpoint, torn-tail-truncated WAL suffix replayed through the
  normal register/batch path, fingerprints verified.

The cluster router journals its control plane through the same
:class:`DurabilityManager` (see :mod:`repro.service.cluster.router`).
The recovery contract is documented in ``docs/DURABILITY.md``.
"""

from .checkpoint import CheckpointStore
from .manager import DataDirLocked, DurabilityManager, RecoveryError
from .recovery import RecoveryReport, recover_service
from .wal import FSYNC_MODES, WalRecord, WriteAheadLog, scan_segment, truncate_segment

__all__ = [
    "CheckpointStore",
    "DataDirLocked",
    "DurabilityManager",
    "FSYNC_MODES",
    "RecoveryError",
    "RecoveryReport",
    "WalRecord",
    "WriteAheadLog",
    "recover_service",
    "scan_segment",
    "truncate_segment",
]
