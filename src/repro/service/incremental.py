"""Counting/DRed maintenance of stratified models (the legacy engine).

**Demoted to the** ``maintenance="legacy"`` **bench baseline**: the
primary maintenance core is now the delta-stream circuit of
:mod:`repro.service.dbsp` (weighted Z-set deltas, one circuit pass per
update burst).  This engine is kept as the comparison baseline for
bench P12 and as a second implementation the differential fuzz suites
cross-check the circuit against.

The from-scratch engine (:mod:`repro.datalog.seminaive`) already works
delta-at-a-time; this module keeps the model **resident** and extends
the same discipline to updates, in the DBSP/DRed tradition:

* the prepared plan's component schedule (SCCs of the predicate graph
  in topological order) is walked once per update batch;
* **non-recursive** components maintain an exact derivation count per
  row ("counting" maintenance): each rule instance is enumerated
  exactly once via a first-changed-literal discipline, counts move up
  and down, and a row lives iff its count is positive or it is a base
  fact — deletions are O(affected instances), no re-derivation needed;
* **recursive** components use DRed: over-delete everything whose old
  derivation touched a deleted fact, re-derive rows with an alternative
  support (a per-row constrained query, not a full join), then close
  insertions semi-naively.

Negated literals always point at earlier components (stratification),
so by the time a component is maintained its negative dependencies are
final.  The *old* database view needed by over-deletion is reconstructed
from the net per-predicate deltas committed so far — no snapshot copy.

Consistency contract (tested property-style): after any interleaving of
insert/delete batches, :meth:`IncrementalEngine.model` equals
``seminaive_stratified`` run from scratch on the updated database.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..datalog.ast import Const, Literal, Rule, Var, eval_term
from ..datalog.database import Database
from ..datalog.grounding import _compare
from ..datalog.seminaive import DirectEvaluator
from ..datalog.stratification import NotStratifiedError
from ..relations.universe import FunctionRegistry
from ..relations.values import Value
from ..robustness import BudgetExceeded, EvaluationBudget, ReproError, fault_point
from .metrics import ViewMetrics
from .registry import Component, PreparedProgram

__all__ = ["IncrementalEngine", "IncrementalMaintenanceError"]

Row = Tuple[Value, ...]
FactDelta = Dict[str, Set[Row]]


class IncrementalMaintenanceError(ReproError):
    """An internal bookkeeping invariant broke.

    The view layer treats this as "fall back to full recomputation" —
    the incremental path is an optimisation, never a correctness risk.
    (A :class:`~repro.robustness.ReproError`, so the service maps it to
    a structured wire error when even the fallback cannot recover.)
    """

    code = "incremental-maintenance"


# Row-source directives interpreted by the variant walker.  For match
# steps: NEW = current state, OLD = state rewound by the batch's net
# deltas, BOTH = rows true before *and* after (unchanged), or an
# explicit ("rows", S) delta set.  For negtest steps the same tags test
# the ground atom against the corresponding view; ("in", S) instead
# *requires* membership in S — the trigger form, used when the negated
# atom's flip is exactly what fires the variant.
NEW = ("new",)
OLD = ("old",)
BOTH = ("both",)


class IncrementalEngine:
    """A resident stratified model maintained under fact deltas."""

    def __init__(
        self,
        prepared: PreparedProgram,
        database: Optional[Database] = None,
        registry: Optional[FunctionRegistry] = None,
        metrics: Optional[ViewMetrics] = None,
        max_rounds: int = 100_000,
        budget: Optional[EvaluationBudget] = None,
    ):
        if not prepared.stratified:
            raise NotStratifiedError(
                f"program {prepared.name!r} is not stratified; incremental "
                "maintenance requires the stratified fast path"
            )
        self.prepared = prepared
        self.registry = registry
        self.metrics = metrics if metrics is not None else ViewMetrics()
        self.max_rounds = max_rounds
        self.budget = budget
        self.edb = (database or Database()).copy()
        for predicate, row in prepared.seed_facts:
            if not self.edb.holds(predicate, *row):
                self.edb.add(predicate, *row)
        self.state = DirectEvaluator(registry)
        # Exact derivation counts, kept only for non-recursive components.
        self.support: Dict[str, Dict[Row, int]] = {}
        self._counting: Set[str] = {
            predicate
            for component in prepared.schedule
            if component.has_rules() and not component.recursive
            for predicate in component.predicates
        }
        self.initialize()

    # -- initial evaluation ---------------------------------------------------

    def initialize(self) -> None:
        """(Re)compute the model from scratch, establishing counts."""
        fault_point("incremental.initialize")
        self.state = DirectEvaluator(self.registry)
        self.support = {predicate: {} for predicate in self._counting}
        for predicate in self.edb.predicates():
            for row in self.edb.rows(predicate):
                self.state.add(predicate, row)
        for component in self.prepared.schedule:
            if not component.has_rules():
                continue
            if component.recursive:
                self._initial_recursive(component)
            else:
                self._initial_counting(component)

    def _initial_counting(self, component: Component) -> None:
        for rule, order in component.rules:
            for head_row in self._fire_variant(rule, order, {}):
                predicate = rule.head.predicate
                counts = self.support[predicate]
                counts[head_row] = counts.get(head_row, 0) + 1
                self.state.add(predicate, head_row)

    def _initial_recursive(self, component: Component) -> None:
        delta: FactDelta = {}
        for rule, order in component.rules:
            for row in self._fire_variant(rule, order, {}):
                if self.state.add(rule.head.predicate, row):
                    delta.setdefault(rule.head.predicate, set()).add(row)
        for _round in range(self.max_rounds):
            if not delta:
                return
            if self.budget is not None:
                self.budget.note_iteration(phase="incremental-initialize")
            next_delta: FactDelta = {}
            for rule, order in component.rules:
                for step, (kind, payload) in enumerate(order):
                    if kind != "match":
                        continue
                    predicate = payload.atom.predicate
                    if predicate not in component.predicates:
                        continue
                    rows = delta.get(predicate)
                    if not rows:
                        continue
                    directives = {step: ("rows", rows)}
                    for row in self._fire_variant(rule, order, directives):
                        if self.state.add(rule.head.predicate, row):
                            next_delta.setdefault(rule.head.predicate, set()).add(row)
            delta = next_delta
        raise BudgetExceeded(
            f"component {sorted(component.predicates)} did not converge "
            f"within {self.max_rounds} rounds",
            progress=self.budget.progress if self.budget is not None else None,
        )

    # -- the model ------------------------------------------------------------

    def model(self) -> Dict[str, FrozenSet[Row]]:
        """The resident model, predicate → rows (EDB and IDB alike)."""
        return {
            predicate: frozenset(rows)
            for predicate, rows in self.state.facts.items()
        }

    def rows(self, predicate: str) -> FrozenSet[Row]:
        """Current rows of one predicate."""
        return frozenset(self.state.facts.get(predicate, ()))

    # -- update batches -------------------------------------------------------

    def apply(
        self,
        inserts: Iterable[Tuple[str, Row]] = (),
        deletes: Iterable[Tuple[str, Row]] = (),
    ) -> Dict[str, object]:
        """Maintain the model under a batch of fact updates.

        Deletions are applied before insertions; updates that do not
        change the database (inserting a present fact, deleting an
        absent one) are ignored.  Returns a summary with the net
        per-predicate deltas actually applied to the model.

        The ``plus``/``minus`` sets in the summary are *net*: no row
        appears in both, and applying ``(rows - minus) | plus`` to the
        pre-batch model yields exactly the post-batch model.  The view
        layer feeds these sets to ``ModelSnapshot.apply_delta`` to keep
        the published read snapshot current without copying the model,
        so this net-ness is a load-bearing contract, not a convenience.
        """
        fault_point("incremental.apply")
        if self.budget is not None:
            self.budget.check(phase="incremental-apply")
        seed_minus: FactDelta = {}
        seed_plus: FactDelta = {}
        for predicate, row in deletes:
            row = tuple(row)
            if self.edb.holds(predicate, *row):
                self.edb.discard(predicate, *row)
                seed_minus.setdefault(predicate, set()).add(row)
        for predicate, row in inserts:
            row = tuple(row)
            if not self.edb.holds(predicate, *row):
                self.edb.add(predicate, *row)
                seed_plus.setdefault(predicate, set()).add(row)
                seed_minus.get(predicate, set()).discard(row)

        plus: FactDelta = {}
        minus: FactDelta = {}
        self._plus = plus
        self._minus = minus

        scheduled = set()
        for component in self.prepared.schedule:
            scheduled |= component.predicates
        # Predicates no rule mentions change the model directly.
        for predicate in set(seed_plus) | set(seed_minus):
            if predicate not in scheduled:
                for row in seed_minus.get(predicate, ()):
                    self._commit_remove(predicate, row)
                for row in seed_plus.get(predicate, ()):
                    self._commit_add(predicate, row)

        for component in self.prepared.schedule:
            if not component.has_rules():
                for predicate in component.predicates:
                    for row in seed_minus.get(predicate, ()):
                        self._commit_remove(predicate, row)
                    for row in seed_plus.get(predicate, ()):
                        self._commit_add(predicate, row)
                continue
            touched = any(
                plus.get(p) or minus.get(p) or seed_plus.get(p) or seed_minus.get(p)
                for p in self._body_predicates(component) | component.predicates
            )
            if not touched:
                continue
            fault_point("incremental.component")
            if self.budget is not None:
                self.budget.note_iteration(phase="incremental-maintain")
            if component.recursive:
                self._apply_recursive(component, seed_plus, seed_minus)
            else:
                self._apply_counting(component, seed_plus, seed_minus)

        self.metrics.bump("update_batches")
        self.metrics.bump("incremental_batches")
        self.metrics.bump(
            "inserts_applied", sum(len(rows) for rows in seed_plus.values())
        )
        self.metrics.bump(
            "deletes_applied", sum(len(rows) for rows in seed_minus.values())
        )
        delta_plus = sum(len(rows) for rows in plus.values())
        delta_minus = sum(len(rows) for rows in minus.values())
        self.metrics.bump("delta_plus_total", delta_plus)
        self.metrics.bump("delta_minus_total", delta_minus)
        return {
            "delta_plus": delta_plus,
            "delta_minus": delta_minus,
            "plus": {p: frozenset(rows) for p, rows in plus.items() if rows},
            "minus": {p: frozenset(rows) for p, rows in minus.items() if rows},
        }

    def apply_stream(self, batches) -> Dict[str, object]:
        """Absorb a burst of update batches with one merged summary.

        The legacy engine has no burst-level circuit: each batch runs
        its own counting/DRed pass, and the per-batch net deltas are
        folded into one net summary (a row inserted by one batch and
        deleted by a later one cancels).  This exists so the coalescing
        update queue can drain into either engine; the delta-stream
        engine (:class:`~repro.service.dbsp.DBSPEngine`) absorbs the
        same burst in a single pass, which is what bench P12 measures.
        """
        total_plus: FactDelta = {}
        total_minus: FactDelta = {}
        totals = {"delta_plus": 0, "delta_minus": 0}
        for inserts, deletes in batches:
            summary = self.apply(inserts=inserts, deletes=deletes)
            for predicate, rows in summary["minus"].items():
                plus = total_plus.get(predicate, set())
                for row in rows:
                    if row in plus:
                        plus.discard(row)
                    else:
                        total_minus.setdefault(predicate, set()).add(row)
            for predicate, rows in summary["plus"].items():
                minus = total_minus.get(predicate, set())
                for row in rows:
                    if row in minus:
                        minus.discard(row)
                    else:
                        total_plus.setdefault(predicate, set()).add(row)
        totals["delta_plus"] = sum(len(rows) for rows in total_plus.values())
        totals["delta_minus"] = sum(len(rows) for rows in total_minus.values())
        return {
            "delta_plus": totals["delta_plus"],
            "delta_minus": totals["delta_minus"],
            "batches": len(batches),
            "plus": {
                p: frozenset(rows) for p, rows in total_plus.items() if rows
            },
            "minus": {
                p: frozenset(rows) for p, rows in total_minus.items() if rows
            },
        }

    def _body_predicates(self, component: Component) -> Set[str]:
        predicates: Set[str] = set()
        for rule, _order in component.rules:
            for literal in rule.positive_literals() + rule.negative_literals():
                predicates.add(literal.atom.predicate)
        return predicates

    # -- net-delta bookkeeping ------------------------------------------------

    def _commit_add(self, predicate: str, row: Row) -> bool:
        if not self.state.add(predicate, row):
            return False
        minus = self._minus.get(predicate)
        if minus is not None and row in minus:
            minus.discard(row)
        else:
            self._plus.setdefault(predicate, set()).add(row)
        return True

    def _commit_remove(self, predicate: str, row: Row) -> bool:
        if not self.state.remove(predicate, row):
            return False
        plus = self._plus.get(predicate)
        if plus is not None and row in plus:
            plus.discard(row)
        else:
            self._minus.setdefault(predicate, set()).add(row)
        return True

    # -- counting maintenance (non-recursive components) ----------------------

    def _apply_counting(
        self, component: Component, seed_plus: FactDelta, seed_minus: FactDelta
    ) -> None:
        (predicate,) = component.predicates
        counts = self.support[predicate]
        touched: Set[Row] = set()
        touched |= seed_plus.get(predicate, set())
        touched |= seed_minus.get(predicate, set())

        for rule, order in component.rules:
            positions = [
                step for step, (kind, _p) in enumerate(order)
                if kind in ("match", "negtest")
            ]
            # Dying instances: first-changed literal at position k, every
            # earlier literal unchanged-true, later ones old-true.
            for index, step in enumerate(positions):
                kind, payload = order[step]
                body_pred = payload.atom.predicate
                if kind == "match":
                    trigger = self._minus.get(body_pred)
                    directive = ("rows", trigger) if trigger else None
                else:
                    trigger = self._plus.get(body_pred)
                    directive = ("in", trigger) if trigger else None
                if directive is None:
                    continue
                directives = {step: directive}
                for earlier in positions[:index]:
                    directives[earlier] = BOTH
                for later in positions[index + 1:]:
                    directives[later] = OLD
                for head_row in self._fire_variant(rule, order, directives):
                    counts[head_row] = counts.get(head_row, 0) - 1
                    touched.add(head_row)
            # Newborn instances: symmetric, against the new view.
            for index, step in enumerate(positions):
                kind, payload = order[step]
                body_pred = payload.atom.predicate
                if kind == "match":
                    trigger = self._plus.get(body_pred)
                    directive = ("rows", trigger) if trigger else None
                else:
                    trigger = self._minus.get(body_pred)
                    directive = ("in", trigger) if trigger else None
                if directive is None:
                    continue
                directives = {step: directive}
                for earlier in positions[:index]:
                    directives[earlier] = BOTH
                for later in positions[index + 1:]:
                    directives[later] = NEW
                for head_row in self._fire_variant(rule, order, directives):
                    counts[head_row] = counts.get(head_row, 0) + 1
                    touched.add(head_row)

        for row in touched:
            count = counts.get(row, 0)
            if count < 0:
                raise IncrementalMaintenanceError(
                    f"negative support count for {predicate}{row!r}"
                )
            if count == 0:
                counts.pop(row, None)
            present_now = count > 0 or self.edb.holds(predicate, *row)
            if present_now:
                self._commit_add(predicate, row)
            else:
                self._commit_remove(predicate, row)

    # -- DRed maintenance (recursive components) ------------------------------

    def _apply_recursive(
        self, component: Component, seed_plus: FactDelta, seed_minus: FactDelta
    ) -> None:
        # Each DRed phase is timed separately so the service-level phase
        # histograms can tell an over-deletion storm from a slow closure.
        with self.metrics.phase("overdelete"):
            overdeleted = self._overdelete(component, seed_minus)
            for predicate, rows in overdeleted.items():
                for row in rows:
                    self._commit_remove(predicate, row)
        with self.metrics.phase("rederive"):
            rederive_seeds = self._rederive(component, overdeleted)
        with self.metrics.phase("insert_close"):
            self._insert_close(component, seed_plus, rederive_seeds, overdeleted)

    def _overdelete(
        self, component: Component, seed_minus: FactDelta
    ) -> FactDelta:
        """DRed phase 1: everything whose old derivation is broken.

        The component's own facts are still untouched in ``state`` (=
        their old view); earlier components are rewound via the net
        deltas.  Removals are committed by the caller afterwards, in
        bulk, so every round matches against the full old view.
        """
        deleted: FactDelta = {}
        delta: FactDelta = {}
        for predicate in component.predicates:
            for row in seed_minus.get(predicate, ()):
                if row in self.state.facts.get(predicate, ()):
                    deleted.setdefault(predicate, set()).add(row)
                    delta.setdefault(predicate, set()).add(row)

        def collect(rule: Rule, order, directives) -> None:
            predicate = rule.head.predicate
            for head_row in self._fire_variant(rule, order, directives):
                if head_row not in self.state.facts.get(predicate, ()):
                    continue
                if head_row in deleted.get(predicate, ()):
                    continue
                deleted.setdefault(predicate, set()).add(head_row)
                next_delta.setdefault(predicate, set()).add(head_row)

        # Round 0: derivations broken by *earlier-component* changes — a
        # positive literal that lost its row, or a negated atom that
        # became true.  Everything else in the body is read at the old
        # view, so exactly the derivations that existed before fire.
        next_delta: FactDelta = {}
        for rule, order in component.rules:
            for step, (kind, payload) in enumerate(order):
                body_pred = payload.atom.predicate if kind in ("match", "negtest") else None
                if kind == "match" and body_pred not in component.predicates:
                    trigger = self._minus.get(body_pred)
                    if trigger:
                        directives = self._all_old(order, {step: ("rows", trigger)})
                        collect(rule, order, directives)
                elif kind == "negtest":
                    trigger = self._plus.get(body_pred)
                    if trigger:
                        directives = self._all_old(order, {step: ("in", trigger)})
                        collect(rule, order, directives)
        for predicate, rows in next_delta.items():
            delta.setdefault(predicate, set()).update(rows)

        for _round in range(self.max_rounds):
            if not delta:
                break
            if self.budget is not None:
                self.budget.note_iteration(phase="incremental-overdelete")
            next_delta = {}
            for rule, order in component.rules:
                for step, (kind, payload) in enumerate(order):
                    if kind != "match":
                        continue
                    body_pred = payload.atom.predicate
                    if body_pred not in component.predicates:
                        continue
                    rows = delta.get(body_pred)
                    if not rows:
                        continue
                    directives = self._all_old(order, {step: ("rows", rows)})
                    collect(rule, order, directives)
            delta = next_delta
        else:
            raise BudgetExceeded(
                f"over-deletion of {sorted(component.predicates)} did not "
                f"converge within {self.max_rounds} rounds",
                progress=self.budget.progress if self.budget is not None else None,
            )
        total = sum(len(rows) for rows in deleted.values())
        if total:
            self.metrics.bump("overdeleted_total", total)
        return deleted

    def _all_old(self, order, overrides) -> Dict[int, Tuple]:
        directives = dict(overrides)
        for step, (kind, _payload) in enumerate(order):
            if kind in ("match", "negtest") and step not in directives:
                directives[step] = OLD
        return directives

    def _rederive(
        self, component: Component, overdeleted: FactDelta
    ) -> FactDelta:
        """DRed phase 2: restore over-deleted rows with alternative
        support — base facts still in the EDB, or a derivation from the
        post-deletion state (a per-row constrained query)."""
        seeds: FactDelta = {}
        rederived = 0
        for predicate, rows in overdeleted.items():
            for row in rows:
                restored = self.edb.holds(predicate, *row)
                if not restored:
                    for rule, order in component.rules:
                        if rule.head.predicate != predicate:
                            continue
                        if self._derivable(rule, order, row):
                            restored = True
                            break
                if restored:
                    self._commit_add(predicate, row)
                    seeds.setdefault(predicate, set()).add(row)
                    rederived += 1
        if rederived:
            self.metrics.bump("rederived_total", rederived)
        return seeds

    def _derivable(self, rule: Rule, order, row: Row) -> bool:
        """Does the rule derive exactly ``row`` from the current state?"""
        binding: Dict[Var, Value] = {}
        for arg, value in zip(rule.head.args, row):
            if isinstance(arg, Var):
                if arg in binding and binding[arg] != value:
                    return False
                binding[arg] = value
            elif isinstance(arg, Const):
                if arg.value != value:
                    return False
            # FuncTerm head args: checked against the produced row below.
        for head_row in self._fire_variant(rule, order, {}, initial=binding):
            if head_row == row:
                return True
        return False

    def _insert_close(
        self,
        component: Component,
        seed_plus: FactDelta,
        rederive_seeds: FactDelta,
        overdeleted: FactDelta,
    ) -> None:
        """DRed phase 3: close insertions semi-naively over the new view."""
        delta: FactDelta = {}
        for predicate, rows in rederive_seeds.items():
            delta.setdefault(predicate, set()).update(rows)
        for predicate in component.predicates:
            for row in seed_plus.get(predicate, ()):
                if self._commit_add(predicate, row):
                    delta.setdefault(predicate, set()).add(row)

        def produce(rule: Rule, order, directives, sink: FactDelta) -> None:
            predicate = rule.head.predicate
            for head_row in self._fire_variant(rule, order, directives):
                if self._commit_add(predicate, head_row):
                    sink.setdefault(predicate, set()).add(head_row)

        # Round 0 triggers from earlier components: a positive literal
        # that gained rows, or a negated atom that became false.
        for rule, order in component.rules:
            for step, (kind, payload) in enumerate(order):
                if kind == "match":
                    body_pred = payload.atom.predicate
                    if body_pred in component.predicates:
                        continue
                    trigger = self._plus.get(body_pred)
                    if trigger:
                        produce(rule, order, {step: ("rows", trigger)}, delta)
                elif kind == "negtest":
                    trigger = self._minus.get(payload.atom.predicate)
                    if trigger:
                        produce(rule, order, {step: ("in", trigger)}, delta)

        for _round in range(self.max_rounds):
            if not delta:
                return
            if self.budget is not None:
                self.budget.note_iteration(phase="incremental-insert-close")
            next_delta: FactDelta = {}
            for rule, order in component.rules:
                for step, (kind, payload) in enumerate(order):
                    if kind != "match":
                        continue
                    body_pred = payload.atom.predicate
                    if body_pred not in component.predicates:
                        continue
                    rows = delta.get(body_pred)
                    if not rows:
                        continue
                    produce(rule, order, {step: ("rows", rows)}, next_delta)
            delta = next_delta
        raise BudgetExceeded(
            f"insertion closure of {sorted(component.predicates)} did not "
            f"converge within {self.max_rounds} rounds",
            progress=self.budget.progress if self.budget is not None else None,
        )

    # -- the variant walker ---------------------------------------------------

    def _old_holds(self, predicate: str, row: Row) -> bool:
        if row in self._minus.get(predicate, ()):
            return True
        return (
            row in self.state.facts.get(predicate, ())
            and row not in self._plus.get(predicate, ())
        )

    def _match_rows(self, literal: Literal, binding, directive):
        predicate = literal.atom.predicate
        tag = directive[0]
        if tag == "rows":
            return directive[1]
        base = self.state._candidates(
            literal, binding, self.state.facts.get(predicate, set())
        )
        if tag == "new":
            return base
        plus = self._plus.get(predicate, ())
        filtered = [row for row in base if row not in plus] if plus else list(base)
        if tag == "both":
            return filtered
        if tag == "old":
            minus = self._minus.get(predicate)
            if minus:
                filtered.extend(minus)
            return filtered
        raise AssertionError(directive)

    def _neg_passes(self, predicate: str, row: Row, directive) -> bool:
        tag = directive[0]
        if tag == "in":
            return row in directive[1]
        if tag == "new":
            return row not in self.state.facts.get(predicate, ())
        if tag == "old":
            return not self._old_holds(predicate, row)
        if tag == "both":
            return (
                row not in self.state.facts.get(predicate, ())
                and row not in self._minus.get(predicate, ())
            )
        raise AssertionError(directive)

    def _fire_variant(
        self,
        rule: Rule,
        order,
        directives: Dict[int, Tuple],
        initial: Optional[Dict[Var, Value]] = None,
    ) -> List[Row]:
        """All head rows derivable under per-step row-source directives.

        Each leaf of the walk is one rule *instance* (a full body
        binding) — the unit the counting path tallies.
        """
        self.metrics.bump("rules_fired")
        produced: List[Row] = []
        registry = self.registry
        state = self.state

        def walk(step: int, binding: Dict[Var, Value]) -> None:
            if step == len(order):
                head_row = tuple(
                    eval_term(arg, binding, registry) for arg in rule.head.args
                )
                if all(value is not None for value in head_row):
                    produced.append(head_row)
                return
            kind, payload = order[step]
            if kind == "match":
                literal: Literal = payload
                directive = directives.get(step, NEW)
                rows = self._match_rows(literal, binding, directive)
                for extended in state._match(literal, binding, list(rows)):
                    walk(step + 1, extended)
                return
            if kind == "assign":
                mode, comparison = payload
                if mode == "assign-left":
                    variable, expr = comparison.left, comparison.right
                else:
                    variable, expr = comparison.right, comparison.left
                value = eval_term(expr, binding, registry)
                if value is None:
                    return
                extended = dict(binding)
                extended[variable] = value
                walk(step + 1, extended)
                return
            if kind == "test":
                comparison = payload
                left = eval_term(comparison.left, binding, registry)
                right = eval_term(comparison.right, binding, registry)
                if left is not None and right is not None and _compare(
                    comparison.op, left, right
                ):
                    walk(step + 1, binding)
                return
            if kind == "negtest":
                literal = payload
                row = tuple(
                    eval_term(arg, binding, registry) for arg in literal.atom.args
                )
                if any(value is None for value in row):
                    return
                directive = directives.get(step, NEW)
                if self._neg_passes(literal.atom.predicate, row, directive):
                    walk(step + 1, binding)
                return
            raise AssertionError(kind)

        walk(0, dict(initial) if initial else {})
        return produced
