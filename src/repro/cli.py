"""Command-line interface.

::

    repro datalog  PROGRAM.dl [--facts FACTS.dl] [--semantics valid] ...
    repro algebra  PROGRAM.alg [--facts FACTS.dl] [--dialect algebra=] ...
    repro translate --to datalog PROGRAM.alg
    repro translate --to algebra PROGRAM.dl
    repro check    PROGRAM.dl            (safety + stratification report)
    repro serve    [--socket PATH]       (incremental query service)
    repro serve    --shards N --socket PATH   (sharded serving tier)

Programs are text files in the package's concrete syntaxes
(:mod:`repro.datalog.parser`, :mod:`repro.lang.parser`).  Facts files are
Datalog fact lists (``move(a, b).``); for the algebra side each predicate
becomes a database relation via the standard encoding.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .core.algebra_to_datalog import translate_program, translation_registry
from .core.datalog_to_algebra import datalog_to_algebra
from .core.encoding import database_to_environment
from .core.programs import Dialect
from .core.valid_eval import valid_evaluate
from .core.well_defined import check_well_defined
from .datalog.ast import Program
from .datalog.database import Database
from .datalog.engine import SEMANTICS, run
from .datalog.parser import parse_program
from .datalog.pretty import pretty_program
from .datalog.safety import is_safe_rule
from .datalog.stratification import is_stratified, stratify
from .lang.parser import parse_algebra_program
from .lang.pretty import pretty_algebra_program
from .relations.relation import Relation
from .relations.values import format_value, sorted_values
from .robustness import EvaluationBudget, ReproError

__all__ = ["main"]

_DIALECTS = {
    "algebra": Dialect.ALGEBRA,
    "ifp-algebra": Dialect.IFP_ALGEBRA,
    "algebra=": Dialect.ALGEBRA_EQ,
    "ifp-algebra=": Dialect.IFP_ALGEBRA_EQ,
}


def _load_facts(path: Optional[str]) -> Database:
    database = Database()
    if path is None:
        return database
    program = parse_program(Path(path).read_text())
    for rule in program.rules:
        if not rule.is_fact():
            raise SystemExit(f"facts file {path} contains a non-fact rule: {rule!r}")
        database.add(rule.head.predicate, *(arg.value for arg in rule.head.args))
    return database


def _split_program_and_facts(program: Program) -> tuple:
    """Ground facts written inside a program file become database facts."""
    rules = []
    database = Database()
    for rule in program.rules:
        if rule.is_fact():
            database.add(rule.head.predicate, *(arg.value for arg in rule.head.args))
        else:
            rules.append(rule)
    return Program(tuple(rules), name=program.name), database


def _merge(left: Database, right: Database) -> Database:
    merged = left.copy()
    for predicate, row in right:
        merged.add(predicate, *row)
    return merged


def _print_rows(label: str, rows) -> None:
    rendered = sorted(
        "(" + ", ".join(format_value(v) for v in row) + ")" for row in rows
    )
    print(f"  {label}: {' '.join(rendered) if rendered else '-'}")


def _budget_from_args(args: argparse.Namespace) -> Optional[EvaluationBudget]:
    """An :class:`EvaluationBudget` from the one-shot resource flags."""
    deadline_ms = getattr(args, "deadline_ms", None)
    max_steps = getattr(args, "max_steps", None)
    max_facts = getattr(args, "max_facts", None)
    if deadline_ms is None and max_steps is None and max_facts is None:
        return None
    return EvaluationBudget.from_millis(
        deadline_ms, max_steps=max_steps, max_facts=max_facts
    )


def _print_repro_error(exc: ReproError) -> int:
    """Surface a governed failure in the service wire shape, exit 1.

    The same ``error <code> <Type>: <message>`` line the protocol
    emits, so scripts can treat one-shot runs and the server alike —
    and no traceback ever reaches the terminal for a budget trip.
    """
    message = str(exc).replace("\n", " ")
    print(f"error {exc.code} {type(exc).__name__}: {message}")
    return 1


def _cmd_datalog(args: argparse.Namespace) -> int:
    source = Path(args.program).read_text()
    program, inline_facts = _split_program_and_facts(
        parse_program(source, name=args.program)
    )
    database = _merge(inline_facts, _load_facts(args.facts))
    try:
        result = run(
            program,
            database,
            semantics=args.semantics,
            registry=translation_registry(),
            max_rounds=args.max_rounds,
            max_atoms=args.max_atoms,
            budget=_budget_from_args(args),
        )
    except ReproError as exc:
        return _print_repro_error(exc)
    predicates = args.query or sorted(program.idb_predicates())
    for predicate in predicates:
        print(f"{predicate}:")
        _print_rows("true", result.true_rows(predicate))
        undefined = result.undefined_rows(predicate)
        if undefined:
            _print_rows("undefined", undefined)
    if not result.is_total():
        print("note: the model is three-valued (some atoms undefined)")
    return 0


def _load_relations(path: Optional[str]) -> dict:
    """An algebra-side facts file: ground set definitions in the algebra
    syntax, e.g. ``MOVE = {[a, b], [b, c]};``."""
    if path is None:
        return {}
    from .core.evaluator import evaluate

    facts_program = parse_algebra_program(Path(path).read_text())
    environment = {}
    for definition in facts_program.definitions:
        if definition.params:
            raise SystemExit(
                f"relations file {path}: {definition.name} is not a ground set"
            )
        value = evaluate(
            definition.body, environment, registry=translation_registry(),
            program=facts_program,
        )
        environment[definition.name] = value.renamed(definition.name)
    return environment


def _cmd_algebra(args: argparse.Namespace) -> int:
    source = Path(args.program).read_text()
    program = parse_algebra_program(
        source, dialect=_DIALECTS[args.dialect], name=args.program
    )
    environment = _load_relations(args.facts)
    for name in program.database_relations:
        environment.setdefault(name, Relation([], name=name))
    report = check_well_defined(
        program, environment, registry=translation_registry()
    )
    result = report.result
    for definition in program.to_constant_system().definitions:
        name = definition.name
        members = " ".join(
            format_value(v) for v in sorted_values(result.true[name])
        )
        print(f"{name} = {{{members}}}")
        if result.undefined[name]:
            undef = " ".join(
                format_value(v) for v in sorted_values(result.undefined[name])
            )
            print(f"  undefined members: {undef}")
    print(f"well-definedness: {report.verdict.value}")
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    source = Path(args.program).read_text()
    if args.to == "datalog":
        program = parse_algebra_program(
            source, dialect=_DIALECTS[args.dialect], name=args.program
        )
        translation = translate_program(program)
        print(pretty_program(translation.program))
        print()
        for name, predicate in sorted(translation.predicate_of.items()):
            print(f"% {name} -> {predicate}")
    else:
        program, facts = _split_program_and_facts(
            parse_program(source, name=args.program)
        )
        if facts.fact_count():
            print(
                "% note: ground facts in the input belong to the database "
                "and are not translated",
                file=sys.stderr,
            )
        translation = datalog_to_algebra(program)
        print(pretty_algebra_program(translation.program))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    source = Path(args.program).read_text()
    program, _facts = _split_program_and_facts(
        parse_program(source, name=args.program)
    )
    exit_code = 0
    for rule in program.rules:
        if not is_safe_rule(rule):
            print(f"UNSAFE: {rule!r}")
            exit_code = 1
    if is_stratified(program):
        strata = stratify(program)
        height = max(strata.values(), default=0)
        print(f"stratified: yes ({height + 1} strata)")
        for level in range(height + 1):
            members = sorted(p for p, s in strata.items() if s == level)
            print(f"  stratum {level}: {' '.join(members)}")
    else:
        print("stratified: no (evaluate under wellfounded/valid semantics)")
    if exit_code == 0:
        print("safety: all rules safe (Definition 4.1)")
    return exit_code


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    """The sharded serving tier: N worker processes behind one router."""
    import asyncio
    import signal

    from .robustness import RecoveryError
    from .service.cluster import ClusterClient, ClusterRouter
    from .service.prometheus import PrometheusExporter

    if not args.socket:
        raise SystemExit("--shards requires --socket PATH (the front door)")
    worker_options = {
        "cache_capacity": args.cache_capacity,
        "max_rounds": args.max_rounds,
        "max_atoms": args.max_atoms,
        "deadline_ms": args.deadline_ms,
        "read_mode": args.read_mode,
        "compactor": args.compactor,
        "maintenance": args.maintenance,
        "coalesce": args.coalesce,
        "semiring": args.semiring,
        "max_concurrent": args.max_concurrent,
        "max_request_bytes": args.max_request_bytes,
    }

    def cluster_snapshot():
        # The exporter thread scrapes the router through its own front
        # door, so the file always shows the same rollup clients see.
        with ClusterClient(args.socket, timeout=30.0) as client:
            return client.metrics()

    async def main() -> None:
        router = ClusterRouter(
            args.socket,
            shards=args.shards,
            worker_options=worker_options,
            heartbeat_interval=args.heartbeat_interval,
            data_dir=args.data_dir,
            fsync=args.fsync,
            checkpoint_every=args.checkpoint_every,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or unsupported platform
        try:
            await router.start()
        except BaseException:
            await router.stop()
            raise
        if args.data_dir and router.last_recovery is not None:
            report = router.last_recovery
            print(
                f"cluster recovered generation {report['generation']} "
                f"from {args.data_dir}: {report['views_restored']} "
                f"view(s), {report['replayed_records']} WAL record(s) "
                f"replayed",
                file=sys.stderr,
            )
        print(
            f"serving {args.shards} shard(s) on unix socket {args.socket} "
            f"(framed protocol)",
            file=sys.stderr,
        )
        exporter = None
        if args.metrics_prometheus:
            exporter = PrometheusExporter(
                cluster_snapshot,
                args.metrics_prometheus,
                interval=args.metrics_interval,
            )
            exporter.start()
        serving = asyncio.ensure_future(router.serve_forever())
        stopping = asyncio.ensure_future(stop.wait())
        try:
            # Either the server dies on its own or a signal asks for a
            # graceful stop; the ``finally`` takes the final checkpoint
            # through router.stop() in both cases.
            await asyncio.wait(
                {serving, stopping}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (serving, stopping):
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
            for signum in installed:
                loop.remove_signal_handler(signum)
            if exporter is not None:
                exporter.stop()
            await router.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    except RecoveryError as exc:
        return _print_repro_error(exc)
    return 0


def _install_stop_signals(on_stop) -> dict:
    """Route SIGTERM/SIGINT to ``on_stop`` (graceful shutdown).

    Returns the previous handlers so the caller can restore them; an
    empty dict when not on the main thread (the test harness drives
    these commands from worker threads, where signal installation is
    forbidden — and unnecessary).
    """
    import signal
    import threading

    if threading.current_thread() is not threading.main_thread():
        return {}
    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, on_stop)
    return previous


def _restore_signals(previous: dict) -> None:
    import signal

    for signum, handler in previous.items():
        try:
            signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover - teardown race
            pass


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from .robustness import RecoveryError
    from .service import QueryService, serve_stream, serve_unix_socket
    from .service.prometheus import PrometheusExporter

    if args.shards > 1:
        return _cmd_serve_cluster(args)

    try:
        service = QueryService(
            function_registry=translation_registry(),
            cache_capacity=args.cache_capacity,
            max_rounds=args.max_rounds,
            max_atoms=args.max_atoms,
            deadline_ms=args.deadline_ms,
            read_mode=args.read_mode,
            compactor=args.compactor,
            maintenance=args.maintenance,
            coalesce=args.coalesce,
            semiring=args.semiring,
            data_dir=args.data_dir,
            fsync=args.fsync,
            checkpoint_every=args.checkpoint_every,
        )
    except RecoveryError as exc:
        return _print_repro_error(exc)
    if args.data_dir and service.last_recovery is not None:
        report = service.last_recovery
        print(
            f"recovered generation {report.generation} from {args.data_dir}: "
            f"{report.views_restored} view(s), "
            f"{report.replayed_records} WAL record(s) replayed",
            file=sys.stderr,
        )
    exporter = None
    if args.metrics_prometheus:
        exporter = PrometheusExporter(
            service.metrics_snapshot,
            args.metrics_prometheus,
            interval=args.metrics_interval,
        )
        exporter.start()
    stop_event = threading.Event()

    def _socket_stop(_signum, _frame):
        # Graceful: the accept loop notices, drains, and returns —
        # then the ``finally`` below takes the final checkpoint.
        stop_event.set()

    def _stream_stop(_signum, _frame):
        # Interrupt the blocking stdin read; caught below.
        raise KeyboardInterrupt

    previous = _install_stop_signals(
        _socket_stop if args.socket else _stream_stop
    )
    try:
        if args.socket:
            print(f"serving on unix socket {args.socket}", file=sys.stderr)
            serve_unix_socket(
                service,
                args.socket,
                max_connections=args.max_connections,
                max_concurrent=args.max_concurrent,
                max_request_bytes=args.max_request_bytes,
                stop_event=stop_event,
            )
        else:
            try:
                serve_stream(
                    service,
                    sys.stdin,
                    print,
                    max_request_bytes=args.max_request_bytes,
                )
            except KeyboardInterrupt:
                pass  # SIGTERM/SIGINT: fall through to the graceful close
    finally:
        _restore_signals(previous)
        # Stop the exporter and background compactor on the way out,
        # and flush the durability plane (final checkpoint).
        if exporter is not None:
            exporter.stop()
        service.close()
    if args.metrics_snapshot:
        # The final observability snapshot, one JSON document on
        # stdout — what a supervisor scrapes when the server exits.
        print(json.dumps(service.metrics_snapshot(), sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Algebras with recursion vs deduction — the Beeri–Milo SIGMOD'93 "
            "reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # ``repro run`` is an alias for ``repro datalog`` — the one-shot
    # evaluation path, resource-governed by the same budget flags.
    for name, help_text in (
        ("datalog", "run a deductive program"),
        ("run", "run a deductive program (alias for datalog)"),
    ):
        p_dl = sub.add_parser(name, help=help_text)
        p_dl.add_argument("program")
        p_dl.add_argument("--facts", help="extra facts file")
        p_dl.add_argument("--semantics", choices=SEMANTICS, default="valid")
        p_dl.add_argument(
            "--query", action="append", help="predicate(s) to print"
        )
        p_dl.add_argument("--max-rounds", type=int, default=10_000)
        p_dl.add_argument("--max-atoms", type=int, default=1_000_000)
        p_dl.add_argument(
            "--deadline-ms",
            type=float,
            default=None,
            help="wall-clock deadline for the evaluation (default: none)",
        )
        p_dl.add_argument(
            "--max-steps",
            type=int,
            default=None,
            help="derivation-step budget (default: unlimited)",
        )
        p_dl.add_argument(
            "--max-facts",
            type=int,
            default=None,
            help="derived-fact budget (default: unlimited)",
        )
        p_dl.set_defaults(func=_cmd_datalog)

    p_alg = sub.add_parser("algebra", help="run an algebra= program")
    p_alg.add_argument("program")
    p_alg.add_argument("--facts", help="facts file defining the database relations")
    p_alg.add_argument("--dialect", choices=sorted(_DIALECTS), default="ifp-algebra=")
    p_alg.set_defaults(func=_cmd_algebra)

    p_tr = sub.add_parser("translate", help="translate between the paradigms")
    p_tr.add_argument("program")
    p_tr.add_argument("--to", choices=["datalog", "algebra"], required=True)
    p_tr.add_argument("--dialect", choices=sorted(_DIALECTS), default="ifp-algebra=")
    p_tr.set_defaults(func=_cmd_translate)

    p_chk = sub.add_parser("check", help="safety and stratification report")
    p_chk.add_argument("program")
    p_chk.set_defaults(func=_cmd_check)

    p_srv = sub.add_parser(
        "serve",
        help="incremental query service (line protocol on stdin or a socket)",
    )
    p_srv.add_argument("--socket", help="serve on this unix socket instead of stdin")
    p_srv.add_argument(
        "--max-connections",
        type=int,
        default=None,
        help="stop after N socket connections (default: serve forever)",
    )
    p_srv.add_argument("--cache-capacity", type=int, default=256)
    p_srv.add_argument("--max-rounds", type=int, default=10_000)
    p_srv.add_argument("--max-atoms", type=int, default=1_000_000)
    p_srv.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="wall-clock deadline per expensive request (default: none)",
    )
    p_srv.add_argument(
        "--max-request-bytes",
        type=int,
        default=None,
        help="reject request lines longer than this (default: unlimited)",
    )
    p_srv.add_argument(
        "--max-concurrent",
        type=int,
        default=8,
        help="socket connections served concurrently (default: 8)",
    )
    p_srv.add_argument(
        "--maintenance",
        choices=("dbsp", "legacy"),
        default="dbsp",
        help=(
            "view maintenance engine: the delta-stream circuit "
            "(default) or the counting/DRed legacy baseline"
        ),
    )
    p_srv.add_argument(
        "--coalesce",
        type=int,
        default=None,
        metavar="N",
        help=(
            "absorb up to N queued update batches per circuit pass "
            "(default: 64 under dbsp, 1 under legacy)"
        ),
    )
    p_srv.add_argument(
        "--semiring",
        default="bool",
        metavar="NAME",
        help=(
            "default annotation semiring for registered views: bool "
            "(set semantics, default), naturals (bag/derivation "
            "counting), tropical (min-plus costs), or why "
            "(lineage witnesses served on explain lines); individual "
            "registrations can override with --semiring=<name>"
        ),
    )
    p_srv.add_argument(
        "--read-mode",
        choices=("snapshot", "locked"),
        default="snapshot",
        help=(
            "query path: lock-free published-snapshot reads (default) "
            "or the locked per-view path"
        ),
    )
    p_srv.add_argument(
        "--compactor",
        choices=("off", "on-publish", "thread"),
        default="on-publish",
        help=(
            "snapshot delta-chain compaction: flatten on every Nth "
            "publish (default), from a background thread, or never"
        ),
    )
    p_srv.add_argument(
        "--data-dir",
        metavar="PATH",
        default=None,
        help=(
            "durable serving: journal every registration and update "
            "batch to a write-ahead log under PATH, checkpoint "
            "periodically, and recover the full serving state on a "
            "cold start (default: in-memory only)"
        ),
    )
    p_srv.add_argument(
        "--fsync",
        choices=("always", "batch", "off"),
        default="batch",
        help=(
            "WAL flush policy: fsync every record (survives power "
            "loss), every few records (default), or never (page cache "
            "only — still survives kill -9, not power loss)"
        ),
    )
    p_srv.add_argument(
        "--checkpoint-every",
        type=int,
        default=256,
        metavar="N",
        help="checkpoint after every N journaled records (default: 256)",
    )
    p_srv.add_argument(
        "--metrics-snapshot",
        action="store_true",
        help="dump the service metrics snapshot as JSON on exit",
    )
    p_srv.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "run the sharded serving tier: N worker processes behind an "
            "asyncio router on --socket (default: 1 = single process)"
        ),
    )
    p_srv.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        help="seconds between worker health checks (cluster mode)",
    )
    p_srv.add_argument(
        "--metrics-prometheus",
        metavar="PATH",
        default=None,
        help=(
            "periodically export metrics in Prometheus text format to "
            "this file (atomic replace)"
        ),
    )
    p_srv.add_argument(
        "--metrics-interval",
        type=float,
        default=5.0,
        help="seconds between Prometheus exports (default: 5)",
    )
    p_srv.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
