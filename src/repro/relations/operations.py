"""Free-function forms of the algebra operators.

These mirror the methods on :class:`~repro.relations.relation.Relation`
but accept plain iterables too, and add the derived operators of
Example 3 under their paper names.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .relation import Relation
from .values import Tup, Value

__all__ = [
    "union",
    "difference",
    "product",
    "select",
    "map_",
    "project",
    "intersection",
    "exclusive_or",
    "big_union",
    "join",
]


def _as_relation(value) -> Relation:
    if isinstance(value, Relation):
        return value
    return Relation(value)


def union(left, right) -> Relation:
    """``∪`` — set union."""
    return _as_relation(left).union(_as_relation(right))


def difference(left, right) -> Relation:
    """``−`` — set difference (the paper's only negative operator)."""
    return _as_relation(left).difference(_as_relation(right))


def product(left, right) -> Relation:
    """``×`` — cartesian product producing pairs."""
    return _as_relation(left).product(_as_relation(right))


def select(relation, test: Callable[[Value], bool]) -> Relation:
    """``σ_test`` — selection by a boolean-valued function."""
    return _as_relation(relation).select(test)


def map_(relation, func: Callable[[Value], Value]) -> Relation:
    """``MAP_f`` — restructure every member."""
    return _as_relation(relation).map(func)


def project(relation, index: int) -> Relation:
    """``π_i`` — shorthand for ``MAP_{x.i}``."""
    return _as_relation(relation).project(index)


def intersection(left, right) -> Relation:
    """``∩`` — Example 3: ``x ∩ y = x − (x − y)``."""
    return _as_relation(left).intersection(_as_relation(right))


def exclusive_or(left, right) -> Relation:
    """``⊗`` — Example 3: ``(x − y) ∪ (y − x)``."""
    return _as_relation(left).exclusive_or(_as_relation(right))


def big_union(relations: Iterable) -> Relation:
    """Union of a family of relations (used to spell out IFP)."""
    result = Relation.empty()
    for relation in relations:
        result = result.union(_as_relation(relation))
    return result


def join(left, right, on: "tuple[int, int]" = (2, 1)) -> Relation:
    """Relational join of two relations of tuples, derived from the
    paper's primitives: ``π(σ(left × right))``.

    ``on = (i, j)`` equates component ``i`` of the left member with
    component ``j`` of the right member; the result concatenates the two
    tuples with the right-hand join component dropped.  The default joins
    binary relations in the transitive-closure pattern.

    >>> tc_step = join(move, tc)           # [x,y] ⋈ [y,z] → [x,y,z]
    """
    left_index, right_index = on
    left_relation, right_relation = _as_relation(left), _as_relation(right)
    members = []
    for left_member in left_relation.items:
        if not isinstance(left_member, Tup) or len(left_member) < left_index:
            continue
        key = left_member.component(left_index)
        for right_member in right_relation.items:
            if not isinstance(right_member, Tup) or len(right_member) < right_index:
                continue
            if right_member.component(right_index) != key:
                continue
            combined = left_member.items + tuple(
                item
                for position, item in enumerate(right_member.items, start=1)
                if position != right_index
            )
            members.append(Tup(combined))
    return Relation(members)
