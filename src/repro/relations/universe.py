"""Bounded active-domain machinery.

The paper deliberately works over possibly-infinite domains: "we allow
functions on the domains, such as addition on numbers, hence the fixed
point operator may generate infinite sets" (Section 3.1), and membership
is undecidable in general (Proposition 6.3).  Any executable reproduction
must therefore bound the portion of the initial model it materialises.

This module makes the bound an explicit object: a :class:`Universe` is a
finite set of values obtained by closing a seed set (the database's active
domain) under a chosen collection of domain functions up to a depth bound.
Engines that quantify over "all elements" quantify over a universe, and
answers that could change with a larger universe are reported as
``UNDEFINED`` rather than silently clipped.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from .values import Value, is_value, sorted_values

__all__ = ["DomainFunction", "FunctionRegistry", "standard_registry", "Universe"]


class DomainFunction:
    """A named (possibly partial) function on values, e.g. ``succ``.

    The underlying callable may return ``None`` or raise ``ValueError`` /
    ``TypeError`` / ``ZeroDivisionError`` / ``IndexError`` to signal that
    it is undefined on the given arguments (partiality); such applications
    simply produce no value.
    """

    __slots__ = ("name", "arity", "func")

    def __init__(self, name: str, arity: int, func: Callable[..., Optional[Value]]):
        if arity < 0:
            raise ValueError("arity must be non-negative")
        self.name = name
        self.arity = arity
        self.func = func

    def apply(self, args: Sequence[Value]) -> Optional[Value]:
        """Apply to ``args``; return None when undefined on them."""
        if len(args) != self.arity:
            raise ValueError(
                f"function {self.name}/{self.arity} applied to {len(args)} arguments"
            )
        try:
            result = self.func(*args)
        except (ValueError, TypeError, ZeroDivisionError, IndexError, OverflowError):
            return None
        if result is None:
            return None
        if not is_value(result):
            raise TypeError(
                f"domain function {self.name} returned a non-value: {result!r}"
            )
        return result

    def __repr__(self) -> str:
        return f"DomainFunction({self.name}/{self.arity})"


class FunctionRegistry:
    """A namespace of domain functions usable in MAP expressions and rules."""

    def __init__(self) -> None:
        self._functions: Dict[str, DomainFunction] = {}

    def register(
        self, name: str, arity: int, func: Callable[..., Optional[Value]]
    ) -> DomainFunction:
        """Register ``func`` under ``name``; replaces any previous binding."""
        entry = DomainFunction(name, arity, func)
        self._functions[name] = entry
        return entry

    def get(self, name: str) -> DomainFunction:
        """Look up a function by name."""
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"unknown domain function: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> Tuple[str, ...]:
        """Registered function names, sorted."""
        return tuple(sorted(self._functions))

    def copy(self) -> "FunctionRegistry":
        """An independent copy of the registry."""
        clone = FunctionRegistry()
        clone._functions = dict(self._functions)
        return clone


def _int_only(func: Callable[..., Value]) -> Callable[..., Optional[Value]]:
    def wrapper(*args: Value) -> Optional[Value]:
        booleans = any(isinstance(arg, bool) for arg in args)
        if booleans or not all(isinstance(arg, int) for arg in args):
            return None
        return func(*args)

    return wrapper


def standard_registry() -> FunctionRegistry:
    """The registry used throughout the examples and tests.

    Includes the arithmetic the paper leans on: ``succ`` (nat successor),
    ``pred`` (partial), ``add2`` (the ``+2`` of Example 3), ``add``,
    ``mul``, and ``double``.
    """
    registry = FunctionRegistry()
    registry.register("succ", 1, _int_only(lambda n: n + 1))
    registry.register("pred", 1, _int_only(lambda n: n - 1 if n > 0 else None))
    registry.register("add2", 1, _int_only(lambda n: n + 2))
    registry.register("double", 1, _int_only(lambda n: n * 2))
    registry.register("add", 2, _int_only(lambda a, b: a + b))
    registry.register("mul", 2, _int_only(lambda a, b: a * b))
    return registry


class Universe:
    """A finite, explicit value universe.

    Construct directly from values, or via :meth:`closure` which closes a
    seed set under registry functions to a depth bound — the executable
    stand-in for the paper's infinite initial model.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Value] = ()):
        self._items = frozenset(items)
        for item in self._items:
            if not is_value(item):
                raise TypeError(f"not a value: {item!r}")

    @classmethod
    def closure(
        cls,
        seed: Iterable[Value],
        registry: FunctionRegistry,
        functions: Sequence[str] = (),
        depth: int = 0,
        max_size: int = 100_000,
    ) -> "Universe":
        """Close ``seed`` under the named functions, ``depth`` rounds.

        Raises ``RuntimeError`` if the closure exceeds ``max_size`` values
        (the finite-budget analogue of a non-terminating construction).
        """
        current = set(seed)
        selected = [registry.get(name) for name in functions]
        for _round in range(depth):
            frontier = set()
            for function in selected:
                if function.arity == 0:
                    result = function.apply(())
                    if result is not None and result not in current:
                        frontier.add(result)
                    continue
                for args in itertools.product(current, repeat=function.arity):
                    result = function.apply(args)
                    if result is not None and result not in current:
                        frontier.add(result)
            if not frontier:
                break
            current |= frontier
            if len(current) > max_size:
                raise RuntimeError(
                    f"universe closure exceeded {max_size} values at depth {_round + 1}"
                )
        return cls(current)

    @property
    def items(self) -> frozenset:
        """The values, as a frozenset."""
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(sorted_values(self._items))

    def __contains__(self, value: Value) -> bool:
        return value in self._items

    def union(self, other: "Universe") -> "Universe":
        """Union of two universes."""
        return Universe(self._items | other._items)

    def __repr__(self) -> str:
        preview = ", ".join(str(v) for v in list(self)[:8])
        suffix = ", ..." if len(self) > 8 else ""
        return f"Universe({len(self)} values: {preview}{suffix})"
