"""The ``Relation`` class: an immutable named set of values.

A database in the paper (Section 3) is "a collection of named sets (every
set is a database 'relation')".  ``Relation`` wraps a frozenset of values
with a name and offers the generic operations of the paper's algebra as
methods.  All operations return new relations; nothing is mutated.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from .values import FSet, Tup, Value, format_value, is_value, sorted_values, tup

__all__ = ["Relation"]


class Relation:
    """An immutable set of complex-object values, optionally named.

    >>> move = Relation.of(tup(Atom('a'), Atom('b')), name='MOVE')
    >>> len(move)
    1
    """

    __slots__ = ("_items", "_name")

    def __init__(self, items: Iterable[Value] = (), name: Optional[str] = None):
        frozen = frozenset(items)
        for item in frozen:
            if not is_value(item):
                raise TypeError(f"not a valid value: {item!r}")
        self._items = frozen
        self._name = name

    @classmethod
    def of(cls, *items: Value, name: Optional[str] = None) -> "Relation":
        """Build a relation from its members: ``Relation.of(a, b, c)``."""
        return cls(items, name=name)

    @classmethod
    def empty(cls, name: Optional[str] = None) -> "Relation":
        """The EMPTY set of the paper's specification."""
        return cls((), name=name)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple], name: Optional[str] = None) -> "Relation":
        """Build a binary relation from Python pairs (convenience)."""
        return cls((tup(first, second) for first, second in pairs), name=name)

    @property
    def name(self) -> Optional[str]:
        """The relation's name, if any."""
        return self._name

    @property
    def items(self) -> frozenset:
        """The members, as a frozenset."""
        return self._items

    def renamed(self, name: str) -> "Relation":
        """The same members under a new name."""
        return Relation(self._items, name=name)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Value]:
        return iter(sorted_values(self._items))

    def __contains__(self, value: Value) -> bool:
        return value in self._items

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Relation):
            return self._items == other._items
        if isinstance(other, (set, frozenset)):
            return self._items == frozenset(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._items)

    # -- the paper's algebra operators --------------------------------------

    def union(self, other: "Relation") -> "Relation":
        """Set union (``∪``)."""
        return Relation(self._items | _items_of(other))

    def difference(self, other: "Relation") -> "Relation":
        """Set difference (``−``)."""
        return Relation(self._items - _items_of(other))

    def intersection(self, other: "Relation") -> "Relation":
        """Derived operator of Example 3: ``x ∩ y = x − (x − y)``."""
        return Relation(self._items & _items_of(other))

    def exclusive_or(self, other: "Relation") -> "Relation":
        """Derived operator of Example 3: ``(x − y) ∪ (y − x)``."""
        return Relation(self._items ^ _items_of(other))

    def product(self, other: "Relation") -> "Relation":
        """Cartesian product; members become pairs ``[x, y]``."""
        return Relation(
            tup(left, right) for left in self._items for right in _items_of(other)
        )

    def select(self, test: Callable[[Value], bool]) -> "Relation":
        """Selection by a boolean-valued test function (``σ_test``)."""
        return Relation(item for item in self._items if test(item))

    def map(self, func: Callable[[Value], Value]) -> "Relation":
        """Restructure every member (``MAP_f``)."""
        return Relation(func(item) for item in self._items)

    def project(self, index: int) -> "Relation":
        """``π_i``: a shorthand for ``MAP_{x.i}`` (paper, Example 3)."""
        return Relation(
            item.component(index) for item in self._items if isinstance(item, Tup)
        )

    def insert(self, value: Value) -> "Relation":
        """INS of the SET specification."""
        return Relation(self._items | {value})

    # -- operator sugar ------------------------------------------------------

    __or__ = union
    __sub__ = difference
    __and__ = intersection
    __xor__ = exclusive_or
    __mul__ = product

    # -- conversions ---------------------------------------------------------

    def as_fset(self) -> FSet:
        """The relation as a first-class set *value* (for nesting)."""
        return FSet(self._items)

    def __repr__(self) -> str:
        body = ", ".join(format_value(item) for item in self)
        label = f"{self._name} = " if self._name else ""
        return f"{label}{{{body}}}"


def _items_of(other: object) -> frozenset:
    if isinstance(other, Relation):
        return other._items
    if isinstance(other, (set, frozenset)):
        return frozenset(other)
    raise TypeError(f"expected a Relation or set, got {type(other).__name__}")
