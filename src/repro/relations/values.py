"""Immutable complex-object values.

The paper's data model (Section 2) is the complex-object model: database
relations are *sets* whose members may be atomic values, tuples, or again
sets, to any depth.  This module defines the Python-level value universe
used throughout the reproduction:

* symbolic atoms (``Atom``) — uninterpreted constants such as the game
  positions of Example 3;
* Python ``int``, ``str`` and ``bool`` — the imported ``nat``/``bool``
  domains of Section 2.1;
* ``Tup`` — tuples, the result of the cartesian product operator;
* ``FSet`` — finite sets as first-class values (nested relations).

All values are immutable and hashable, so relations can be plain Python
sets of values.  A deterministic total order (`value_key`) is provided so
results can be printed reproducibly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

__all__ = [
    "Atom",
    "Tup",
    "FSet",
    "Value",
    "tup",
    "fset",
    "is_value",
    "value_key",
    "sort_of",
    "format_value",
    "sorted_values",
]


@dataclass(frozen=True, slots=True)
class Atom:
    """A symbolic, uninterpreted constant (e.g. a game position ``a``)."""

    name: str

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"Atom name must be a non-empty string, got {self.name!r}")

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Tup:
    """An ordered tuple of values (components are 1-indexed, as in the paper)."""

    items: tuple

    def __post_init__(self) -> None:
        if not isinstance(self.items, tuple):
            object.__setattr__(self, "items", tuple(self.items))
        for item in self.items:
            _check_value(item)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def component(self, index: int) -> "Value":
        """Return the ``index``-th component, 1-indexed (``x.i`` in the paper)."""
        if not 1 <= index <= len(self.items):
            raise IndexError(
                f"tuple of width {len(self.items)} has no component {index}"
            )
        return self.items[index - 1]

    def __repr__(self) -> str:
        return "[" + ", ".join(format_value(item) for item in self.items) + "]"


@dataclass(frozen=True, slots=True)
class FSet:
    """A finite set as a first-class value (a nested relation)."""

    items: frozenset

    def __post_init__(self) -> None:
        if not isinstance(self.items, frozenset):
            object.__setattr__(self, "items", frozenset(self.items))
        for item in self.items:
            _check_value(item)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(sorted_values(self.items))

    def __contains__(self, value: "Value") -> bool:
        return value in self.items

    def __repr__(self) -> str:
        return "{" + ", ".join(format_value(item) for item in self) + "}"


Value = Union[Atom, Tup, FSet, int, str, bool]

_SCALAR_TYPES = (int, str, bool)


def is_value(candidate: object) -> bool:
    """Return True if ``candidate`` belongs to the value universe."""
    return isinstance(candidate, (Atom, Tup, FSet)) or isinstance(
        candidate, _SCALAR_TYPES
    )


def _check_value(candidate: object) -> None:
    if not is_value(candidate):
        raise TypeError(f"not a valid complex-object value: {candidate!r}")


def tup(*items: Value) -> Tup:
    """Build a tuple value: ``tup(a, b)`` is the pair ``[a, b]``."""
    return Tup(tuple(items))


def fset(*items: Value) -> FSet:
    """Build a set value: ``fset(1, 2)`` is ``{1, 2}``."""
    return FSet(frozenset(items))


def value_key(value: Value):
    """A deterministic total-order key over heterogeneous values.

    Values are ordered first by a type rank (bool < int < str < atom <
    tuple < set), then structurally.  Used only for reproducible printing
    and iteration order; not semantically meaningful.
    """
    if isinstance(value, bool):
        return (0, value)
    if isinstance(value, int):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    if isinstance(value, Atom):
        return (3, value.name)
    if isinstance(value, Tup):
        return (4, len(value.items), tuple(value_key(item) for item in value.items))
    if isinstance(value, FSet):
        return (
            5,
            len(value.items),
            tuple(sorted(value_key(item) for item in value.items)),
        )
    raise TypeError(f"not a value: {value!r}")


def sorted_values(values: Iterable[Value]) -> list:
    """Sort an iterable of values deterministically."""
    return sorted(values, key=value_key)


def sort_of(value: Value):
    """Infer the sort (type descriptor) of a value.

    Sorts are plain data: ``'bool' | 'int' | 'str' | 'atom'`` for scalars,
    ``('tup', (s1, ..., sn))`` for tuples and ``('set', s)`` for sets.  The
    sort of an empty set is ``('set', None)`` (polymorphic empty set).
    """
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, str):
        return "str"
    if isinstance(value, Atom):
        return "atom"
    if isinstance(value, Tup):
        return ("tup", tuple(sort_of(item) for item in value.items))
    if isinstance(value, FSet):
        member_sorts = {sort_of(item) for item in value.items}
        if not member_sorts:
            return ("set", None)
        if len(member_sorts) == 1:
            return ("set", member_sorts.pop())
        return ("set", "mixed")
    raise TypeError(f"not a value: {value!r}")


def format_value(value: Value) -> str:
    """Render a value the way the paper writes it."""
    if isinstance(value, (Atom, Tup, FSet)):
        return repr(value)
    if isinstance(value, str):
        return f"'{value}'"
    return repr(value)
