"""Complex-object values, relations, and bounded universes.

This is the data substrate under everything else: the paper's databases
are "collections of named sets" of complex-object values (Section 3).
"""

from .relation import Relation
from .universe import DomainFunction, FunctionRegistry, Universe, standard_registry
from .values import (
    Atom,
    FSet,
    Tup,
    Value,
    format_value,
    fset,
    is_value,
    sort_of,
    sorted_values,
    tup,
    value_key,
)

__all__ = [
    "Atom",
    "FSet",
    "Tup",
    "Value",
    "Relation",
    "Universe",
    "DomainFunction",
    "FunctionRegistry",
    "standard_registry",
    "format_value",
    "fset",
    "is_value",
    "sort_of",
    "sorted_values",
    "tup",
    "value_key",
]
