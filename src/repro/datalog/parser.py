"""A concrete syntax for deductive programs.

Grammar (Prolog-flavoured)::

    program     := (rule | comment)*
    rule        := atom [ ':-' body ] '.'
    body        := bodyitem (',' bodyitem)*
    bodyitem    := 'not' atom | atom | term OP term
    atom        := name [ '(' term (',' term)* ')' ]
    term        := VARIABLE | INTEGER | STRING | name [ '(' args ')' ]
                 | '[' args ']'          (tuple value / tuple term)
    OP          := '=' | '!=' | '<' | '<=' | '>' | '>='
    comment     := '%' ... end of line

Lower-case names in term position denote symbolic :class:`Atom` constants
unless applied to arguments, in which case they are function terms
(resolved against a registry at evaluation time).  Upper-case names are
variables.  ``[a, b]`` builds a tuple — ground brackets make a ``Tup``
value, brackets with variables make a ``tuple(...)`` function term.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..relations.values import Atom, Tup, Value
from .ast import (
    Comparison,
    Const,
    FuncTerm,
    Literal,
    PredAtom,
    Program,
    Rule,
    Term,
    Var,
)

__all__ = ["ParseError", "parse_program", "parse_rule", "parse_term"]


class ParseError(ValueError):
    """Syntax error in a deductive program text."""

    def __init__(self, message: str, position: Optional[Tuple[int, int]] = None):
        if position:
            line, column = position
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>%[^\n]*)
  | (?P<arrow>:-)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(),.\[\]])
  | (?P<int>-?\d+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<name>[a-zA-Z_][a-zA-Z0-9_]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int
    column: int


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    line, line_start = 1, 0
    index = 0
    while index < len(source):
        match = _TOKEN_RE.match(source, index)
        if not match:
            column = index - line_start + 1
            raise ParseError(f"unexpected character {source[index]!r}", (line, column))
        kind = match.lastgroup or ""
        text = match.group()
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, text, line, index - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = index + text.rfind("\n") + 1
        index = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, text: str) -> _Token:
        token = self._next()
        if token.text != text:
            raise ParseError(
                f"expected {text!r}, found {token.text!r}", (token.line, token.column)
            )
        return token

    def at_end(self) -> bool:
        """Have all tokens been consumed?"""
        return self._index >= len(self._tokens)

    # -- terms ---------------------------------------------------------------

    def parse_term(self) -> Term:
        """Parse one term."""
        token = self._next()
        if token.kind == "int":
            return Const(int(token.text))
        if token.kind == "string":
            inner = token.text[1:-1]
            return Const(inner.replace("\\'", "'").replace("\\\\", "\\"))
        if token.text == "[":
            items: List[Term] = []
            if self._peek() and self._peek().text != "]":
                items.append(self.parse_term())
                while self._peek() and self._peek().text == ",":
                    self._next()
                    items.append(self.parse_term())
            self._expect("]")
            if all(isinstance(item, Const) for item in items):
                return Const(Tup(tuple(item.value for item in items)))
            return FuncTerm("tuple", tuple(items))
        if token.kind == "name":
            if token.text[0].isupper() or token.text[0] == "_":
                return Var(token.text)
            nxt = self._peek()
            if nxt and nxt.text == "(":
                self._next()
                args: List[Term] = []
                if self._peek() and self._peek().text != ")":
                    args.append(self.parse_term())
                    while self._peek() and self._peek().text == ",":
                        self._next()
                        args.append(self.parse_term())
                self._expect(")")
                return FuncTerm(token.text, tuple(args))
            if token.text == "true":
                return Const(True)
            if token.text == "false":
                return Const(False)
            return Const(Atom(token.text))
        raise ParseError(
            f"expected a term, found {token.text!r}", (token.line, token.column)
        )

    # -- atoms and body items --------------------------------------------------

    def parse_atom(self) -> PredAtom:
        """Parse one predicate atom."""
        token = self._next()
        if token.kind != "name" or token.text[0].isupper():
            raise ParseError(
                f"expected a predicate name, found {token.text!r}",
                (token.line, token.column),
            )
        args: List[Term] = []
        nxt = self._peek()
        if nxt and nxt.text == "(":
            self._next()
            if self._peek() and self._peek().text != ")":
                args.append(self.parse_term())
                while self._peek() and self._peek().text == ",":
                    self._next()
                    args.append(self.parse_term())
            self._expect(")")
        return PredAtom(token.text, tuple(args))

    def parse_body_item(self):
        """Parse one body item (literal or comparison)."""
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in rule body")
        if token.kind == "name" and token.text == "not":
            self._next()
            return Literal(self.parse_atom(), False)
        # Could be an atom or a comparison; parse a term and look ahead.
        saved = self._index
        try:
            left = self.parse_term()
        except ParseError:
            left = None
        nxt = self._peek()
        if left is not None and nxt is not None and nxt.kind == "op":
            operator = self._next().text
            right = self.parse_term()
            return Comparison(operator, left, right)
        # Not a comparison — rewind and parse as a positive atom.
        self._index = saved
        return Literal(self.parse_atom(), True)

    # -- rules ------------------------------------------------------------------

    def parse_rule(self) -> Rule:
        """Parse one rule."""
        head = self.parse_atom()
        token = self._peek()
        body: List = []
        if token and token.text == ":-":
            self._next()
            body.append(self.parse_body_item())
            while self._peek() and self._peek().text == ",":
                self._next()
                body.append(self.parse_body_item())
        self._expect(".")
        return Rule(head, tuple(body))

    def parse_program(self, name: Optional[str] = None) -> Program:
        """Parse rules until end of input."""
        rules: List[Rule] = []
        while not self.at_end():
            rules.append(self.parse_rule())
        return Program(tuple(rules), name=name)


def parse_term(source: str) -> Term:
    """Parse a single term, e.g. ``parse_term('succ(X)')``."""
    parser = _Parser(_tokenize(source))
    term = parser.parse_term()
    if not parser.at_end():
        raise ParseError("trailing input after term")
    return term


def parse_rule(source: str) -> Rule:
    """Parse a single rule, e.g. ``parse_rule('win(X) :- move(X,Y), not win(Y).')``."""
    parser = _Parser(_tokenize(source))
    rule = parser.parse_rule()
    if not parser.at_end():
        raise ParseError("trailing input after rule")
    return rule


def parse_program(source: str, name: Optional[str] = None) -> Program:
    """Parse a whole program (``%`` comments allowed)."""
    return _Parser(_tokenize(source)).parse_program(name)
