"""Pretty-printing deductive programs back into parseable syntax.

``parse_program(pretty_program(p))`` round-trips for every program whose
constants are atoms, integers, strings, booleans or tuples thereof.
"""

from __future__ import annotations

from typing import List

from ..relations.values import Atom, FSet, Tup, Value
from .ast import (
    Comparison,
    Const,
    FuncTerm,
    Literal,
    PredAtom,
    Program,
    Rule,
    Term,
    Var,
)

__all__ = ["pretty_term", "pretty_atom", "pretty_rule", "pretty_program", "pretty_value"]


def pretty_value(value: Value) -> str:
    """Render a value in parseable syntax."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if isinstance(value, Atom):
        return value.name
    if isinstance(value, Tup):
        return "[" + ", ".join(pretty_value(item) for item in value.items) + "]"
    if isinstance(value, FSet):
        # Set values have no parseable literal syntax; render informatively.
        return "{" + ", ".join(pretty_value(item) for item in value) + "}"
    raise TypeError(f"not a value: {value!r}")


def pretty_term(term: Term) -> str:
    """Render a term."""
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        return pretty_value(term.value)
    if term.name == "tuple":
        return "[" + ", ".join(pretty_term(arg) for arg in term.args) + "]"
    inner = ", ".join(pretty_term(arg) for arg in term.args)
    return f"{term.name}({inner})"


def pretty_atom(atom: PredAtom) -> str:
    """Render a predicate atom."""
    if not atom.args:
        return atom.predicate
    inner = ", ".join(pretty_term(arg) for arg in atom.args)
    return f"{atom.predicate}({inner})"


def _pretty_body_item(item) -> str:
    if isinstance(item, Literal):
        rendered = pretty_atom(item.atom)
        return rendered if item.positive else f"not {rendered}"
    if isinstance(item, Comparison):
        return f"{pretty_term(item.left)} {item.op} {pretty_term(item.right)}"
    raise TypeError(f"not a body item: {item!r}")


def pretty_rule(rule: Rule) -> str:
    """Render a rule."""
    head = pretty_atom(rule.head)
    if not rule.body:
        return f"{head}."
    body = ", ".join(_pretty_body_item(item) for item in rule.body)
    return f"{head} :- {body}."


def pretty_program(program: Program) -> str:
    """Render a whole program."""
    lines: List[str] = []
    if program.name:
        lines.append(f"% {program.name}")
    lines.extend(pretty_rule(rule) for rule in program.rules)
    return "\n".join(lines)
