"""Direct semi-naive evaluation of stratified programs.

The main engine grounds first and solves propositionally — the right
architecture for the non-stratified semantics.  For *stratified*
programs, the classical alternative evaluates rules directly over the
database with delta iteration and never materialises a ground program.
This module implements that route (tuple-at-a-time joins driven by the
same binding-order analysis the grounder uses) as both a production
fast-path and the ablation partner of benchmark P05.

Negation is handled stratum by stratum: by the time a negative literal
is consulted, its predicate is fully evaluated, so ``not q(ā)`` is a
simple lookup.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from typing import Mapping

from ..robustness import BudgetExceeded, EvaluationBudget, fault_point
from ..relations.universe import FunctionRegistry
from ..relations.values import Value
from .ast import Comparison, Const, FuncTerm, Literal, Program, Rule, Var, eval_term
from .database import Database
from .grounding import binding_order, compiled_binding_order, _compare
from .stratification import stratify

__all__ = ["DirectEvaluator", "seminaive_stratified"]


class DirectEvaluator:
    """Indexed fact store + rule-firing machinery for direct evaluation.

    Shared by :func:`seminaive_stratified` (from-scratch fixpoints) and
    the service layer's incremental maintenance, which extends the same
    delta discipline to deletions."""

    def __init__(self, registry: Optional[FunctionRegistry]):
        self.registry = registry
        self.facts: Dict[str, Set[Tuple[Value, ...]]] = {}
        self.index: Dict[str, Dict[Tuple[int, Value], Set[Tuple[Value, ...]]]] = {}

    def rows(self, predicate: str) -> Set[Tuple[Value, ...]]:
        """Current rows of a predicate."""
        return self.facts.setdefault(predicate, set())

    def add(self, predicate: str, row: Tuple[Value, ...]) -> bool:
        """Add a row; True when new (updates the index)."""
        rows = self.rows(predicate)
        if row in rows:
            return False
        rows.add(row)
        index = self.index.setdefault(predicate, {})
        for position, value in enumerate(row):
            index.setdefault((position, value), set()).add(row)
        return True

    def remove(self, predicate: str, row: Tuple[Value, ...]) -> bool:
        """Remove a row; True when it was present (updates the index)."""
        rows = self.facts.get(predicate)
        if rows is None or row not in rows:
            return False
        rows.discard(row)
        index = self.index.get(predicate)
        if index:
            for position, value in enumerate(row):
                bucket = index.get((position, value))
                if bucket is not None:
                    bucket.discard(row)
                    if not bucket:
                        del index[(position, value)]
        return True

    def _candidates(self, literal: Literal, binding: Dict[Var, Value], rows):
        index = self.index.get(literal.atom.predicate)
        if not index:
            return rows
        best = rows
        for position, arg in enumerate(literal.atom.args):
            value = None
            if isinstance(arg, Const):
                value = arg.value
            elif isinstance(arg, Var) and arg in binding:
                value = binding[arg]
            if value is None:
                continue
            bucket = index.get((position, value))
            if bucket is None:
                return ()
            if len(bucket) < len(best):
                best = bucket
        return best

    def _match(self, literal: Literal, binding: Dict[Var, Value], rows):
        args = literal.atom.args
        for row in rows:
            if len(row) != len(args):
                continue
            extended = dict(binding)
            ok = True
            deferred = []
            for arg, value in zip(args, row):
                if isinstance(arg, Var):
                    if arg in extended:
                        if extended[arg] != value:
                            ok = False
                            break
                    else:
                        extended[arg] = value
                elif isinstance(arg, Const):
                    if arg.value != value:
                        ok = False
                        break
                else:
                    deferred.append((arg, value))
            if not ok:
                continue
            for term, value in deferred:
                if eval_term(term, extended, self.registry) != value:
                    ok = False
                    break
            if ok:
                yield extended

    def fire(
        self,
        rule: Rule,
        order,
        delta_literal: Optional[int],
        delta: Dict[str, Set[Tuple[Value, ...]]],
        budget: Optional[EvaluationBudget] = None,
    ) -> List[Tuple[Value, ...]]:
        """All head rows derivable with the given delta discipline."""
        produced: List[Tuple[Value, ...]] = []
        if budget is not None:
            budget.tick(phase="seminaive")

        def walk(step: int, binding: Dict[Var, Value], match_seen: int) -> None:
            if step == len(order):
                head_row = tuple(
                    eval_term(arg, binding, self.registry) for arg in rule.head.args
                )
                if all(value is not None for value in head_row):
                    if budget is not None:
                        budget.tick()
                    produced.append(head_row)
                return
            kind, payload = order[step]
            if kind == "match":
                literal: Literal = payload
                if match_seen == delta_literal:
                    rows = delta.get(literal.atom.predicate, set())
                else:
                    rows = self._candidates(
                        literal, binding, self.rows(literal.atom.predicate)
                    )
                for extended in self._match(literal, binding, list(rows)):
                    walk(step + 1, extended, match_seen + 1)
                return
            if kind == "assign":
                mode, comparison = payload
                if mode == "assign-left":
                    variable, expr = comparison.left, comparison.right
                else:
                    variable, expr = comparison.right, comparison.left
                value = eval_term(expr, binding, self.registry)
                if value is None:
                    return
                extended = dict(binding)
                extended[variable] = value
                walk(step + 1, extended, match_seen)
                return
            if kind == "test":
                comparison = payload
                left = eval_term(comparison.left, binding, self.registry)
                right = eval_term(comparison.right, binding, self.registry)
                if left is not None and right is not None and _compare(
                    comparison.op, left, right
                ):
                    walk(step + 1, binding, match_seen)
                return
            if kind == "negtest":
                literal = payload
                row = tuple(
                    eval_term(arg, binding, self.registry)
                    for arg in literal.atom.args
                )
                if any(value is None for value in row):
                    return
                if row not in self.rows(literal.atom.predicate):
                    walk(step + 1, binding, match_seen)
                return
            raise AssertionError(kind)

        walk(0, {}, 0)
        return produced


# Backwards-compatible alias for the pre-service private name.
_DirectEvaluator = DirectEvaluator


def seminaive_stratified(
    program: Program,
    database: Database,
    registry: Optional[FunctionRegistry] = None,
    max_rounds: int = 100_000,
    strata: Optional[Mapping[str, int]] = None,
    budget: Optional[EvaluationBudget] = None,
    semiring=None,
) -> Dict[str, FrozenSet[Tuple[Value, ...]]]:
    """Evaluate a stratified program directly (no grounding).

    Returns predicate → derived rows (IDB and EDB alike).  Raises
    :class:`~repro.datalog.stratification.NotStratifiedError` on
    non-stratified input and :class:`~repro.robustness.BudgetExceeded`
    if a stratum exceeds ``max_rounds`` (function symbols without
    guards).  ``budget`` adds deadline/step/fact governance on top of
    the round cap.

    ``strata`` lets a caller that has already stratified the program
    (a registered prepared plan) skip re-deriving the schedule.

    ``semiring`` (a non-boolean :class:`~repro.semiring.Semiring`)
    delegates to the annotated fixpoint and returns its *support* —
    identical to the boolean model for the shipped semirings, but
    subject to their convergence conditions.  Callers that need the
    annotations themselves use
    :func:`~repro.datalog.annotated.annotated_model` directly.
    """
    if semiring is not None and semiring.name != "bool":
        from .annotated import annotated_model

        maps = annotated_model(
            program,
            database,
            semiring,
            registry=registry,
            strata=strata,
            max_rounds=min(max_rounds, 10_000),
            budget=budget,
        )
        return {
            predicate: frozenset(rows) for predicate, rows in maps.items()
        }
    if strata is None:
        strata = stratify(program)
    height = max(strata.values(), default=0)

    state = DirectEvaluator(registry)
    for predicate in database.predicates():
        for row in database.rows(predicate):
            state.add(predicate, row)

    for level in range(height + 1):
        level_rules = [
            (rule, compiled_binding_order(rule))
            for rule in program.rules
            if strata[rule.head.predicate] == level
        ]
        # Naive first round.
        delta: Dict[str, Set[Tuple[Value, ...]]] = {}
        for rule, order in level_rules:
            for row in state.fire(rule, order, None, {}, budget):
                if state.add(rule.head.predicate, row):
                    if budget is not None:
                        budget.charge_facts()
                    delta.setdefault(rule.head.predicate, set()).add(row)
        # Semi-naive rounds.
        for _round in range(max_rounds):
            fault_point("seminaive.round")
            if budget is not None:
                budget.note_iteration(stratum=level, phase="seminaive")
            if not delta:
                break
            next_delta: Dict[str, Set[Tuple[Value, ...]]] = {}
            for rule, order in level_rules:
                match_count = sum(1 for kind, _p in order if kind == "match")
                for delta_literal in range(match_count):
                    for row in state.fire(rule, order, delta_literal, delta, budget):
                        if state.add(rule.head.predicate, row):
                            if budget is not None:
                                budget.charge_facts()
                            next_delta.setdefault(rule.head.predicate, set()).add(row)
            delta = next_delta
        else:
            raise BudgetExceeded(
                f"stratum {level} did not converge within {max_rounds} rounds",
                progress=budget.progress if budget is not None else None,
            )

    return {
        predicate: frozenset(rows) for predicate, rows in state.facts.items()
    }
