"""Well-founded semantics via the alternating fixpoint.

Van Gelder–Ross–Schlipf [24 in the paper].  The alternating fixpoint
computes an increasing chain of *underestimates* ``T_i`` (certainly true)
and a decreasing chain of *overestimates* ``O_i`` (possibly true):

    ``O_i``  = least model where ``not q`` holds iff ``q ∉ T_i``
    ``T_{i+1}`` = least model where ``not q`` holds iff ``q ∉ O_i``

At the limit, true = ``T``, false = complement of ``O``, undefined =
``O − T``.  The paper's valid computation (Section 2.2) follows the same
alternation; ``repro.datalog.semantics.valid`` implements it in the
paper's own vocabulary and the two are cross-checked in tests.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from ...robustness import EvaluationBudget
from ..grounding import GroundProgram
from .fixpoint import least_model_with_oracle
from .interpretations import Interpretation

__all__ = ["well_founded_model", "alternating_fixpoint_trace"]


def alternating_fixpoint_trace(
    program: GroundProgram, budget: Optional[EvaluationBudget] = None
) -> List[Tuple[FrozenSet[int], FrozenSet[int]]]:
    """The sequence of ``(T_i, O_i)`` pairs until stabilization."""
    trace: List[Tuple[FrozenSet[int], FrozenSet[int]]] = []
    true_set: FrozenSet[int] = frozenset()
    while True:
        if budget is not None:
            budget.note_iteration(phase="alternating-fixpoint")
        over = least_model_with_oracle(
            program.rules, lambda atom: atom not in true_set, budget
        )
        trace.append((true_set, over))
        next_true = least_model_with_oracle(
            program.rules, lambda atom: atom not in over, budget
        )
        if next_true == true_set:
            return trace
        true_set = next_true


def well_founded_model(
    program: GroundProgram, budget: Optional[EvaluationBudget] = None
) -> Interpretation:
    """The well-founded (three-valued) model of a ground program."""
    trace = alternating_fixpoint_trace(program, budget)
    true_set, over = trace[-1]
    false_set = frozenset(range(program.atom_count)) - over
    return Interpretation.three_valued(true_set, false_set)
