"""Least fixpoints of ground programs.

The workhorse primitive is :func:`least_model_with_oracle`: the least set
of atoms closed under the rules, where a negative literal ``not q`` is
satisfied iff the supplied *negation oracle* admits ``q``.  Every other
semantics in this package is built from calls to this primitive with
different oracles:

* minimal model of a positive program — no negative literals at all;
* stratified semantics — oracle reads the completed lower strata;
* well-founded / valid — alternating oracles (Sections 2.2 / 5 of the
  paper);
* stable models — oracle reads the candidate model (the Gelfond–Lifschitz
  reduct).

Both a naive and a dependency-counting semi-naive implementation are
provided; they are cross-checked in tests and compared in benchmark P2.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set

from ...robustness import EvaluationBudget
from ..grounding import GroundProgram, GroundRule

__all__ = [
    "least_model_with_oracle",
    "least_model_naive",
    "minimal_model",
    "PositiveProgramRequired",
]


class PositiveProgramRequired(ValueError):
    """Raised when a minimal model is requested for a program with negation."""


def least_model_with_oracle(
    rules: Sequence[GroundRule],
    negation_oracle: Callable[[int], bool],
    budget: Optional[EvaluationBudget] = None,
) -> FrozenSet[int]:
    """Dependency-counting (semi-naive) least model.

    A rule contributes its head once all positive body atoms are derived
    and every negative body atom ``q`` satisfies ``negation_oracle(q)``
    (read: "``not q`` holds").  The oracle must be static for the duration
    of the call.  Runs in time linear in total rule size.

    ``budget`` (optional) is charged one step per rule admitted and per
    derived atom, and its deadline/cancellation are honoured.
    """
    if budget is not None:
        budget.check(phase="least-model")
    watchers: Dict[int, List[int]] = defaultdict(list)
    missing: List[int] = []
    queue: List[int] = []
    derived: Set[int] = set()

    active_rules: List[GroundRule] = []
    for rule in rules:
        if all(negation_oracle(atom) for atom in rule.neg):
            active_rules.append(rule)
    if budget is not None:
        budget.tick(len(active_rules))

    for index, rule in enumerate(active_rules):
        missing.append(len(rule.pos))
        if not rule.pos:
            if rule.head not in derived:
                derived.add(rule.head)
                queue.append(rule.head)
        else:
            for atom in rule.pos:
                watchers[atom].append(index)
    if budget is not None:
        budget.charge_facts(len(derived))

    # A rule mentioning the same atom twice in pos gets multiple watcher
    # entries and its counter decremented per occurrence; counters start at
    # len(pos) so this stays consistent.
    while queue:
        atom = queue.pop()
        for rule_index in watchers.get(atom, ()):
            missing[rule_index] -= 1
            if missing[rule_index] == 0:
                head = active_rules[rule_index].head
                if head not in derived:
                    derived.add(head)
                    queue.append(head)
                    if budget is not None:
                        budget.tick()
                        budget.charge_facts()
    return frozenset(derived)


def least_model_naive(
    rules: Sequence[GroundRule],
    negation_oracle: Callable[[int], bool],
    budget: Optional[EvaluationBudget] = None,
) -> FrozenSet[int]:
    """Naive iterate-to-fixpoint least model (reference implementation)."""
    derived: Set[int] = set()
    changed = True
    while changed:
        changed = False
        if budget is not None:
            budget.note_iteration(phase="least-model-naive")
            budget.tick(len(rules))
        for rule in rules:
            if rule.head in derived:
                continue
            if all(atom in derived for atom in rule.pos) and all(
                negation_oracle(atom) for atom in rule.neg
            ):
                derived.add(rule.head)
                if budget is not None:
                    budget.charge_facts()
                changed = True
    return frozenset(derived)


def minimal_model(
    program: GroundProgram, budget: Optional[EvaluationBudget] = None
) -> FrozenSet[int]:
    """The minimal model of a *positive* ground program.

    This is the classical Horn-program semantics ("the tuples in the
    relations are those derived from the program", Section 2.1).  Raises
    :class:`PositiveProgramRequired` if any rule has a negative literal.
    """
    for rule in program.rules:
        if rule.neg:
            raise PositiveProgramRequired(
                "program has negative literals; use stratified/well-founded/"
                "valid semantics instead"
            )
    return least_model_with_oracle(program.rules, lambda _atom: True, budget)
