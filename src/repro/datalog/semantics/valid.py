"""The valid computation, exactly as Section 2.2 of the paper presents it.

    "Initially, all the facts are undefined.  At each step of the
    computation, we look at all the possible derivations starting from the
    current set T of true facts, where only facts not in T are allowed to
    be used negatively.  The facts that are not derivable in any such
    computation are assumed to be certainly false, and are therefore added
    to F.  The false facts in F and the true facts in T are then used to
    derive new true facts, that are added to T.  In this derivation, we use
    negatively only facts from F.  The process is repeated (possibly
    transfinitely) until no more true facts can be derived."

On a finite ground program the "possibly transfinite" repetition is a
finite loop.  The two phases are realised with the least-model primitive:

* *possible derivations from T*: least model where ``not q`` is usable
  iff ``q ∉ T`` — everything outside it goes into ``F``;
* *derive new truths*: least model where ``not q`` is usable iff
  ``q ∈ F``.

``F`` only ever grows (facts declared certainly false stay false) and
``T`` only ever grows, so the loop terminates.  This operational
description coincides, on ground programs, with the alternating fixpoint
of the well-founded semantics — the paper's own remark that its results
"can be easily adjusted to capture other declarative semantics" (Section
7) leans on that family resemblance, and our test-suite asserts the
agreement program-by-program against the independent implementation in
``repro.datalog.semantics.wellfounded``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from ...robustness import EvaluationBudget
from ..grounding import GroundProgram
from .fixpoint import least_model_with_oracle
from .interpretations import Interpretation

__all__ = ["valid_model", "ValidTrace", "valid_computation_trace"]


@dataclass(frozen=True)
class ValidTrace:
    """One step of the valid computation: the sets after the step."""

    true: FrozenSet[int]
    false: FrozenSet[int]
    possibly_derivable: FrozenSet[int]


def valid_computation_trace(
    program: GroundProgram, budget: Optional[EvaluationBudget] = None
) -> List[ValidTrace]:
    """Run the Section 2.2 loop, returning every intermediate (T, F)."""
    everything = frozenset(range(program.atom_count))
    true_set: FrozenSet[int] = frozenset()
    false_set: FrozenSet[int] = frozenset()
    steps: List[ValidTrace] = []

    while True:
        if budget is not None:
            budget.note_iteration(phase="valid-computation")
        # All possible derivations from T, using negatively only facts
        # not (yet) in T.
        possibly = least_model_with_oracle(
            program.rules, lambda atom: atom not in true_set, budget
        )
        # Facts with no possible derivation are certainly false.
        false_set = false_set | (everything - possibly)
        # Derive new true facts, using negatively only facts from F.
        next_true = least_model_with_oracle(
            program.rules, lambda atom: atom in false_set, budget
        )
        steps.append(ValidTrace(next_true, false_set, possibly))
        if next_true == true_set:
            return steps
        true_set = next_true


def valid_model(
    program: GroundProgram, budget: Optional[EvaluationBudget] = None
) -> Interpretation:
    """The (three-valued) valid model of a ground program."""
    final = valid_computation_trace(program, budget)[-1]
    return Interpretation.three_valued(final.true, final.false)
