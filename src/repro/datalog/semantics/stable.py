"""Stable model semantics (Gelfond–Lifschitz [11 in the paper]).

A two-valued interpretation ``M`` is a *stable model* iff it equals the
minimal model of the Gelfond–Lifschitz reduct ``P^M`` (drop rules with a
negative literal contradicted by ``M``; delete the remaining negative
literals).

The solver first computes the well-founded model — its true atoms belong
to every stable model and its false atoms to none — and then searches
over truth assignments to the *residual* atoms (those the WFS leaves
undefined) that actually appear negatively.  On stratified programs the
residual is empty and the unique stable model is read off directly.

The search is exponential in the residual choice count, which is tiny for
every program in the paper; ``max_choice_atoms`` guards against misuse.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, List, Optional, Set

from ...robustness import BudgetExceeded, EvaluationBudget
from ..grounding import GroundProgram
from .fixpoint import least_model_with_oracle
from .interpretations import Interpretation
from .wellfounded import well_founded_model

__all__ = ["stable_models", "is_stable_model", "TooManyChoiceAtoms"]


class TooManyChoiceAtoms(BudgetExceeded):
    """The residual search space is larger than the configured bound."""

    code = "too-many-choice-atoms"


def is_stable_model(
    program: GroundProgram,
    candidate: FrozenSet[int],
    budget: Optional[EvaluationBudget] = None,
) -> bool:
    """Check the Gelfond–Lifschitz condition for a candidate atom set."""
    reduct_model = least_model_with_oracle(
        program.rules, lambda atom: atom not in candidate, budget
    )
    return reduct_model == candidate


def stable_models(
    program: GroundProgram,
    max_choice_atoms: int = 20,
    budget: Optional[EvaluationBudget] = None,
) -> List[Interpretation]:
    """All stable models, as total interpretations, deterministically ordered.

    Raises :class:`TooManyChoiceAtoms` when more than ``max_choice_atoms``
    WFS-undefined atoms occur in negative bodies.  ``budget`` governs the
    WFS precomputation and every candidate check of the residual search.
    """
    wfs = well_founded_model(program, budget)
    undefined = wfs.undefined_in(program)

    if not undefined:
        # The WFS is total; it is then the unique stable model.
        return [Interpretation.total(wfs.true, program.atom_count)]

    negatively_used: Set[int] = set()
    for rule in program.rules:
        negatively_used.update(rule.neg)
    choice_atoms = sorted(undefined & negatively_used)
    if len(choice_atoms) > max_choice_atoms:
        raise TooManyChoiceAtoms(
            f"{len(choice_atoms)} residual choice atoms exceed the bound "
            f"{max_choice_atoms}"
        )

    models: List[FrozenSet[int]] = []
    seen: Set[FrozenSet[int]] = set()
    for assignment in itertools.product((False, True), repeat=len(choice_atoms)):
        if budget is not None:
            budget.note_iteration(phase="stable-search")
        assumed_true = {
            atom for atom, flag in zip(choice_atoms, assignment) if flag
        }
        # Two-pass: first build the candidate from the guess (negation
        # oracle = WFS verdicts where decided, the guess on residual
        # choice atoms), then verify stability exactly.
        def guess_oracle(atom: int) -> bool:
            if atom in wfs.true:
                return False
            if atom in wfs.false:
                return True
            return atom not in assumed_true

        candidate = least_model_with_oracle(program.rules, guess_oracle, budget)
        if candidate in seen:
            continue
        # The guess must be self-supporting: every atom assumed true is
        # derived, and the candidate must pass the exact GL check.
        if not assumed_true <= candidate:
            continue
        if is_stable_model(program, candidate, budget):
            seen.add(candidate)
            models.append(candidate)

    models.sort(key=sorted)
    return [Interpretation.total(model, program.atom_count) for model in models]
