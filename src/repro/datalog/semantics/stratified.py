"""Stratified semantics: stratum-by-stratum minimal models.

"If the program is stratified, then the answer can be obtained by
successively computing the minimal model of each stratum" (Section 4).
On stratified programs this coincides with the well-founded and valid
models (which are then total) — asserted by the integration tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from ...robustness import EvaluationBudget
from ..ast import Program
from ..grounding import GroundProgram, GroundRule
from ..stratification import NotStratifiedError, stratify
from .fixpoint import least_model_with_oracle
from .interpretations import Interpretation

__all__ = ["stratified_model"]


def stratified_model(
    rule_program: Program,
    ground_program: GroundProgram,
    budget: Optional[EvaluationBudget] = None,
) -> Interpretation:
    """Evaluate a stratified program over its grounding.

    ``rule_program`` supplies the predicate strata; ``ground_program`` is
    its grounding (including EDB facts).  Raises
    :class:`~repro.datalog.stratification.NotStratifiedError` if the
    program is not stratified.
    """
    strata: Dict[str, int] = stratify(rule_program)
    height = max(strata.values(), default=0)

    def stratum_of_atom(atom_id: int) -> int:
        predicate, _args = ground_program.decode(atom_id)
        return strata.get(predicate, 0)

    accumulated: FrozenSet[int] = frozenset()
    for level in range(height + 1):
        if budget is not None:
            budget.note_iteration(stratum=level, phase="stratified")
        level_rules = [
            rule
            for rule in ground_program.rules
            if stratum_of_atom(rule.head) == level
        ]
        # Lower-stratum results enter as facts.
        seed = [GroundRule(atom) for atom in accumulated]
        decided_below = accumulated

        def oracle(atom: int, _decided=decided_below, _level=level) -> bool:
            if stratum_of_atom(atom) >= _level:
                # A genuinely stratified program never consults this case;
                # it can arise only for atoms pruned by grounding (hence
                # certainly false).
                return True
            return atom not in _decided

        accumulated = least_model_with_oracle(level_rules + seed, oracle, budget)
    return Interpretation.total(accumulated, ground_program.atom_count)
