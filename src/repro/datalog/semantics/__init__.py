"""Declarative semantics for deductive programs.

One module per semantics, all over the same propositional
:class:`~repro.datalog.grounding.GroundProgram`:

========================  ====================================================
``fixpoint``              minimal model of positive programs (+ the oracle
                          primitive everything else is built from)
``stratified``            stratum-by-stratum minimal models (Section 4)
``inflationary``          negation = "not derived so far" (Section 5)
``wellfounded``           alternating fixpoint [24]
``valid``                 the paper's Section 2.2 valid computation [6]
``stable``                Gelfond–Lifschitz stable models [11]
========================  ====================================================
"""

from .fixpoint import (
    PositiveProgramRequired,
    least_model_naive,
    least_model_with_oracle,
    minimal_model,
)
from .inflationary import inflationary_fixpoint, inflationary_model, inflationary_stages
from .interpretations import Interpretation, Truth
from .stable import TooManyChoiceAtoms, is_stable_model, stable_models
from .stratified import stratified_model
from .valid import ValidTrace, valid_computation_trace, valid_model
from .wellfounded import alternating_fixpoint_trace, well_founded_model

__all__ = [
    "Interpretation",
    "Truth",
    "minimal_model",
    "least_model_with_oracle",
    "least_model_naive",
    "PositiveProgramRequired",
    "stratified_model",
    "inflationary_fixpoint",
    "inflationary_model",
    "inflationary_stages",
    "well_founded_model",
    "alternating_fixpoint_trace",
    "valid_model",
    "valid_computation_trace",
    "ValidTrace",
    "stable_models",
    "is_stable_model",
    "TooManyChoiceAtoms",
]
