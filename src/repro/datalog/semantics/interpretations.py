"""Two- and three-valued interpretations over ground programs.

The valid model of a program is *three-valued*: a set ``T`` of true facts,
a set ``F`` of false facts, and the rest undefined (paper, Section 2.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Set, Tuple

from ..grounding import GroundProgram

__all__ = ["Truth", "Interpretation"]


class Truth(enum.Enum):
    """Kleene's three truth values."""

    FALSE = 0
    UNDEFINED = 1
    TRUE = 2

    def negate(self) -> "Truth":
        """Kleene negation."""
        if self is Truth.TRUE:
            return Truth.FALSE
        if self is Truth.FALSE:
            return Truth.TRUE
        return Truth.UNDEFINED

    @staticmethod
    def meet(left: "Truth", right: "Truth") -> "Truth":
        """Three-valued conjunction (minimum in the truth order)."""
        return left if left.value <= right.value else right

    @staticmethod
    def join(left: "Truth", right: "Truth") -> "Truth":
        """Three-valued disjunction (maximum in the truth order)."""
        return left if left.value >= right.value else right


@dataclass(frozen=True)
class Interpretation:
    """A (possibly partial) assignment of truth values to ground atoms.

    ``true`` and ``false`` are disjoint sets of atom ids; atoms in neither
    are undefined.  A *total* interpretation has no undefined atoms
    relative to the program's atom universe.
    """

    true: FrozenSet[int]
    false: FrozenSet[int]

    def __post_init__(self) -> None:
        overlap = self.true & self.false
        if overlap:
            raise ValueError(f"atoms both true and false: {sorted(overlap)[:5]}")

    @classmethod
    def total(cls, true: Iterable[int], atom_count: int) -> "Interpretation":
        """A two-valued interpretation: everything not true is false."""
        true_set = frozenset(true)
        return cls(true_set, frozenset(range(atom_count)) - true_set)

    @classmethod
    def three_valued(cls, true: Iterable[int], false: Iterable[int]) -> "Interpretation":
        """Build a partial interpretation from true/false sets."""
        return cls(frozenset(true), frozenset(false))

    def value_of(self, atom_id: int) -> Truth:
        """Truth value of an atom id."""
        if atom_id in self.true:
            return Truth.TRUE
        if atom_id in self.false:
            return Truth.FALSE
        return Truth.UNDEFINED

    def undefined_in(self, program: GroundProgram) -> FrozenSet[int]:
        """Atom ids left undefined relative to a program."""
        everything = frozenset(range(program.atom_count))
        return everything - self.true - self.false

    def is_total_for(self, program: GroundProgram) -> bool:
        """No undefined atoms relative to a program?"""
        return not self.undefined_in(program)

    def true_rows(self, program: GroundProgram, predicate: str):
        """True rows of ``predicate`` (frozenset of value tuples)."""
        return program.rows_where(lambda a: a in self.true, predicate)

    def false_rows(self, program: GroundProgram, predicate: str):
        """Certainly-false rows of a predicate."""
        return program.rows_where(lambda a: a in self.false, predicate)

    def undefined_rows(self, program: GroundProgram, predicate: str):
        """Undefined rows of a predicate."""
        undefined = self.undefined_in(program)
        return program.rows_where(lambda a: a in undefined, predicate)

    def agrees_with(self, other: "Interpretation") -> bool:
        """Same true and false sets?"""
        return self.true == other.true and self.false == other.false

    def __repr__(self) -> str:
        return f"<Interpretation true={len(self.true)} false={len(self.false)}>"
