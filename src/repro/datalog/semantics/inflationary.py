"""Inflationary fixpoint semantics.

Negation is read as "was not derived *so far*" (paper, Section 5): at each
round, every rule whose positive body is already derived and whose negative
body atoms are *not yet* derived fires, and the results accumulate.  The
process is inflationary, so it converges in at most ``atom_count`` rounds
on a finite ground program.

This is the semantics under which the naive algebra→deduction translation
of Proposition 5.1 is exact (Example 4: ``IFP_{{a}−x}`` translates to the
non-stratified program ``{R(a);  R(x) ∧ ¬Q(x) → Q(x)}`` whose inflationary
result is ``{a}`` while its valid model leaves ``Q(a)`` undefined).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set

from ...robustness import EvaluationBudget
from ..grounding import GroundProgram
from .interpretations import Interpretation

__all__ = ["inflationary_fixpoint", "inflationary_model", "inflationary_stages"]


def inflationary_stages(
    program: GroundProgram, budget: Optional[EvaluationBudget] = None
) -> List[FrozenSet[int]]:
    """The chain ``T_0 ⊆ T_1 ⊆ ...`` of round results (``T_0 = ∅``).

    Each round evaluates negation against the *start-of-round* set, as in
    the standard definition ``T_{i+1} = T_i ∪ Γ_P(T_i)``.
    """
    stages: List[FrozenSet[int]] = [frozenset()]
    current: Set[int] = set()
    while True:
        if budget is not None:
            budget.note_iteration(phase="inflationary")
            budget.tick(len(program.rules))
        snapshot = frozenset(current)
        new_atoms: Set[int] = set()
        for rule in program.rules:
            if rule.head in current or rule.head in new_atoms:
                continue
            if all(atom in snapshot for atom in rule.pos) and all(
                atom not in snapshot for atom in rule.neg
            ):
                new_atoms.add(rule.head)
        if not new_atoms:
            break
        if budget is not None:
            budget.charge_facts(len(new_atoms))
        current |= new_atoms
        stages.append(frozenset(current))
    return stages


def inflationary_fixpoint(
    program: GroundProgram, budget: Optional[EvaluationBudget] = None
) -> FrozenSet[int]:
    """The set of atoms true in the inflationary fixpoint."""
    return inflationary_stages(program, budget)[-1]


def inflationary_model(
    program: GroundProgram, budget: Optional[EvaluationBudget] = None
) -> Interpretation:
    """The inflationary result as a total (two-valued) interpretation."""
    return Interpretation.total(
        inflationary_fixpoint(program, budget), program.atom_count
    )
