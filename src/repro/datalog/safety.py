"""Safety: range formulas and the Proposition 4.2 transformation.

Definition 4.1 of the paper restricts variables so that "all the elements
used in the computation either appear in the database, are components of
database members, or are obtained from them by function applications".
A Horn clause ``φ → R(x̄)`` is *safe* when ``φ`` is a range formula
restricting ``x̄``, and a program is safe when all its clauses are.

:func:`restricted_vars` computes the restricted-variable set of a body by
the fixpoint reading of Definition 4.1's construction rules;
:func:`is_safe_rule` / :func:`is_safe_program` apply it.

:func:`make_safe` implements Proposition 4.2 for the executable setting:
every domain-independent query has an equivalent safe query obtained by
guarding each rule's variables with a domain predicate generated from
constants and function applications.  The paper's domain predicates range
over the (possibly infinite) initial model; here the caller supplies an
explicit bounded :class:`~repro.relations.universe.Universe`, in line with
the bounded-universe discipline of this reproduction (see DESIGN.md).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..relations.universe import FunctionRegistry, Universe
from ..relations.values import Value
from .ast import (
    Comparison,
    Const,
    FuncTerm,
    Literal,
    PredAtom,
    Program,
    Rule,
    Term,
    Var,
    term_vars,
)
from .database import Database

__all__ = [
    "restricted_vars",
    "is_safe_rule",
    "is_safe_program",
    "unsafe_rules",
    "DOMAIN_PREDICATE",
    "make_safe",
    "domain_program",
]

DOMAIN_PREDICATE = "dom"


def restricted_vars(body: Sequence) -> FrozenSet[Var]:
    """The variables restricted by a rule body (Definition 4.1).

    Fixpoint of the construction rules:

    * a positive literal restricts its variable arguments, provided the
      variables inside any function-term argument are already restricted
      (basis a / construction 1);
    * ``y = exp`` restricts ``y`` when all variables of ``exp`` are
      restricted — including the ground-``exp`` basis case b
      (construction 4);
    * negative literals and pure tests restrict nothing (constructions
      2 and 3 only *permit* them once their variables are restricted).
    """
    restricted: Set[Var] = set()
    changed = True
    while changed:
        changed = False
        for item in body:
            if isinstance(item, Literal) and item.positive:
                func_args_ok = all(
                    term_vars(arg) <= restricted
                    for arg in item.atom.args
                    if isinstance(arg, FuncTerm)
                )
                if func_args_ok:
                    for arg in item.atom.args:
                        if isinstance(arg, Var) and arg not in restricted:
                            restricted.add(arg)
                            changed = True
            elif isinstance(item, Comparison) and item.op == "=":
                for variable, expr in (
                    (item.left, item.right),
                    (item.right, item.left),
                ):
                    if (
                        isinstance(variable, Var)
                        and variable not in restricted
                        and term_vars(expr) <= restricted
                    ):
                        restricted.add(variable)
                        changed = True
    return frozenset(restricted)


def is_safe_rule(rule: Rule) -> bool:
    """Safe (Definition 4.1): every variable of the rule is restricted,
    so in particular negative literals, tests and the head are covered."""
    restricted = restricted_vars(rule.body)
    return rule.vars() <= restricted


def is_safe_program(program: Program) -> bool:
    """Are all rules safe (Definition 4.1)?"""
    return all(is_safe_rule(rule) for rule in program.rules)


def unsafe_rules(program: Program) -> List[Rule]:
    """The rules failing Definition 4.1."""
    return [rule for rule in program.rules if not is_safe_rule(rule)]


# ---------------------------------------------------------------------------
# Proposition 4.2: making domain-independent queries safe
# ---------------------------------------------------------------------------


def domain_program(
    universe: Universe, predicate: str = DOMAIN_PREDICATE
) -> Program:
    """A program defining the domain predicate as explicit facts.

    Stands in for the paper's safe recursive definition of the type
    predicates ``S_i`` ("since the elements are constructed from
    constants, by applying functions, we can write safe rules defining
    S_i"): the caller materialises the bounded universe first (e.g. with
    :meth:`Universe.closure`), and each element becomes a fact.
    """
    facts = [Rule(PredAtom(predicate, (Const(value),))) for value in universe]
    return Program(tuple(facts), name=f"{predicate}-facts")


def make_safe(
    program: Program,
    universe: Universe,
    predicate: str = DOMAIN_PREDICATE,
) -> Program:
    """Guard every rule so it becomes safe (Proposition 4.2).

    Each rule ``φ → R(x̄)`` with variables ``x_1 ... x_n`` becomes
    ``dom(x_1) ∧ ... ∧ dom(x_k) ∧ φ → R(x̄)``, guarding exactly the
    variables Definition 4.1 leaves unrestricted; the domain facts for the
    supplied universe are appended.  For a domain-independent query the
    result is equivalent on every universe containing the query's window.
    """
    guarded: List[Rule] = []
    for rule in program.rules:
        restricted = restricted_vars(rule.body)
        unrestricted = sorted(rule.vars() - restricted, key=lambda v: v.name)
        guards = tuple(
            Literal(PredAtom(predicate, (variable,)), True)
            for variable in unrestricted
        )
        guarded.append(Rule(rule.head, guards + rule.body))
    guarded.extend(domain_program(universe, predicate).rules)
    return Program(tuple(guarded), name=(program.name or "program") + "-safe")
