"""Abstract syntax for deductive programs (Section 4).

A deductive program is a set of Horn clauses ``Q_1, ..., Q_n → R(x̄)``
where each ``Q_j`` is an atomic formula ``R_j(x̄_j)`` or
``exp_1 = exp_2``, or the negation of one.  Terms may contain function
symbols from a :class:`~repro.relations.universe.FunctionRegistry`
(the paper allows "functions on the domains, such as addition").

The classes here are plain immutable data; evaluation lives in
``repro.datalog.grounding`` and ``repro.datalog.semantics``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple, Union

from ..relations.universe import FunctionRegistry
from ..relations.values import Value, format_value, is_value

__all__ = [
    "Var",
    "Const",
    "FuncTerm",
    "Term",
    "PredAtom",
    "Literal",
    "Comparison",
    "BodyItem",
    "Rule",
    "Program",
    "term_vars",
    "substitute_term",
    "eval_term",
    "pos",
    "neg",
    "eq",
    "neq",
    "rule",
    "fact",
    "COMPARISON_OPS",
]


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Var:
    """A logic variable.  Conventionally upper-case (``X``, ``Y``)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const:
    """A constant term wrapping a complex-object value."""

    value: Value

    def __post_init__(self) -> None:
        if not is_value(self.value):
            raise TypeError(f"not a value: {self.value!r}")

    def __repr__(self) -> str:
        return format_value(self.value)


@dataclass(frozen=True, slots=True)
class FuncTerm:
    """A function application term, e.g. ``succ(X)`` or ``tuple(X, Y)``.

    The special names ``tuple`` and ``set`` are interpreted structurally
    (building :class:`~repro.relations.values.Tup` / ``FSet``); every other
    name must resolve in the evaluation registry.
    """

    name: str
    args: Tuple["Term", ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    def __repr__(self) -> str:
        inner = ", ".join(repr(arg) for arg in self.args)
        return f"{self.name}({inner})"


Term = Union[Var, Const, FuncTerm]


def term_vars(term: Term) -> FrozenSet[Var]:
    """The set of variables occurring in a term."""
    if isinstance(term, Var):
        return frozenset((term,))
    if isinstance(term, Const):
        return frozenset()
    result: FrozenSet[Var] = frozenset()
    for arg in term.args:
        result |= term_vars(arg)
    return result


def substitute_term(term: Term, subst: Mapping[Var, Term]) -> Term:
    """Apply a substitution (Var → Term) to a term."""
    if isinstance(term, Var):
        return subst.get(term, term)
    if isinstance(term, Const):
        return term
    return FuncTerm(term.name, tuple(substitute_term(arg, subst) for arg in term.args))


def eval_term(
    term: Term,
    binding: Mapping[Var, Value],
    registry: Optional[FunctionRegistry] = None,
) -> Optional[Value]:
    """Evaluate a term to a value under a variable binding.

    Returns ``None`` when a partial domain function is undefined on the
    arguments.  Raises ``KeyError`` on unbound variables or unknown
    function names — those are programming errors, not partiality.
    """
    if isinstance(term, Var):
        if term not in binding:
            raise KeyError(f"unbound variable {term.name} during evaluation")
        return binding[term]
    if isinstance(term, Const):
        return term.value
    values = []
    for arg in term.args:
        value = eval_term(arg, binding, registry)
        if value is None:
            return None
        values.append(value)
    if term.name == "tuple":
        from ..relations.values import Tup

        return Tup(tuple(values))
    if term.name == "set":
        from ..relations.values import FSet

        return FSet(frozenset(values))
    if registry is None:
        raise KeyError(f"no function registry supplied for {term.name!r}")
    return registry.get(term.name).apply(values)


# ---------------------------------------------------------------------------
# Atoms and body items
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PredAtom:
    """A predicate atom ``R(t_1, ..., t_n)``."""

    predicate: str
    args: Tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        if not self.predicate:
            raise ValueError("predicate name must be non-empty")
        object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    def vars(self) -> FrozenSet[Var]:
        """Variables occurring in this node."""
        result: FrozenSet[Var] = frozenset()
        for arg in self.args:
            result |= term_vars(arg)
        return result

    def substitute(self, subst: Mapping[Var, Term]) -> "PredAtom":
        """Apply a variable substitution."""
        return PredAtom(
            self.predicate, tuple(substitute_term(arg, subst) for arg in self.args)
        )

    def is_ground(self) -> bool:
        """True when no variables occur."""
        return not self.vars()

    def __repr__(self) -> str:
        if not self.args:
            return self.predicate
        inner = ", ".join(repr(arg) for arg in self.args)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True, slots=True)
class Literal:
    """A possibly-negated predicate atom in a rule body."""

    atom: PredAtom
    positive: bool = True

    def vars(self) -> FrozenSet[Var]:
        """Variables occurring in this node."""
        return self.atom.vars()

    def substitute(self, subst: Mapping[Var, Term]) -> "Literal":
        """Apply a variable substitution."""
        return Literal(self.atom.substitute(subst), self.positive)

    def negated(self) -> "Literal":
        """The same literal with polarity flipped."""
        return Literal(self.atom, not self.positive)

    def __repr__(self) -> str:
        return repr(self.atom) if self.positive else f"not {self.atom!r}"


COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True, slots=True)
class Comparison:
    """A built-in (dis)equality or order comparison between terms.

    ``=`` doubles as assignment during grounding: when exactly one side is
    an unbound variable and the other side is fully bound, it *binds* the
    variable (range-formula case 4 of Definition 4.1).
    """

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def vars(self) -> FrozenSet[Var]:
        """Variables occurring in this node."""
        return term_vars(self.left) | term_vars(self.right)

    def substitute(self, subst: Mapping[Var, Term]) -> "Comparison":
        """Apply a variable substitution."""
        return Comparison(
            self.op, substitute_term(self.left, subst), substitute_term(self.right, subst)
        )

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


BodyItem = Union[Literal, Comparison]


# ---------------------------------------------------------------------------
# Rules and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Rule:
    """A Horn clause ``head :- body``.  A fact is a rule with empty body."""

    head: PredAtom
    body: Tuple[BodyItem, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        for item in self.body:
            if not isinstance(item, (Literal, Comparison)):
                raise TypeError(f"bad body item: {item!r}")

    def is_fact(self) -> bool:
        """True when the body is empty."""
        return not self.body

    def vars(self) -> FrozenSet[Var]:
        """Variables occurring in this node."""
        result = self.head.vars()
        for item in self.body:
            result |= item.vars()
        return result

    def positive_literals(self) -> Tuple[Literal, ...]:
        """The positive predicate literals of the body."""
        return tuple(
            item for item in self.body if isinstance(item, Literal) and item.positive
        )

    def negative_literals(self) -> Tuple[Literal, ...]:
        """The negated predicate literals of the body."""
        return tuple(
            item for item in self.body if isinstance(item, Literal) and not item.positive
        )

    def comparisons(self) -> Tuple[Comparison, ...]:
        """The built-in comparisons of the body."""
        return tuple(item for item in self.body if isinstance(item, Comparison))

    def substitute(self, subst: Mapping[Var, Term]) -> "Rule":
        """Apply a variable substitution."""
        return Rule(
            self.head.substitute(subst),
            tuple(item.substitute(subst) for item in self.body),
        )

    def __repr__(self) -> str:
        if not self.body:
            return f"{self.head!r}."
        inner = ", ".join(repr(item) for item in self.body)
        return f"{self.head!r} :- {inner}."


@dataclass(frozen=True)
class Program:
    """A deductive program: an ordered collection of rules.

    ``name`` is cosmetic.  Predicates with at least one rule head are the
    *IDB*; everything else mentioned is *EDB* (supplied by a database).
    """

    rules: Tuple[Rule, ...]
    name: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    @classmethod
    def of(cls, *rules: Rule, name: Optional[str] = None) -> "Program":
        """Build a program from rules."""
        return cls(tuple(rules), name=name)

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def predicates(self) -> FrozenSet[str]:
        """All predicate names mentioned."""
        names = set()
        for rule_ in self.rules:
            names.add(rule_.head.predicate)
            for literal in rule_.positive_literals() + rule_.negative_literals():
                names.add(literal.atom.predicate)
        return frozenset(names)

    def idb_predicates(self) -> FrozenSet[str]:
        """Predicates with at least one rule head."""
        return frozenset(rule_.head.predicate for rule_ in self.rules)

    def edb_predicates(self) -> FrozenSet[str]:
        """Predicates only mentioned in bodies (database-supplied)."""
        return self.predicates() - self.idb_predicates()

    def rules_for(self, predicate: str) -> Tuple[Rule, ...]:
        """The rules whose head is the given predicate."""
        return tuple(r for r in self.rules if r.head.predicate == predicate)

    def arities(self) -> Dict[str, int]:
        """Predicate → arity.  Raises on inconsistent use."""
        result: Dict[str, int] = {}

        def _note(atom: PredAtom) -> None:
            seen = result.setdefault(atom.predicate, atom.arity)
            if seen != atom.arity:
                raise ValueError(
                    f"predicate {atom.predicate} used with arities {seen} and {atom.arity}"
                )

        for rule_ in self.rules:
            _note(rule_.head)
            for literal in rule_.positive_literals() + rule_.negative_literals():
                _note(literal.atom)
        return result

    def extend(self, extra: Iterable[Rule], name: Optional[str] = None) -> "Program":
        """A copy with extra rules appended."""
        return Program(self.rules + tuple(extra), name=name or self.name)

    def __repr__(self) -> str:
        label = self.name or "program"
        return f"<Program {label}: {len(self.rules)} rules>"

    def pretty(self) -> str:
        """Render the rules, one per line."""
        return "\n".join(repr(rule_) for rule_ in self.rules)


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------


def _as_term(candidate) -> Term:
    if isinstance(candidate, (Var, Const, FuncTerm)):
        return candidate
    if is_value(candidate):
        return Const(candidate)
    raise TypeError(f"cannot coerce {candidate!r} to a term")


def _as_atom(predicate: str, args: Sequence) -> PredAtom:
    return PredAtom(predicate, tuple(_as_term(arg) for arg in args))


def pos(predicate: str, *args) -> Literal:
    """Positive body literal: ``pos('move', Var('X'), Var('Y'))``."""
    return Literal(_as_atom(predicate, args), True)


def neg(predicate: str, *args) -> Literal:
    """Negative body literal: ``neg('win', Var('Y'))``."""
    return Literal(_as_atom(predicate, args), False)


def eq(left, right) -> Comparison:
    """Equality / assignment body item."""
    return Comparison("=", _as_term(left), _as_term(right))


def neq(left, right) -> Comparison:
    """Disequality body item."""
    return Comparison("!=", _as_term(left), _as_term(right))


def rule(predicate: str, args: Sequence, body: Sequence[BodyItem] = ()) -> Rule:
    """Build a rule: ``rule('win', [X], [pos('move', X, Y), neg('win', Y)])``."""
    return Rule(_as_atom(predicate, args), tuple(body))


def fact(predicate: str, *args) -> Rule:
    """Build a ground fact: ``fact('move', Atom('a'), Atom('b'))``."""
    atom = _as_atom(predicate, args)
    if atom.vars():
        raise ValueError(f"fact must be ground: {atom!r}")
    return Rule(atom, ())
