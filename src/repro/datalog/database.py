"""Extensional databases (EDB) for the deductive engine.

A :class:`Database` maps predicate names to finite sets of ground value
tuples.  Conversion helpers connect it to the algebraic side: a database
*relation* (a named set, Section 3) corresponds to a *unary* predicate
holding its members — this is exactly the correspondence the translations
of Sections 5 and 6 rely on.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Set, Tuple

from ..relations.relation import Relation
from ..relations.values import FSet, Tup, Value, is_value, sorted_values

__all__ = ["Database"]


class Database:
    """A finite collection of ground facts, grouped by predicate."""

    def __init__(self, facts: Optional[Mapping[str, Iterable[Tuple[Value, ...]]]] = None):
        self._facts: Dict[str, Set[Tuple[Value, ...]]] = {}
        # Explicit semiring annotations, predicate → row → carrier
        # value.  Only *explicitly supplied* annotations live here —
        # facts without one take their semiring's ``from_edb`` default
        # at evaluation time, so boolean databases never populate this
        # and their fingerprints stay byte-identical to the
        # pre-annotation format.
        self._annotations: Dict[str, Dict[Tuple[Value, ...], object]] = {}
        # Cached content hash; None = dirty.  Every mutator clears it
        # *before* touching the fact sets so there is no window in which
        # a stale fingerprint could be observed for mutated content (a
        # stale hit would poison the ground-program cache keyed on it).
        self._fingerprint: Optional[str] = None
        if facts:
            for predicate, rows in facts.items():
                for row in rows:
                    self.add(predicate, *row)

    # -- construction --------------------------------------------------------

    def add(self, predicate: str, *args: Value, annotation: object = None) -> "Database":
        """Add a ground fact ``predicate(args...)`` (mutating; returns self).

        ``annotation`` attaches an explicit semiring annotation to the
        fact, *replacing* any previous one (absolute, not combined —
        re-adding with the same annotation is idempotent, which WAL
        replay relies on).  Without one, the fact keeps whatever
        explicit annotation it already had, or none.
        """
        for arg in args:
            if not is_value(arg):
                raise TypeError(f"fact argument is not a value: {arg!r}")
        self._fingerprint = None
        rows = self._facts.setdefault(predicate, set())
        if rows and len(next(iter(rows))) != len(args):
            raise ValueError(
                f"predicate {predicate} used with inconsistent arities"
            )
        rows.add(tuple(args))
        if annotation is not None:
            self._annotations.setdefault(predicate, {})[tuple(args)] = annotation
        return self

    def declare(self, predicate: str) -> "Database":
        """Register a predicate with no facts yet (an empty relation is
        still part of the schema)."""
        self._fingerprint = None
        self._facts.setdefault(predicate, set())
        return self

    def remove(self, predicate: str, *args: Value) -> "Database":
        """Remove a ground fact (mutating; returns self).

        Symmetric with :meth:`add`; raises :class:`KeyError` when the
        fact is not present.  The predicate stays declared even when its
        last fact is removed — the empty relation remains in the schema.
        """
        rows = self._facts.get(predicate)
        row = tuple(args)
        if rows is None or row not in rows:
            raise KeyError(f"fact not present: {predicate}{row!r}")
        self._fingerprint = None
        rows.discard(row)
        self._drop_annotation(predicate, row)
        return self

    def discard(self, predicate: str, *args: Value) -> "Database":
        """Remove a ground fact if present (mutating; returns self).

        Like :meth:`remove` but silent when the fact is absent — the
        set-style counterpart, used by idempotent update paths.
        """
        rows = self._facts.get(predicate)
        if rows is not None and tuple(args) in rows:
            self._fingerprint = None
            rows.discard(tuple(args))
            self._drop_annotation(predicate, tuple(args))
        return self

    def _drop_annotation(self, predicate: str, row: Tuple[Value, ...]) -> None:
        bucket = self._annotations.get(predicate)
        if bucket is not None:
            bucket.pop(row, None)
            if not bucket:
                del self._annotations[predicate]

    # -- semiring annotations -------------------------------------------------

    def set_annotation(self, predicate: str, row: Tuple[Value, ...], annotation: object) -> "Database":
        """Attach (or replace) the explicit annotation of a present fact."""
        if tuple(row) not in self._facts.get(predicate, ()):
            raise KeyError(f"fact not present: {predicate}{tuple(row)!r}")
        self._fingerprint = None
        self._annotations.setdefault(predicate, {})[tuple(row)] = annotation
        return self

    def annotation(self, predicate: str, row: Tuple[Value, ...], default: object = None):
        """The explicit annotation of a fact, or ``default``."""
        return self._annotations.get(predicate, {}).get(tuple(row), default)

    def annotations(self, predicate: str) -> Mapping[Tuple[Value, ...], object]:
        """Explicitly annotated rows of a predicate (read-only view)."""
        return dict(self._annotations.get(predicate, {}))

    def has_annotations(self) -> bool:
        """Does any fact carry an explicit annotation?"""
        return any(self._annotations.values())

    @classmethod
    def from_relations(cls, *relations: Relation) -> "Database":
        """Each named relation becomes a unary predicate of its members."""
        database = cls()
        for relation in relations:
            if relation.name is None:
                raise ValueError("relations stored in a database must be named")
            database.declare(relation.name)
            for member in relation.items:
                database.add(relation.name, member)
        return database

    def with_relation(self, relation: Relation) -> "Database":
        """A copy with ``relation`` added as a unary predicate."""
        clone = self.copy()
        if relation.name is None:
            raise ValueError("relation must be named")
        clone.declare(relation.name)
        for member in relation.items:
            clone.add(relation.name, member)
        return clone

    def copy(self) -> "Database":
        """An independent copy (shares the memoized fingerprint)."""
        clone = Database()
        clone._facts = {pred: set(rows) for pred, rows in self._facts.items()}
        clone._annotations = {
            pred: dict(anns) for pred, anns in self._annotations.items() if anns
        }
        clone._fingerprint = self._fingerprint
        return clone

    # -- access ---------------------------------------------------------------

    def predicates(self) -> FrozenSet[str]:
        """All predicates with facts (or declared)."""
        return frozenset(self._facts)

    def arity(self, predicate: str) -> Optional[int]:
        """Arity of a predicate, or None when empty."""
        rows = self._facts.get(predicate)
        if not rows:
            return None
        return len(next(iter(rows)))

    def rows(self, predicate: str) -> FrozenSet[Tuple[Value, ...]]:
        """The fact rows of a predicate."""
        return frozenset(self._facts.get(predicate, ()))

    def holds(self, predicate: str, *args: Value) -> bool:
        """Is the ground fact present?"""
        return tuple(args) in self._facts.get(predicate, ())

    def unary_relation(self, predicate: str) -> Relation:
        """Read a unary predicate back as a named algebraic relation."""
        members = []
        for row in self._facts.get(predicate, ()):
            if len(row) != 1:
                raise ValueError(f"predicate {predicate} is not unary")
            members.append(row[0])
        return Relation(members, name=predicate)

    def __contains__(self, predicate: str) -> bool:
        return predicate in self._facts

    def __iter__(self) -> Iterator[Tuple[str, Tuple[Value, ...]]]:
        for predicate in sorted(self._facts):
            for row in sorted(self._facts[predicate], key=lambda r: tuple(map(repr, r))):
                yield predicate, row

    def fact_count(self) -> int:
        """Total number of facts."""
        return sum(len(rows) for rows in self._facts.values())

    def fingerprint(self) -> str:
        """A stable content hash of the fact set.

        Two databases with the same predicates and rows (declared-empty
        predicates included) share a fingerprint; any insert or delete
        changes it.  The service layer keys its ground-program cache on
        this, so re-grounding is skipped when a database returns to a
        previously seen state.

        Memoized: the digest is computed at most once per content state
        (every mutator clears the cache, :meth:`copy` carries it over).
        """
        if self._fingerprint is not None:
            return self._fingerprint
        hasher = hashlib.sha256()
        for predicate in sorted(self._facts):
            hasher.update(predicate.encode("utf-8"))
            hasher.update(b"\x00")
            for row in sorted(self._facts[predicate], key=lambda r: tuple(map(repr, r))):
                hasher.update(repr(row).encode("utf-8"))
                hasher.update(b"\x01")
            hasher.update(b"\x02")
        if self.has_annotations():
            # Annotated content gets an extra section.  Unannotated
            # databases skip it entirely so their digests stay
            # byte-identical to the pre-annotation format (the boolean
            # fast path and every existing cache key are unchanged).
            # ``repr`` of set-like carriers is per-process unstable, so
            # annotations hash via their canonical sorted rendering.
            from ..semiring import canonical_annotation

            hasher.update(b"\x03annotations\x03")
            for predicate in sorted(self._annotations):
                bucket = self._annotations[predicate]
                if not bucket:
                    continue
                hasher.update(predicate.encode("utf-8"))
                hasher.update(b"\x00")
                for row in sorted(bucket, key=lambda r: tuple(map(repr, r))):
                    hasher.update(repr(row).encode("utf-8"))
                    hasher.update(b"\x04")
                    hasher.update(canonical_annotation(bucket[row]).encode("utf-8"))
                    hasher.update(b"\x01")
                hasher.update(b"\x02")
        self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    # -- the active domain -----------------------------------------------------

    def active_domain(self, deep: bool = True) -> FrozenSet[Value]:
        """All values appearing in facts.

        With ``deep=True`` (default) the components of tuples and members
        of set values are included too — the paper's range formulas allow
        variables to range over "components of database members".
        """
        domain: Set[Value] = set()

        def visit(value: Value) -> None:
            domain.add(value)
            if not deep:
                return
            if isinstance(value, Tup):
                for item in value.items:
                    visit(item)
            elif isinstance(value, FSet):
                for item in value.items:
                    visit(item)

        for rows in self._facts.values():
            for row in rows:
                for value in row:
                    visit(value)
        return frozenset(domain)

    def __repr__(self) -> str:
        parts = []
        for predicate in sorted(self._facts):
            parts.append(f"{predicate}/{self.arity(predicate)}:{len(self._facts[predicate])}")
        return f"<Database {' '.join(parts)}>"

    def pretty(self) -> str:
        """Render the facts in Datalog syntax."""
        lines = []
        for predicate, row in self:
            inner = ", ".join(str(v) for v in row)
            lines.append(f"{predicate}({inner}).")
        return "\n".join(lines)
