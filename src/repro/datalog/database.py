"""Extensional databases (EDB) for the deductive engine.

A :class:`Database` maps predicate names to finite sets of ground value
tuples.  Conversion helpers connect it to the algebraic side: a database
*relation* (a named set, Section 3) corresponds to a *unary* predicate
holding its members — this is exactly the correspondence the translations
of Sections 5 and 6 rely on.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Set, Tuple

from ..relations.relation import Relation
from ..relations.values import FSet, Tup, Value, is_value, sorted_values

__all__ = ["Database"]


class Database:
    """A finite collection of ground facts, grouped by predicate."""

    def __init__(self, facts: Optional[Mapping[str, Iterable[Tuple[Value, ...]]]] = None):
        self._facts: Dict[str, Set[Tuple[Value, ...]]] = {}
        # Cached content hash; None = dirty.  Every mutator clears it
        # *before* touching the fact sets so there is no window in which
        # a stale fingerprint could be observed for mutated content (a
        # stale hit would poison the ground-program cache keyed on it).
        self._fingerprint: Optional[str] = None
        if facts:
            for predicate, rows in facts.items():
                for row in rows:
                    self.add(predicate, *row)

    # -- construction --------------------------------------------------------

    def add(self, predicate: str, *args: Value) -> "Database":
        """Add a ground fact ``predicate(args...)`` (mutating; returns self)."""
        for arg in args:
            if not is_value(arg):
                raise TypeError(f"fact argument is not a value: {arg!r}")
        self._fingerprint = None
        rows = self._facts.setdefault(predicate, set())
        if rows and len(next(iter(rows))) != len(args):
            raise ValueError(
                f"predicate {predicate} used with inconsistent arities"
            )
        rows.add(tuple(args))
        return self

    def declare(self, predicate: str) -> "Database":
        """Register a predicate with no facts yet (an empty relation is
        still part of the schema)."""
        self._fingerprint = None
        self._facts.setdefault(predicate, set())
        return self

    def remove(self, predicate: str, *args: Value) -> "Database":
        """Remove a ground fact (mutating; returns self).

        Symmetric with :meth:`add`; raises :class:`KeyError` when the
        fact is not present.  The predicate stays declared even when its
        last fact is removed — the empty relation remains in the schema.
        """
        rows = self._facts.get(predicate)
        row = tuple(args)
        if rows is None or row not in rows:
            raise KeyError(f"fact not present: {predicate}{row!r}")
        self._fingerprint = None
        rows.discard(row)
        return self

    def discard(self, predicate: str, *args: Value) -> "Database":
        """Remove a ground fact if present (mutating; returns self).

        Like :meth:`remove` but silent when the fact is absent — the
        set-style counterpart, used by idempotent update paths.
        """
        rows = self._facts.get(predicate)
        if rows is not None and tuple(args) in rows:
            self._fingerprint = None
            rows.discard(tuple(args))
        return self

    @classmethod
    def from_relations(cls, *relations: Relation) -> "Database":
        """Each named relation becomes a unary predicate of its members."""
        database = cls()
        for relation in relations:
            if relation.name is None:
                raise ValueError("relations stored in a database must be named")
            database.declare(relation.name)
            for member in relation.items:
                database.add(relation.name, member)
        return database

    def with_relation(self, relation: Relation) -> "Database":
        """A copy with ``relation`` added as a unary predicate."""
        clone = self.copy()
        if relation.name is None:
            raise ValueError("relation must be named")
        clone.declare(relation.name)
        for member in relation.items:
            clone.add(relation.name, member)
        return clone

    def copy(self) -> "Database":
        """An independent copy (shares the memoized fingerprint)."""
        clone = Database()
        clone._facts = {pred: set(rows) for pred, rows in self._facts.items()}
        clone._fingerprint = self._fingerprint
        return clone

    # -- access ---------------------------------------------------------------

    def predicates(self) -> FrozenSet[str]:
        """All predicates with facts (or declared)."""
        return frozenset(self._facts)

    def arity(self, predicate: str) -> Optional[int]:
        """Arity of a predicate, or None when empty."""
        rows = self._facts.get(predicate)
        if not rows:
            return None
        return len(next(iter(rows)))

    def rows(self, predicate: str) -> FrozenSet[Tuple[Value, ...]]:
        """The fact rows of a predicate."""
        return frozenset(self._facts.get(predicate, ()))

    def holds(self, predicate: str, *args: Value) -> bool:
        """Is the ground fact present?"""
        return tuple(args) in self._facts.get(predicate, ())

    def unary_relation(self, predicate: str) -> Relation:
        """Read a unary predicate back as a named algebraic relation."""
        members = []
        for row in self._facts.get(predicate, ()):
            if len(row) != 1:
                raise ValueError(f"predicate {predicate} is not unary")
            members.append(row[0])
        return Relation(members, name=predicate)

    def __contains__(self, predicate: str) -> bool:
        return predicate in self._facts

    def __iter__(self) -> Iterator[Tuple[str, Tuple[Value, ...]]]:
        for predicate in sorted(self._facts):
            for row in sorted(self._facts[predicate], key=lambda r: tuple(map(repr, r))):
                yield predicate, row

    def fact_count(self) -> int:
        """Total number of facts."""
        return sum(len(rows) for rows in self._facts.values())

    def fingerprint(self) -> str:
        """A stable content hash of the fact set.

        Two databases with the same predicates and rows (declared-empty
        predicates included) share a fingerprint; any insert or delete
        changes it.  The service layer keys its ground-program cache on
        this, so re-grounding is skipped when a database returns to a
        previously seen state.

        Memoized: the digest is computed at most once per content state
        (every mutator clears the cache, :meth:`copy` carries it over).
        """
        if self._fingerprint is not None:
            return self._fingerprint
        hasher = hashlib.sha256()
        for predicate in sorted(self._facts):
            hasher.update(predicate.encode("utf-8"))
            hasher.update(b"\x00")
            for row in sorted(self._facts[predicate], key=lambda r: tuple(map(repr, r))):
                hasher.update(repr(row).encode("utf-8"))
                hasher.update(b"\x01")
            hasher.update(b"\x02")
        self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    # -- the active domain -----------------------------------------------------

    def active_domain(self, deep: bool = True) -> FrozenSet[Value]:
        """All values appearing in facts.

        With ``deep=True`` (default) the components of tuples and members
        of set values are included too — the paper's range formulas allow
        variables to range over "components of database members".
        """
        domain: Set[Value] = set()

        def visit(value: Value) -> None:
            domain.add(value)
            if not deep:
                return
            if isinstance(value, Tup):
                for item in value.items:
                    visit(item)
            elif isinstance(value, FSet):
                for item in value.items:
                    visit(item)

        for rows in self._facts.values():
            for row in rows:
                for value in row:
                    visit(value)
        return frozenset(domain)

    def __repr__(self) -> str:
        parts = []
        for predicate in sorted(self._facts):
            parts.append(f"{predicate}/{self.arity(predicate)}:{len(self._facts[predicate])}")
        return f"<Database {' '.join(parts)}>"

    def pretty(self) -> str:
        """Render the facts in Datalog syntax."""
        lines = []
        for predicate, row in self:
            inner = ", ".join(str(v) for v in row)
            lines.append(f"{predicate}({inner}).")
        return "\n".join(lines)
