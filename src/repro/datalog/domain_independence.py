"""Domain (in)dependence of deductive queries (Section 4).

"Intuitively, domain independent queries use in the computation only a
part, a 'window', of the initial model, and are insensitive to the
properties of elements outside this window."

Domain independence is a *semantic* property and undecidable in general;
the paper handles it via the syntactic safety restriction (Definition
4.1, Proposition 4.2).  This module supplies both sides for the
executable setting:

* :func:`is_safe_hence_di` — the syntactic sufficient condition (safety);
* :func:`appears_domain_independent` — an empirical oracle: evaluate the
  (guarded) query over a chain of growing windows and report whether the
  answers stabilise.  Used by the test-suite to validate the safety
  checker in both directions on small universes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..relations.universe import FunctionRegistry, Universe
from ..relations.values import Atom, Value
from .ast import Program
from .database import Database
from .engine import run
from .safety import is_safe_program, make_safe

__all__ = [
    "is_safe_hence_di",
    "DomainIndependenceProbe",
    "appears_domain_independent",
]


def is_safe_hence_di(program: Program) -> bool:
    """Safety (Definition 4.1) implies domain independence."""
    return is_safe_program(program)


@dataclass
class DomainIndependenceProbe:
    """Evidence from the empirical oracle."""

    stable: bool
    windows: Tuple[int, ...]
    answers: Tuple[Dict[str, FrozenSet], ...]

    def first_divergence(self) -> Optional[Tuple[int, str]]:
        """(window-size, predicate) of the first observed change."""
        for earlier, later, size in zip(
            self.answers, self.answers[1:], self.windows[1:]
        ):
            for predicate in later:
                if earlier.get(predicate) != later[predicate]:
                    return size, predicate
        return None


def appears_domain_independent(
    program: Program,
    database: Database,
    paddings: Sequence[int] = (0, 2, 5),
    semantics: str = "wellfounded",
    registry: Optional[FunctionRegistry] = None,
    pad_prefix: str = "_di_pad",
) -> DomainIndependenceProbe:
    """Empirically probe domain independence.

    Evaluates the query guarded over windows of growing padding (active
    domain + n fresh atoms) and compares the answers.  Stability across
    all probed windows is *evidence of* — not proof of — domain
    independence; a divergence is a proof of domain *dependence*.
    """
    base = sorted(database.active_domain(), key=repr)
    answers: List[Dict[str, FrozenSet]] = []
    sizes: List[int] = []
    for padding in paddings:
        window = Universe(base + [Atom(f"{pad_prefix}{i}") for i in range(padding)])
        guarded = make_safe(program, window)
        outcome = run(guarded, database, semantics=semantics, registry=registry)
        answers.append(
            {
                predicate: outcome.true_rows(predicate)
                for predicate in program.idb_predicates()
            }
        )
        sizes.append(len(window))
    stable = all(answer == answers[0] for answer in answers[1:])
    return DomainIndependenceProbe(stable, tuple(sizes), tuple(answers))
