"""Grounding: from rule programs to propositional ground programs.

All the non-stratified semantics of this reproduction (inflationary,
well-founded, valid, stable) are computed over an interned propositional
*ground program*, in the ground-then-solve style of modern ASP systems.

Soundness of the relevant-atom grounding: in every semantics implemented
here, the true atoms are a subset of the least fixpoint of the *positive
projection* of the program (dropping negative literals only makes rules
easier to fire).  The grounder therefore derives exactly the atoms in that
over-approximation, instantiates rules whose positive bodies lie inside
it, and post-processes negative literals: a negative literal over an atom
outside the over-approximation is certainly true and is dropped.

Because the paper allows function symbols (``succ``, ``+2``, ...), the
over-approximation may be infinite.  The grounder takes explicit bounds
(``max_rounds``, ``max_atoms``) and reports whether it reached a genuine
fixpoint via :attr:`GroundProgram.complete`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..robustness import BudgetExceeded, EvaluationBudget, fault_point
from ..relations.universe import FunctionRegistry
from ..relations.values import Value, value_key
from .ast import (
    Comparison,
    Const,
    FuncTerm,
    Literal,
    PredAtom,
    Program,
    Rule,
    Term,
    Var,
    eval_term,
    term_vars,
)
from .database import Database

__all__ = [
    "GroundAtom",
    "GroundRule",
    "GroundProgram",
    "GroundingError",
    "UnsafeRuleError",
    "GroundingBudgetExceeded",
    "ground",
    "binding_order",
    "compiled_binding_order",
]


GroundAtom = Tuple[str, Tuple[Value, ...]]


class GroundingError(Exception):
    """Base class for grounding failures."""


class UnsafeRuleError(GroundingError):
    """A rule has no evaluable binding order (it is not range-restricted)."""


class GroundingBudgetExceeded(GroundingError, BudgetExceeded):
    """The relevant-atom closure exceeded the configured bounds.

    Raised only when ``ground`` is called with ``require_complete=True``;
    otherwise an incomplete :class:`GroundProgram` is returned with
    ``complete=False``.  Also a :class:`~repro.robustness.BudgetExceeded`,
    so callers can treat every resource exhaustion uniformly.
    """

    code = "grounding-budget-exceeded"


@dataclass(frozen=True, slots=True)
class GroundRule:
    """``head :- pos..., not neg...`` over interned atom ids."""

    head: int
    pos: Tuple[int, ...] = ()
    neg: Tuple[int, ...] = ()

    def is_fact(self) -> bool:
        """True when the body is empty."""
        return not self.pos and not self.neg


class _AtomTable:
    """Bidirectional interning of ground atoms."""

    def __init__(self) -> None:
        self._ids: Dict[GroundAtom, int] = {}
        self._atoms: List[GroundAtom] = []

    def intern(self, atom: GroundAtom) -> int:
        """Intern an atom, returning its id."""
        found = self._ids.get(atom)
        if found is not None:
            return found
        new_id = len(self._atoms)
        self._ids[atom] = new_id
        self._atoms.append(atom)
        return new_id

    def lookup(self, atom: GroundAtom) -> Optional[int]:
        """The id of an atom, or None if never interned."""
        return self._ids.get(atom)

    def decode(self, atom_id: int) -> GroundAtom:
        """The (predicate, args) of an atom id."""
        return self._atoms[atom_id]

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self):
        return iter(self._atoms)


@dataclass
class GroundProgram:
    """The propositional program the semantics engines consume."""

    rules: List[GroundRule]
    complete: bool
    idb_predicates: FrozenSet[str]
    _table: _AtomTable = field(repr=False)

    @property
    def atom_count(self) -> int:
        """Number of interned atoms."""
        return len(self._table)

    def decode(self, atom_id: int) -> GroundAtom:
        """The (predicate, args) of an atom id."""
        return self._table.decode(atom_id)

    def atom_id(self, predicate: str, args: Tuple[Value, ...]) -> Optional[int]:
        """The id of a ground atom, or None if it is not relevant
        (equivalently: it is false in every semantics)."""
        return self._table.lookup((predicate, tuple(args)))

    def atoms(self):
        """Iterate (atom_id, predicate, args)."""
        for atom_id in range(len(self._table)):
            predicate, args = self._table.decode(atom_id)
            yield atom_id, predicate, args

    def atoms_of(self, predicate: str) -> List[Tuple[int, Tuple[Value, ...]]]:
        """(id, args) pairs of a predicate's atoms."""
        return [
            (atom_id, args)
            for atom_id, pred, args in self.atoms()
            if pred == predicate
        ]

    def rows_where(self, truth, predicate: str) -> FrozenSet[Tuple[Value, ...]]:
        """Rows of ``predicate`` whose atom id satisfies ``truth(atom_id)``."""
        rows = set()
        for atom_id, pred, args in self.atoms():
            if pred == predicate and truth(atom_id):
                rows.add(args)
        return frozenset(rows)

    def pretty(self, limit: Optional[int] = None) -> str:
        """Render the ground rules (optionally truncated)."""
        lines = []
        for ground_rule in self.rules[: limit or len(self.rules)]:
            head = _format_atom(self.decode(ground_rule.head))
            body = [_format_atom(self.decode(a)) for a in ground_rule.pos]
            body += ["not " + _format_atom(self.decode(a)) for a in ground_rule.neg]
            lines.append(f"{head} :- {', '.join(body)}." if body else f"{head}.")
        if limit and len(self.rules) > limit:
            lines.append(f"... ({len(self.rules) - limit} more)")
        return "\n".join(lines)


def _format_atom(atom: GroundAtom) -> str:
    predicate, args = atom
    if not args:
        return predicate
    return f"{predicate}({', '.join(str(a) for a in args)})"


# ---------------------------------------------------------------------------
# Binding orders
# ---------------------------------------------------------------------------


def _literal_processable(literal: Literal, bound: Set[Var]) -> bool:
    """A positive literal is matchable when every non-variable argument's
    variables are either already bound or bound by variable arguments of
    this same literal."""
    newly_bound = set(bound)
    for arg in literal.atom.args:
        if isinstance(arg, Var):
            newly_bound.add(arg)
    for arg in literal.atom.args:
        if isinstance(arg, FuncTerm) and not term_vars(arg) <= newly_bound:
            return False
    return True


def _comparison_mode(comparison: Comparison, bound: Set[Var]) -> Optional[str]:
    """'assign-left' / 'assign-right' / 'test' / None (not processable)."""
    left_free = term_vars(comparison.left) - bound
    right_free = term_vars(comparison.right) - bound
    if not left_free and not right_free:
        return "test"
    if comparison.op != "=":
        return None
    if (
        isinstance(comparison.left, Var)
        and comparison.left in left_free
        and not right_free
    ):
        return "assign-left"
    if (
        isinstance(comparison.right, Var)
        and comparison.right in right_free
        and not left_free
    ):
        return "assign-right"
    return None


def binding_order(rule: Rule) -> List[Tuple[str, object]]:
    """Compute an evaluable processing order for a rule body.

    Returns a list of ``(kind, item)`` with kind in ``{'match', 'assign',
    'test', 'negtest'}``.  Raises :class:`UnsafeRuleError` when no order
    exists — which, by Definition 4.1, means the rule is not safe.
    """
    pending: List[object] = list(rule.body)
    order: List[Tuple[str, object]] = []
    bound: Set[Var] = set()

    while pending:
        progress = False
        for item in list(pending):
            if isinstance(item, Literal) and item.positive:
                if _literal_processable(item, bound):
                    order.append(("match", item))
                    bound |= item.vars()
                    pending.remove(item)
                    progress = True
                    break
            elif isinstance(item, Comparison):
                mode = _comparison_mode(item, bound)
                if mode == "test":
                    order.append(("test", item))
                    pending.remove(item)
                    progress = True
                    break
                if mode in ("assign-left", "assign-right"):
                    order.append(("assign", (mode, item)))
                    bound |= item.vars()
                    pending.remove(item)
                    progress = True
                    break
            elif isinstance(item, Literal) and not item.positive:
                if item.vars() <= bound:
                    order.append(("negtest", item))
                    pending.remove(item)
                    progress = True
                    break
        if not progress:
            raise UnsafeRuleError(
                f"rule has no evaluable binding order (unsafe): {rule!r}"
            )

    head_free = rule.head.vars() - bound
    if head_free:
        raise UnsafeRuleError(
            f"head variables {sorted(v.name for v in head_free)} are not "
            f"restricted by the body: {rule!r}"
        )
    return order


@lru_cache(maxsize=4096)
def _compiled_order(rule: Rule) -> Tuple[Tuple[str, object], ...]:
    return tuple(binding_order(rule))


def compiled_binding_order(rule: Rule) -> Tuple[Tuple[str, object], ...]:
    """Memoized :func:`binding_order`.

    Rules are immutable and hashable, so repeated evaluations of the
    same program (the grounder, the direct engine, and the service
    layer's prepared plans) share one compiled order per rule instead of
    re-deriving it on every call.
    """
    return _compiled_order(rule)


# ---------------------------------------------------------------------------
# Comparison evaluation
# ---------------------------------------------------------------------------


def _compare(op: str, left: Value, right: Value) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    comparable = (
        isinstance(left, int)
        and isinstance(right, int)
        and not isinstance(left, bool)
        and not isinstance(right, bool)
    ) or (isinstance(left, str) and isinstance(right, str))
    if not comparable:
        return False
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"unknown comparison {op!r}")


# ---------------------------------------------------------------------------
# The grounder
# ---------------------------------------------------------------------------


class _Grounder:
    def __init__(
        self,
        program: Program,
        database: Database,
        registry: Optional[FunctionRegistry],
        max_rounds: int,
        max_atoms: int,
        budget: Optional[EvaluationBudget] = None,
    ):
        self.program = program
        self.database = database
        self.registry = registry
        self.max_rounds = max_rounds
        self.max_atoms = max_atoms
        self.budget = budget
        self.table = _AtomTable()
        self.possible: Dict[str, Set[Tuple[Value, ...]]] = {}
        # Per-predicate, per-argument-position index: (position, value) →
        # rows.  Makes bound-argument literal matching sub-linear.
        self.index: Dict[str, Dict[Tuple[int, Value], Set[Tuple[Value, ...]]]] = {}
        self.ground_rules: Set[Tuple] = set()
        self.ordered_rules = [
            (rule, compiled_binding_order(rule)) for rule in program.rules
        ]
        self.idb = program.idb_predicates()

    # -- possible-atom bookkeeping -------------------------------------------

    def _rows(self, predicate: str) -> Set[Tuple[Value, ...]]:
        return self.possible.setdefault(predicate, set())

    def _add_possible(self, predicate: str, args: Tuple[Value, ...]) -> bool:
        rows = self._rows(predicate)
        if args in rows:
            return False
        if self.budget is not None:
            self.budget.tick()
            self.budget.charge_facts()
        rows.add(args)
        index = self.index.setdefault(predicate, {})
        for position, value in enumerate(args):
            index.setdefault((position, value), set()).add(args)
        return True

    def _candidate_rows(
        self,
        literal: Literal,
        binding: Dict[Var, Value],
        rows: Set[Tuple[Value, ...]],
        use_index: bool,
    ):
        """Rows worth matching against ``literal``: the smallest index
        bucket over its already-bound argument positions, else all rows."""
        if not use_index:
            return rows
        index = self.index.get(literal.atom.predicate)
        if not index:
            return rows
        best = rows
        for position, arg in enumerate(literal.atom.args):
            value: Optional[Value] = None
            if isinstance(arg, Const):
                value = arg.value
            elif isinstance(arg, Var) and arg in binding:
                value = binding[arg]
            if value is None:
                continue
            bucket = index.get((position, value))
            if bucket is None:
                return ()
            if len(bucket) < len(best):
                best = bucket
        return best

    def _total_atoms(self) -> int:
        return sum(len(rows) for rows in self.possible.values())

    # -- matching -------------------------------------------------------------

    def _match_literal(
        self,
        literal: Literal,
        binding: Dict[Var, Value],
        rows: Sequence[Tuple[Value, ...]],
    ):
        """Yield extended bindings matching ``literal`` against ``rows``."""
        args = literal.atom.args
        for row in rows:
            if len(row) != len(args):
                continue
            extended = dict(binding)
            ok = True
            deferred: List[Tuple[Term, Value]] = []
            for arg, value in zip(args, row):
                if isinstance(arg, Var):
                    if arg in extended:
                        if extended[arg] != value:
                            ok = False
                            break
                    else:
                        extended[arg] = value
                elif isinstance(arg, Const):
                    if arg.value != value:
                        ok = False
                        break
                else:
                    deferred.append((arg, value))
            if not ok:
                continue
            for term, value in deferred:
                evaluated = eval_term(term, extended, self.registry)
                if evaluated != value:
                    ok = False
                    break
            if ok:
                yield extended

    def _instantiate(
        self,
        rule: Rule,
        order: List[Tuple[str, object]],
        delta_literal: Optional[int],
        delta: Dict[str, Set[Tuple[Value, ...]]],
    ):
        """Backtracking instantiation.  ``delta_literal`` selects which
        positive-match step must bind against the delta (semi-naive)."""
        results: List[Tuple[Dict[Var, Value], List[GroundAtom], List[GroundAtom]]] = []

        def walk(step: int, binding: Dict[Var, Value], pos_atoms, neg_atoms, match_seen):
            if step == len(order):
                results.append((binding, list(pos_atoms), list(neg_atoms)))
                return
            kind, payload = order[step]
            if kind == "match":
                literal: Literal = payload
                predicate = literal.atom.predicate
                use_delta = match_seen == delta_literal
                if use_delta:
                    rows = delta.get(predicate, set())
                else:
                    rows = self._candidate_rows(
                        literal, binding, self._rows(predicate), True
                    )
                for extended in self._match_literal(literal, binding, list(rows)):
                    ground_args = tuple(
                        eval_term(arg, extended, self.registry)
                        for arg in literal.atom.args
                    )
                    walk(
                        step + 1,
                        extended,
                        pos_atoms + [(predicate, ground_args)],
                        neg_atoms,
                        match_seen + 1,
                    )
                return
            if kind == "assign":
                mode, comparison = payload
                if mode == "assign-left":
                    variable, expr = comparison.left, comparison.right
                else:
                    variable, expr = comparison.right, comparison.left
                value = eval_term(expr, binding, self.registry)
                if value is None:
                    return
                extended = dict(binding)
                extended[variable] = value
                walk(step + 1, extended, pos_atoms, neg_atoms, match_seen)
                return
            if kind == "test":
                comparison = payload
                left = eval_term(comparison.left, binding, self.registry)
                right = eval_term(comparison.right, binding, self.registry)
                if left is None or right is None:
                    return
                if _compare(comparison.op, left, right):
                    walk(step + 1, binding, pos_atoms, neg_atoms, match_seen)
                return
            if kind == "negtest":
                literal = payload
                ground_args = tuple(
                    eval_term(arg, binding, self.registry)
                    for arg in literal.atom.args
                )
                if any(value is None for value in ground_args):
                    return
                walk(
                    step + 1,
                    binding,
                    pos_atoms,
                    neg_atoms + [(literal.atom.predicate, ground_args)],
                    match_seen,
                )
                return
            raise AssertionError(kind)

        walk(0, {}, [], [], 0)
        return results

    # -- the main loop ----------------------------------------------------------

    def run(self) -> Tuple[bool, List[Tuple[GroundAtom, Tuple[GroundAtom, ...], Tuple[GroundAtom, ...]]]]:
        """Run the closure; returns (complete?, collected rule instances)."""
        for predicate in self.database.predicates():
            for row in self.database.rows(predicate):
                self._add_possible(predicate, row)

        collected: Set[Tuple] = set()
        delta: Dict[str, Set[Tuple[Value, ...]]] = {
            predicate: set(rows) for predicate, rows in self.possible.items()
        }
        first_round = True
        complete = False

        for _round in range(self.max_rounds):
            fault_point("grounder.round")
            if self.budget is not None:
                self.budget.note_iteration(phase="grounding")
            new_delta: Dict[str, Set[Tuple[Value, ...]]] = {}
            produced_any = False
            for rule, order in self.ordered_rules:
                match_count = sum(1 for kind, _p in order if kind == "match")
                if first_round:
                    # Naive first pass: every match joins against the full
                    # possible-atom sets (delta_literal=None).
                    variants: List[Optional[int]] = [None]
                elif match_count == 0:
                    # Body has no positive literals; nothing new can fire it.
                    continue
                else:
                    # Semi-naive: one variant per choice of which positive
                    # literal must bind against last round's delta.
                    variants = list(range(match_count))
                for delta_literal in variants:
                    for binding, pos_atoms, neg_atoms in self._instantiate(
                        rule, order, delta_literal, delta
                    ):
                        head_args = tuple(
                            eval_term(arg, binding, self.registry)
                            for arg in rule.head.args
                        )
                        if any(value is None for value in head_args):
                            continue
                        head_atom = (rule.head.predicate, head_args)
                        key = (head_atom, tuple(pos_atoms), tuple(sorted(neg_atoms, key=_atom_sort_key)))
                        if key not in collected:
                            collected.add(key)
                        if self._add_possible(*head_atom):
                            produced_any = True
                            new_delta.setdefault(head_atom[0], set()).add(head_atom[1])
            if self._total_atoms() > self.max_atoms:
                complete = False
                break
            first_round = False
            if not produced_any:
                complete = True
                break
            delta = new_delta
        else:
            complete = False

        return complete, [
            (head, pos_atoms, neg_atoms) for head, pos_atoms, neg_atoms in collected
        ]


def _atom_sort_key(atom: GroundAtom):
    predicate, args = atom
    return (predicate, tuple(value_key(arg) for arg in args))


def ground(
    program: Program,
    database: Database,
    registry: Optional[FunctionRegistry] = None,
    max_rounds: int = 10_000,
    max_atoms: int = 1_000_000,
    require_complete: bool = True,
    budget: Optional[EvaluationBudget] = None,
) -> GroundProgram:
    """Ground ``program`` against ``database``.

    The result contains the EDB facts as bodiless ground rules, every
    relevant rule instance, and negative literals filtered down to atoms
    that are possibly true (others are certainly false, hence satisfied).

    ``budget`` governs the closure with deadline/step/fact bounds on top
    of ``max_rounds``/``max_atoms`` — a divergent ``succ``-style program
    stops with a structured error instead of exhausting the round cap.
    """
    grounder = _Grounder(program, database, registry, max_rounds, max_atoms, budget)
    complete, raw_rules = grounder.run()
    if require_complete and not complete:
        raise GroundingBudgetExceeded(
            f"grounding did not converge within max_rounds={max_rounds}, "
            f"max_atoms={max_atoms}; pass require_complete=False to accept "
            f"a bounded approximation"
        )

    table = grounder.table
    possible = grounder.possible
    ground_rules: List[GroundRule] = []
    seen: Set[Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = set()

    # EDB facts.
    for predicate in database.predicates():
        for row in database.rows(predicate):
            atom_id = table.intern((predicate, row))
            key = (atom_id, (), ())
            if key not in seen:
                seen.add(key)
                ground_rules.append(GroundRule(atom_id))

    for head, pos_atoms, neg_atoms in raw_rules:
        head_id = table.intern(head)
        pos_ids = tuple(table.intern(atom) for atom in pos_atoms)
        kept_neg: List[int] = []
        for atom in neg_atoms:
            predicate, args = atom
            if args in possible.get(predicate, ()):  # possibly true: keep
                kept_neg.append(table.intern(atom))
            # otherwise: certainly false, negative literal certainly holds.
        key = (head_id, pos_ids, tuple(sorted(kept_neg)))
        if key not in seen:
            seen.add(key)
            ground_rules.append(GroundRule(head_id, pos_ids, tuple(sorted(kept_neg))))

    return GroundProgram(
        rules=ground_rules,
        complete=complete,
        idb_predicates=program.idb_predicates(),
        _table=table,
    )
