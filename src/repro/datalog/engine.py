"""Front door for running deductive queries.

``run(program, database, semantics=...)`` grounds the program and applies
the requested semantics, returning a :class:`QueryResult` that exposes
per-predicate true/false/undefined rows — the answer format of a
deductive query "R(x)?" (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ..robustness import EvaluationBudget
from ..relations.relation import Relation
from ..relations.universe import FunctionRegistry
from ..relations.values import Value
from .ast import Program
from .database import Database
from .grounding import GroundProgram, ground
from .semantics.inflationary import inflationary_model
from .semantics.interpretations import Interpretation, Truth
from .semantics.stratified import stratified_model
from .semantics.valid import valid_model
from .semantics.wellfounded import well_founded_model

__all__ = ["SEMANTICS", "QueryResult", "run"]

SEMANTICS = ("stratified", "inflationary", "wellfounded", "valid")


@dataclass(frozen=True)
class QueryResult:
    """The (possibly three-valued) outcome of a deductive query."""

    program: Program
    ground_program: GroundProgram
    interpretation: Interpretation
    semantics: str

    def true_rows(self, predicate: str) -> FrozenSet[Tuple[Value, ...]]:
        """Rows of a predicate that are certainly true."""
        return self.interpretation.true_rows(self.ground_program, predicate)

    def undefined_rows(self, predicate: str) -> FrozenSet[Tuple[Value, ...]]:
        """Rows of a predicate with undefined status."""
        return self.interpretation.undefined_rows(self.ground_program, predicate)

    def truth_of(self, predicate: str, *args: Value) -> Truth:
        """Truth value of a ground atom.

        Atoms the grounder proved irrelevant are FALSE (they have no
        possible derivation).
        """
        atom_id = self.ground_program.atom_id(predicate, tuple(args))
        if atom_id is None:
            return Truth.FALSE
        return self.interpretation.value_of(atom_id)

    def is_total(self) -> bool:
        """Is the model two-valued on every relevant atom?"""
        return self.interpretation.is_total_for(self.ground_program)

    def unary_relation(self, predicate: str) -> Relation:
        """Read a unary predicate's true rows back as a relation."""
        return Relation(
            (row[0] for row in self.true_rows(predicate)), name=predicate
        )


def run(
    program: Program,
    database: Optional[Database] = None,
    semantics: str = "valid",
    registry: Optional[FunctionRegistry] = None,
    max_rounds: int = 10_000,
    max_atoms: int = 1_000_000,
    require_complete: bool = True,
    ground_program: Optional[GroundProgram] = None,
    budget: Optional[EvaluationBudget] = None,
) -> QueryResult:
    """Ground ``program`` over ``database`` and evaluate it.

    ``semantics`` is one of :data:`SEMANTICS`.  The stratified engine
    raises for non-stratified programs; the others accept any program.

    ``ground_program`` skips the grounding phase entirely — the caller
    vouches that it is ``ground(program, database, ...)``.  The service
    layer uses this to reuse a cached grounding (keyed by the database
    fingerprint) across semantics and repeated queries.

    ``budget`` is one :class:`~repro.robustness.EvaluationBudget` shared
    by the grounding and solving phases, so deadlines and step bounds
    apply to the query as a whole.
    """
    if semantics not in SEMANTICS:
        raise ValueError(f"unknown semantics {semantics!r}; pick from {SEMANTICS}")
    database = database or Database()
    if ground_program is None:
        ground_program = ground(
            program,
            database,
            registry=registry,
            max_rounds=max_rounds,
            max_atoms=max_atoms,
            require_complete=require_complete,
            budget=budget,
        )
    if semantics == "stratified":
        interpretation = stratified_model(program, ground_program, budget)
    elif semantics == "inflationary":
        interpretation = inflationary_model(ground_program, budget)
    elif semantics == "wellfounded":
        interpretation = well_founded_model(ground_program, budget)
    else:
        interpretation = valid_model(ground_program, budget)
    return QueryResult(program, ground_program, interpretation, semantics)
