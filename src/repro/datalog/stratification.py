"""Stratification analysis.

The paper's earlier equivalence result (Theorem 4.3) concerns *stratified*
programs: programs whose predicate dependency graph has no cycle through a
negative edge.  This module builds the dependency graph, tests
stratification, computes strata, and additionally tests *local*
stratification on ground programs (used in the Theorem 3.1 discussion:
IFP-algebra specifications are well-defined by a "local stratification"
argument, while Example 3's WIN equation is locally stratified exactly
when MOVE is acyclic).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import networkx as nx

from .ast import Program
from .grounding import GroundProgram

__all__ = [
    "NotStratifiedError",
    "dependency_graph",
    "negative_edges",
    "is_stratified",
    "stratify",
    "strata_partition",
    "ground_dependency_graph",
    "is_locally_stratified",
    "explain_undefined",
]


class NotStratifiedError(ValueError):
    """Raised when strata are requested for a non-stratified program."""


def dependency_graph(program: Program) -> nx.DiGraph:
    """Predicate dependency graph: edge ``q → p`` when ``q`` occurs in the
    body of a rule for ``p``; the edge attribute ``negative`` records
    whether any such occurrence is negated."""
    graph = nx.DiGraph()
    for rule in program.rules:
        graph.add_node(rule.head.predicate)
        for literal in rule.positive_literals():
            _add_edge(graph, literal.atom.predicate, rule.head.predicate, False)
        for literal in rule.negative_literals():
            _add_edge(graph, literal.atom.predicate, rule.head.predicate, True)
    return graph


def _add_edge(graph: nx.DiGraph, source: str, target: str, negative: bool) -> None:
    if graph.has_edge(source, target):
        graph[source][target]["negative"] = graph[source][target]["negative"] or negative
    else:
        graph.add_edge(source, target, negative=negative)


def negative_edges(graph: nx.DiGraph) -> List[Tuple[str, str]]:
    """Edges carrying a negated dependency."""
    return [
        (source, target)
        for source, target, data in graph.edges(data=True)
        if data.get("negative")
    ]


def is_stratified(program: Program) -> bool:
    """True iff no cycle of the dependency graph passes through negation."""
    graph = dependency_graph(program)
    component_of: Dict[str, int] = {}
    for index, component in enumerate(nx.strongly_connected_components(graph)):
        for node in component:
            component_of[node] = index
    for source, target in negative_edges(graph):
        if component_of[source] == component_of[target]:
            return False
    return True


def stratify(program: Program) -> Dict[str, int]:
    """Assign each predicate a stratum (0-based).

    Positive dependencies may stay level; negative dependencies must strictly
    increase.  Raises :class:`NotStratifiedError` when impossible.
    """
    if not is_stratified(program):
        raise NotStratifiedError(f"program {program.name or ''} is not stratified")
    graph = dependency_graph(program)
    condensation = nx.condensation(graph)
    level: Dict[int, int] = {}
    for component_id in nx.topological_sort(condensation):
        best = 0
        for predecessor in condensation.predecessors(component_id):
            members_pred = condensation.nodes[predecessor]["members"]
            members_this = condensation.nodes[component_id]["members"]
            negative = any(
                graph.has_edge(source, target) and graph[source][target]["negative"]
                for source in members_pred
                for target in members_this
            )
            bump = 1 if negative else 0
            best = max(best, level[predecessor] + bump)
        level[component_id] = best
    strata: Dict[str, int] = {}
    for component_id, data in condensation.nodes(data=True):
        for predicate in data["members"]:
            strata[predicate] = level[component_id]
    # EDB predicates never at a positive level unless forced by the graph.
    for predicate in program.edb_predicates():
        strata.setdefault(predicate, 0)
    return strata


def strata_partition(program: Program) -> List[FrozenSet[str]]:
    """Predicates grouped by stratum, lowest first."""
    strata = stratify(program)
    height = max(strata.values(), default=0)
    return [
        frozenset(p for p, s in strata.items() if s == level)
        for level in range(height + 1)
    ]


def ground_dependency_graph(program: GroundProgram) -> nx.DiGraph:
    """Atom-level dependency graph of a ground program."""
    graph = nx.DiGraph()
    for rule in program.rules:
        graph.add_node(rule.head)
        for atom in rule.pos:
            _add_ground_edge(graph, atom, rule.head, False)
        for atom in rule.neg:
            _add_ground_edge(graph, atom, rule.head, True)
    return graph


def _add_ground_edge(graph: nx.DiGraph, source: int, target: int, negative: bool) -> None:
    if graph.has_edge(source, target):
        graph[source][target]["negative"] = graph[source][target]["negative"] or negative
    else:
        graph.add_edge(source, target, negative=negative)


def explain_undefined(program: GroundProgram, atom_id: int) -> Optional[List[str]]:
    """A negative cycle through ``atom_id`` in the ground dependency
    graph, rendered as atom strings — the structural reason a membership
    can come out undefined under the valid/well-founded semantics.

    Returns None when the atom lies on no cycle through negation (its
    truth value, whatever it is, has a stratified explanation).
    """
    graph = ground_dependency_graph(program)
    if atom_id not in graph:
        return None
    for component in nx.strongly_connected_components(graph):
        if atom_id not in component:
            continue
        negative_inside = [
            (source, target)
            for source, target, data in graph.edges(data=True)
            if data.get("negative") and source in component and target in component
        ]
        if not negative_inside:
            return None
        # Build a cycle through atom_id and one negative edge.
        source, target = negative_inside[0]
        try:
            to_source = nx.shortest_path(graph.subgraph(component), atom_id, source)
            back_home = nx.shortest_path(graph.subgraph(component), target, atom_id)
        except nx.NetworkXNoPath:  # pragma: no cover — SCC guarantees paths
            return None
        cycle_ids = to_source + back_home
        rendered = []
        for node in cycle_ids:
            predicate, args = program.decode(node)
            inner = ", ".join(str(a) for a in args)
            rendered.append(f"{predicate}({inner})" if args else predicate)
        return rendered
    return None


def is_locally_stratified(program: GroundProgram) -> bool:
    """True iff the *ground* dependency graph has no negative cycle.

    Local stratification is the argument behind Theorem 3.1 (IFP-algebra
    operations are well-defined) and explains Example 3: the WIN equation
    is locally stratified iff the MOVE graph is acyclic.  On locally
    stratified ground programs the well-founded/valid model is total.
    """
    graph = ground_dependency_graph(program)
    component_of: Dict[int, int] = {}
    for index, component in enumerate(nx.strongly_connected_components(graph)):
        for node in component:
            component_of[node] = index
    for source, target, data in graph.edges(data=True):
        if data.get("negative") and component_of[source] == component_of[target]:
            return False
    return True
