"""The deductive-database engine (Section 4 of the paper)."""

from .ast import (
    Comparison,
    Const,
    FuncTerm,
    Literal,
    PredAtom,
    Program,
    Rule,
    Var,
    eq,
    fact,
    neg,
    neq,
    pos,
    rule,
)
from .database import Database
from .engine import SEMANTICS, QueryResult, run
from .grounding import (
    GroundingBudgetExceeded,
    GroundingError,
    GroundProgram,
    GroundRule,
    UnsafeRuleError,
    ground,
)
from .seminaive import DirectEvaluator, seminaive_stratified
from .domain_independence import (
    DomainIndependenceProbe,
    appears_domain_independent,
    is_safe_hence_di,
)
from .stratification import (
    NotStratifiedError,
    dependency_graph,
    is_locally_stratified,
    is_stratified,
    strata_partition,
    stratify,
)

__all__ = [
    "Var",
    "Const",
    "FuncTerm",
    "PredAtom",
    "Literal",
    "Comparison",
    "Rule",
    "Program",
    "pos",
    "neg",
    "eq",
    "neq",
    "rule",
    "fact",
    "Database",
    "ground",
    "GroundProgram",
    "GroundRule",
    "GroundingError",
    "GroundingBudgetExceeded",
    "UnsafeRuleError",
    "run",
    "QueryResult",
    "SEMANTICS",
    "dependency_graph",
    "is_stratified",
    "stratify",
    "strata_partition",
    "is_locally_stratified",
    "NotStratifiedError",
    "DomainIndependenceProbe",
    "appears_domain_independent",
    "is_safe_hence_di",
    "DirectEvaluator",
    "seminaive_stratified",
]
