"""Semiring-annotated evaluation of stratified programs (K-relations).

The boolean engines answer "is this row derivable?"; the annotated
evaluator answers "with what annotation?" over any commutative semiring
(:mod:`repro.semiring`).  A rule body multiplies (``⊗``) the
annotations of its matched literals, alternative derivations of the
same head row add (``⊕``), and EDB facts contribute their explicit
annotation or the semiring's ``from_edb`` default.

Evaluation is stratum-wise Jacobi iteration: within a stratum, every
round recomputes each head predicate's full annotation map from the
previous round's maps (plus the finished lower strata), until a round
is a fixpoint.  This is the classical algebraic fixpoint for
ω-continuous semirings; convergence per shipped semiring:

* ``bool`` / ``why`` — idempotent and finite-carrier: always converges
  (round k holds the derivations of depth ≤ k; both stabilize once
  every row's witness set is saturated).
* ``tropical`` — non-negative weights make each row's value a
  non-increasing sequence over a finite set of path costs
  (Bellman–Ford); converges in ≤ |rows| rounds.
* ``naturals`` — converges exactly when the derivation space is finite
  (e.g. recursion over acyclic data).  A cyclic derivation space has
  no finite bag annotation; the round cap then raises
  :class:`~repro.robustness.BudgetExceeded` rather than looping.

Negation stays boolean: a negative literal is a gate (row absent from
the lower stratum ⇒ the derivation goes through unweighted, present ⇒
it is killed).  This is the standard why-provenance treatment — only
positive support is tracked.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..relations.universe import FunctionRegistry
from ..relations.values import Value
from ..robustness import BudgetExceeded, EvaluationBudget
from ..semiring import Semiring
from .ast import Const, Literal, Program, Rule, Var, eval_term
from .database import Database
from .grounding import compiled_binding_order, _compare
from .stratification import stratify

__all__ = ["AnnotationMap", "WeightedEvaluator", "annotated_model", "edb_annotations"]

Row = Tuple[Value, ...]
#: predicate → row → annotation (zero-free: stored rows are non-zero).
AnnotationMap = Dict[str, Dict[Row, object]]
#: ``source(match_index, literal)`` → the row→annotation map that match
#: literal reads — the hook the delta disciplines plug into.
RowSource = Callable[[int, Literal], Mapping[Row, object]]


def edb_annotations(database: Database, semiring: Semiring) -> AnnotationMap:
    """The K-relation of the EDB: explicit annotations where supplied,
    the semiring's ``from_edb`` default elsewhere; zeros dropped."""
    maps: AnnotationMap = {}
    for predicate in database.predicates():
        explicit = database.annotations(predicate)
        bucket: Dict[Row, object] = {}
        for row in database.rows(predicate):
            annotation = explicit.get(row)
            if annotation is None:
                annotation = semiring.from_edb(predicate, row)
            if not semiring.is_zero(annotation):
                bucket[row] = annotation
        maps[predicate] = bucket
    return maps


class WeightedEvaluator:
    """Annotation maps plus the weighted rule-firing walker.

    The walker mirrors :class:`~repro.datalog.seminaive.DirectEvaluator`
    step-for-step over the compiled binding order, but each ``match``
    step multiplies the row's annotation into the running weight, and
    firing yields ``(head_row, weight)`` products instead of bare rows.
    """

    def __init__(self, registry: Optional[FunctionRegistry], semiring: Semiring):
        self.registry = registry
        self.semiring = semiring
        self.maps: AnnotationMap = {}

    def annotations(self, predicate: str) -> Dict[Row, object]:
        """Current row → annotation map of a predicate."""
        return self.maps.setdefault(predicate, {})

    def _match_row(
        self, literal: Literal, binding: Dict[Var, Value], row: Row
    ) -> Optional[Dict[Var, Value]]:
        args = literal.atom.args
        if len(row) != len(args):
            return None
        extended = dict(binding)
        deferred = []
        for arg, value in zip(args, row):
            if isinstance(arg, Var):
                if arg in extended:
                    if extended[arg] != value:
                        return None
                else:
                    extended[arg] = value
            elif isinstance(arg, Const):
                if arg.value != value:
                    return None
            else:
                deferred.append((arg, value))
        for term, value in deferred:
            if eval_term(term, extended, self.registry) != value:
                return None
        return extended

    def fire(
        self,
        rule: Rule,
        order,
        source: RowSource,
        budget: Optional[EvaluationBudget] = None,
    ) -> List[Tuple[Row, object]]:
        """All ``(head_row, weight)`` products of one rule.

        ``source`` picks the row/annotation map each positive match
        literal reads (by its 0-based match index) — the from-scratch
        fixpoint reads the evaluator's own maps everywhere, the delta
        discipline substitutes new/delta/old views per position.
        Negative literals gate on the evaluator's maps (the negated
        predicate is finished by stratification).
        """
        semiring = self.semiring
        produced: List[Tuple[Row, object]] = []
        if budget is not None:
            budget.tick(phase="annotated")

        def walk(step: int, binding: Dict[Var, Value], weight, match_seen: int) -> None:
            if step == len(order):
                head_row = tuple(
                    eval_term(arg, binding, self.registry) for arg in rule.head.args
                )
                if all(value is not None for value in head_row):
                    if budget is not None:
                        budget.tick()
                    produced.append((head_row, weight))
                return
            kind, payload = order[step]
            if kind == "match":
                literal: Literal = payload
                rows = source(match_seen, literal)
                for row, annotation in list(rows.items()):
                    extended = self._match_row(literal, binding, row)
                    if extended is not None:
                        walk(
                            step + 1,
                            extended,
                            semiring.mul(weight, annotation),
                            match_seen + 1,
                        )
                return
            if kind == "assign":
                mode, comparison = payload
                if mode == "assign-left":
                    variable, expr = comparison.left, comparison.right
                else:
                    variable, expr = comparison.right, comparison.left
                value = eval_term(expr, binding, self.registry)
                if value is None:
                    return
                extended = dict(binding)
                extended[variable] = value
                walk(step + 1, extended, weight, match_seen)
                return
            if kind == "test":
                comparison = payload
                left = eval_term(comparison.left, binding, self.registry)
                right = eval_term(comparison.right, binding, self.registry)
                if left is not None and right is not None and _compare(
                    comparison.op, left, right
                ):
                    walk(step + 1, binding, weight, match_seen)
                return
            if kind == "negtest":
                literal = payload
                row = tuple(
                    eval_term(arg, binding, self.registry)
                    for arg in literal.atom.args
                )
                if any(value is None for value in row):
                    return
                if row not in self.annotations(literal.atom.predicate):
                    walk(step + 1, binding, weight, match_seen)
                return
            raise AssertionError(kind)

        walk(0, {}, semiring.one, 0)
        return produced


def annotated_model(
    program: Program,
    database: Database,
    semiring: Semiring,
    registry: Optional[FunctionRegistry] = None,
    strata: Optional[Mapping[str, int]] = None,
    max_rounds: int = 10_000,
    budget: Optional[EvaluationBudget] = None,
) -> AnnotationMap:
    """The annotated least model of a stratified program.

    Returns predicate → row → annotation for IDB and EDB predicates
    alike (EDB rows carry their effective base annotations; an IDB
    predicate that also has EDB facts combines them with ``⊕``).  The
    support — the set of non-zero rows — coincides with the boolean
    model for every shipped semiring, since none has zero-divisors and
    all default EDB annotations are non-zero.

    Raises :class:`~repro.robustness.BudgetExceeded` when a stratum
    fails to stabilize within ``max_rounds`` — for the naturals this is
    the documented divergence of bag semantics over a cyclic derivation
    space, not a tuning problem.
    """
    if strata is None:
        strata = stratify(program)
    height = max(strata.values(), default=0)

    edb = edb_annotations(database, semiring)
    state = WeightedEvaluator(registry, semiring)
    state.maps = {predicate: dict(rows) for predicate, rows in edb.items()}

    def read_state(_index: int, literal: Literal) -> Mapping[Row, object]:
        return state.annotations(literal.atom.predicate)

    for level in range(height + 1):
        level_rules = [
            (rule, compiled_binding_order(rule))
            for rule in program.rules
            if strata[rule.head.predicate] == level
        ]
        if not level_rules:
            continue
        heads = {rule.head.predicate for rule, _order in level_rules}
        for _round in range(max_rounds):
            if budget is not None:
                budget.note_iteration(stratum=level, phase="annotated")
            current = {
                predicate: state.maps.get(predicate, {}) for predicate in heads
            }
            fresh: Dict[str, Dict[Row, object]] = {
                predicate: dict(edb.get(predicate, {})) for predicate in heads
            }
            for rule, order in level_rules:
                for head_row, weight in state.fire(rule, order, read_state, budget):
                    if semiring.is_zero(weight):
                        continue
                    bucket = fresh[rule.head.predicate]
                    previous = bucket.get(head_row)
                    bucket[head_row] = (
                        weight
                        if previous is None
                        else semiring.add(previous, weight)
                    )
            for predicate in heads:
                fresh[predicate] = {
                    row: annotation
                    for row, annotation in fresh[predicate].items()
                    if not semiring.is_zero(annotation)
                }
            if all(fresh[predicate] == current[predicate] for predicate in heads):
                break
            for predicate in heads:
                if budget is not None:
                    grown = len(fresh[predicate]) - len(current[predicate])
                    for _ in range(max(0, grown)):
                        budget.charge_facts()
                state.maps[predicate] = fresh[predicate]
        else:
            raise BudgetExceeded(
                f"annotated stratum {level} did not stabilize within "
                f"{max_rounds} rounds under semiring {semiring.name!r} — "
                "for non-idempotent semirings (naturals) this is the "
                "documented divergence over a cyclic derivation space",
                progress=budget.progress if budget is not None else None,
            )

    return {predicate: dict(rows) for predicate, rows in state.maps.items()}
