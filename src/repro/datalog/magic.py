"""Magic-sets / demand transform: goal-directed evaluation of safe rules.

Full materialization answers a point query ("is ``tc(a, b)`` true?") by
deriving *every* fact of the view.  The magic-sets transform rewrites a
program for one *binding pattern* — an adornment string such as ``"bf"``
marking which query arguments arrive bound — so that bottom-up
evaluation of the rewritten program derives only the facts reachable
from the demanded constants, while computing exactly the same answers
for atoms matching the pattern.  The rewritten program is ordinary safe
stratified datalog: the existing stratification, semi-naive and
delta-stream machinery evaluate it unchanged.

Sideways information passing (SIPS)
-----------------------------------

This implementation uses the **left-to-right** SIPS over the rule body
as written: walking the body, a positive literal passes the bindings of
its variable arguments rightward, and an ``=`` comparison that acts as
an assignment (one unbound variable, other side fully bound) passes its
variable.  An occurrence argument is *bound* when all its variables are
bound at that point.  This matches the grounding order the engines
already use for safe rules (Definition 4.1's construction reading) and
keeps every generated rule safe — see :func:`restricted_vars`.

Predicate naming
----------------

For an original predicate ``p`` and adornment ``a`` (over ``b``/``f``):

* ``p@a``   — the adorned copy of ``p``, restricted to demanded atoms;
* ``m@p@a`` — the magic predicate: tuples of bound-position values that
  are *demanded*;
* ``d@p@a`` — the demand-seed predicate for the query pattern only.  It
  has no rules, so it stays a pure EDB predicate: runtime demand for new
  constants is an ordinary incremental fact insert, and the maintenance
  circuit derives the newly demanded cone.  ``m@p@a(X̄) :- d@p@a(X̄)``
  copies seeds in.

``@`` cannot occur in parsed predicate names, so the generated names
never collide with user predicates.

Negation and the unadorned cone
-------------------------------

A negated predicate must be evaluated over its *complete* extension —
restricting it to demanded atoms would flip answers.  Any predicate
occurring negated (and, transitively, everything its rules read, through
both polarities) is therefore kept **unadorned**: its original rules are
copied verbatim and it is never magic-restricted.  The same happens to a
predicate demanded with an all-free adornment mid-rule.  Negative edges
in the rewritten program then point only from the adorned layer into
this self-contained unadorned layer, so a stratified input yields a
stratified output.  When the *query* predicate itself lands in the
unadorned cone the transform degenerates — :func:`magic_transform`
returns a passthrough result (``demand_driven`` false) and callers fall
back to filtering the fully materialized view.

Base facts on IDB predicates
----------------------------

The serving tier accepts plain fact inserts on predicates that also have
rules.  In the rewritten program the unadorned ``p`` of an adorned pair
has no rules, so its rows are exactly those base facts; the pickup rule
``p@a(X̄) :- m@p@a(bound X̄), p(X̄)`` folds them into the adorned answer
on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .ast import (
    Comparison,
    Const,
    Literal,
    PredAtom,
    Program,
    Rule,
    Term,
    Var,
    term_vars,
)
from .safety import is_safe_rule

__all__ = [
    "MagicProgram",
    "MagicTransformError",
    "adorned_name",
    "adornment_for",
    "magic_name",
    "magic_transform",
    "seed_name",
]


class MagicTransformError(ValueError):
    """The pattern cannot be compiled for demand-driven evaluation."""


def adornment_for(args: Sequence[Optional[object]]) -> str:
    """The adornment string of a bound pattern: ``None`` is free."""
    return "".join("f" if value is None else "b" for value in args)


def adorned_name(predicate: str, adornment: str) -> str:
    """Name of the demand-restricted copy of ``predicate``."""
    return f"{predicate}@{adornment}"


def magic_name(predicate: str, adornment: str) -> str:
    """Name of the magic (demanded-bindings) predicate."""
    return f"m@{predicate}@{adornment}"


def seed_name(predicate: str, adornment: str) -> str:
    """Name of the pure-EDB demand-seed predicate of the query."""
    return f"d@{predicate}@{adornment}"


@dataclass(frozen=True)
class MagicProgram:
    """The result of :func:`magic_transform`.

    When ``seed_predicate`` is ``None`` the transform declined (all-free
    pattern, EDB query predicate, or the query predicate sits in the
    unadorned negation cone): ``program`` is the original program and
    ``answer_predicate`` the original predicate — callers should serve
    the pattern by filtering the full view instead.
    """

    program: Program
    predicate: str
    adornment: str
    answer_predicate: str
    seed_predicate: Optional[str]
    magic_predicate: Optional[str]
    bound_positions: Tuple[int, ...]
    #: Original-program predicates the rewritten program still reads
    #: (EDB relations plus unadorned copies) — the only predicates whose
    #: base updates are relevant to a demand view.
    base_predicates: FrozenSet[str]

    @property
    def demand_driven(self) -> bool:
        """True when evaluation is restricted by a demand seed."""
        return self.seed_predicate is not None


class _NeedCone(Exception):
    """Internal restart signal: these predicates must stay unadorned."""

    def __init__(self, predicates: Iterable[str]):
        super().__init__()
        self.predicates = tuple(predicates)


def _cone(program: Program, roots: Iterable[str], idb: FrozenSet[str]) -> Set[str]:
    """IDB predicates reachable from ``roots`` through rule bodies
    (both polarities) — the self-contained layer evaluated unadorned."""
    cone: Set[str] = set()
    stack = [root for root in roots if root in idb]
    while stack:
        pred = stack.pop()
        if pred in cone:
            continue
        cone.add(pred)
        for rule_ in program.rules_for(pred):
            for literal in rule_.positive_literals() + rule_.negative_literals():
                body_pred = literal.atom.predicate
                if body_pred in idb and body_pred not in cone:
                    stack.append(body_pred)
    return cone


def _bound_vars(args: Sequence[Term]) -> Set[Var]:
    """Variables a join against these argument positions binds: the
    direct ``Var`` arguments (function-term arguments are *evaluated*
    during grounding, so they consume bindings rather than produce them,
    mirroring :func:`repro.datalog.safety.restricted_vars`)."""
    return {arg for arg in args if isinstance(arg, Var)}


def _transform_rule(
    rule_: Rule,
    adornment: str,
    unadorned: Set[str],
    idb: FrozenSet[str],
    pending: List[Tuple[str, str]],
    magic_rules: List[Rule],
) -> Rule:
    """One adorned rule for ``(rule_.head.predicate, adornment)``.

    Appends the magic rules its body occurrences generate and the newly
    demanded (predicate, adornment) pairs; raises :class:`_NeedCone`
    when a body predicate must join the unadorned layer.
    """
    head = rule_.head
    bound_head_args = tuple(
        head.args[i] for i, ch in enumerate(adornment) if ch == "b"
    )
    guard = Literal(
        PredAtom(magic_name(head.predicate, adornment), bound_head_args), True
    )
    bound: Set[Var] = _bound_vars(bound_head_args)
    # The evaluable prefix: body items whose join/evaluation is already
    # determined at this point of the left-to-right walk.  Magic rules
    # copy it so demanded bindings are as tight as the SIPS allows.
    prefix: List = [guard]
    new_body: List = [guard]
    for item in rule_.body:
        if isinstance(item, Comparison):
            new_body.append(item)
            assigned = None
            if item.op == "=":
                for variable, expr in (
                    (item.left, item.right),
                    (item.right, item.left),
                ):
                    if (
                        isinstance(variable, Var)
                        and variable not in bound
                        and term_vars(expr) <= bound
                    ):
                        assigned = variable
                        break
            if assigned is not None:
                prefix.append(item)
                bound.add(assigned)
            elif item.vars() <= bound:
                prefix.append(item)  # a pure test over bound variables
            continue
        literal = item
        pred = literal.atom.predicate
        if not literal.positive:
            if pred in idb and pred not in unadorned:
                raise _NeedCone((pred,))
            new_body.append(literal)
            continue
        if pred in idb and pred not in unadorned:
            occurrence = "".join(
                "b" if term_vars(arg) <= bound else "f"
                for arg in literal.atom.args
            )
            if "b" not in occurrence:
                # An all-free demand would enumerate the predicate
                # anyway; evaluate it unadorned instead.
                raise _NeedCone((pred,))
            magic_args = tuple(
                literal.atom.args[i]
                for i, ch in enumerate(occurrence)
                if ch == "b"
            )
            magic_head = PredAtom(magic_name(pred, occurrence), magic_args)
            # A recursive occurrence whose demanded bindings are exactly
            # the head's produces the tautology ``m(X̄) :- m(X̄)``; skip.
            if not (len(prefix) == 1 and prefix[0].atom == magic_head):
                magic_rules.append(Rule(magic_head, tuple(prefix)))
            pending.append((pred, occurrence))
            adorned = Literal(
                PredAtom(adorned_name(pred, occurrence), literal.atom.args),
                True,
            )
            new_body.append(adorned)
            prefix.append(adorned)
        else:
            new_body.append(literal)
            prefix.append(literal)
        bound |= _bound_vars(literal.atom.args)
    return Rule(
        PredAtom(adorned_name(head.predicate, adornment), head.args),
        tuple(new_body),
    )


def _attempt(
    program: Program,
    predicate: str,
    adornment: str,
    unadorned: Set[str],
    idb: FrozenSet[str],
    arities: Dict[str, int],
) -> Tuple[List[Rule], List[Rule], List[Tuple[str, str]]]:
    """One full adornment walk with a fixed unadorned layer.

    Returns (adorned rules + pickups, magic rules, adorned pairs);
    raises :class:`_NeedCone` when the layer must grow.
    """
    pairs: List[Tuple[str, str]] = [(predicate, adornment)]
    seen: Set[Tuple[str, str]] = {(predicate, adornment)}
    adorned_rules: List[Rule] = []
    magic_rules: List[Rule] = []
    index = 0
    while index < len(pairs):
        pred, adn = pairs[index]
        index += 1
        pending: List[Tuple[str, str]] = []
        for rule_ in program.rules_for(pred):
            adorned_rules.append(
                _transform_rule(rule_, adn, unadorned, idb, pending, magic_rules)
            )
        for pair in pending:
            if pair not in seen:
                seen.add(pair)
                pairs.append(pair)
        # Base facts inserted directly on the (IDB) predicate live on
        # its now-ruleless unadorned name; pick them up on demand.
        fresh = tuple(Var(f"__M{i}") for i in range(arities[pred]))
        fresh_bound = tuple(
            fresh[i] for i, ch in enumerate(adn) if ch == "b"
        )
        adorned_rules.append(
            Rule(
                PredAtom(adorned_name(pred, adn), fresh),
                (
                    Literal(PredAtom(magic_name(pred, adn), fresh_bound), True),
                    Literal(PredAtom(pred, fresh), True),
                ),
            )
        )
    return adorned_rules, magic_rules, pairs


def magic_transform(
    program: Program, predicate: str, adornment: str
) -> MagicProgram:
    """Rewrite ``program`` for demand-driven evaluation of one pattern.

    ``adornment`` is a string over ``b``/``f``, one character per
    argument of ``predicate``.  Raises :class:`MagicTransformError` on a
    malformed pattern (bad characters, arity mismatch, ``@`` in user
    predicate names); returns a passthrough result (``demand_driven``
    false) when demand restriction cannot help — all-free pattern, EDB
    query predicate, or a query predicate forced into the unadorned
    negation cone.
    """
    if any(ch not in "bf" for ch in adornment):
        raise MagicTransformError(
            f"adornment must be over 'b'/'f': {adornment!r}"
        )
    if any("@" in name for name in program.predicates()):
        raise MagicTransformError(
            "programs using '@' in predicate names cannot be magic-rewritten"
        )
    arities = program.arities()
    if predicate in arities and arities[predicate] != len(adornment):
        raise MagicTransformError(
            f"{predicate} has arity {arities[predicate]}, "
            f"adornment {adornment!r} has length {len(adornment)}"
        )
    bound_positions = tuple(
        i for i, ch in enumerate(adornment) if ch == "b"
    )
    idb = program.idb_predicates()

    def passthrough() -> MagicProgram:
        return MagicProgram(
            program=program,
            predicate=predicate,
            adornment=adornment,
            answer_predicate=predicate,
            seed_predicate=None,
            magic_predicate=None,
            bound_positions=bound_positions,
            base_predicates=frozenset(program.predicates()),
        )

    if predicate not in idb or not bound_positions:
        return passthrough()

    unadorned: Set[str] = set()
    while True:
        if predicate in unadorned:
            return passthrough()
        try:
            adorned_rules, magic_rules, pairs = _attempt(
                program, predicate, adornment, unadorned, idb, arities
            )
            break
        except _NeedCone as need:
            grown = _cone(program, need.predicates, idb)
            if grown <= unadorned:  # pragma: no cover - defensive
                raise MagicTransformError(
                    "magic transform failed to converge"
                ) from None
            unadorned |= grown

    seed = seed_name(predicate, adornment)
    magic = magic_name(predicate, adornment)
    seed_vars = tuple(Var(f"__S{i}") for i in range(len(bound_positions)))
    seed_rule = Rule(
        PredAtom(magic, seed_vars),
        (Literal(PredAtom(seed, seed_vars), True),),
    )
    cone_rules = [
        rule_
        for pred in sorted(unadorned)
        for rule_ in program.rules_for(pred)
    ]
    rules = (
        [seed_rule]
        + list(dict.fromkeys(magic_rules))
        + adorned_rules
        + cone_rules
    )
    for rule_ in rules:
        if not is_safe_rule(rule_):  # pragma: no cover - invariant
            raise MagicTransformError(
                f"magic transform produced an unsafe rule: {rule_!r}"
            )
    transformed = Program(
        tuple(rules),
        name=f"{program.name or 'program'}@{predicate}@{adornment}",
    )
    original = program.predicates()
    base = frozenset(
        name for name in transformed.predicates() if name in original
    )
    return MagicProgram(
        program=transformed,
        predicate=predicate,
        adornment=adornment,
        answer_predicate=adorned_name(predicate, adornment),
        seed_predicate=seed,
        magic_predicate=magic,
        bound_positions=bound_positions,
        base_predicates=base,
    )
