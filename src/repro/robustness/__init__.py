"""Resource-governed evaluation: budgets, deadlines, faults, retries.

The paper's constructions are only semi-computable in general, so every
evaluation entry point in this reproduction — grounding, semi-naive
evaluation, all five declarative semantics, IFP iteration, term
rewriting, and the service layer — runs under an
:class:`EvaluationBudget` and stops with a structured
:class:`ReproError` subtype instead of hanging or dying:

* :mod:`~repro.robustness.budget` — :class:`EvaluationBudget`,
  :class:`EvaluationProgress`, :class:`CancellationToken`;
* :mod:`~repro.robustness.errors` — ``ReproError`` →
  ``BudgetExceeded`` / ``DeadlineExceeded`` / ``Cancelled`` /
  ``NonTerminating`` (+ service-side ``ViewDegraded``,
  ``RequestTooLarge``);
* :mod:`~repro.robustness.faults` — deterministic fault injection at
  named points, for the chaos property suite;
* :mod:`~repro.robustness.retry` — exponential-backoff retry for
  transient failures.

See ``docs/ROBUSTNESS.md`` for the budget contract and the degraded-
mode semantics of the service layer.
"""

from .budget import CancellationToken, EvaluationBudget, EvaluationProgress
from .errors import (
    BudgetExceeded,
    Cancelled,
    ClusterError,
    DataDirLocked,
    DeadlineExceeded,
    NonTerminating,
    RecoveryError,
    ReproError,
    RequestTooLarge,
    UpdateTimeout,
    ViewDegraded,
    WorkerUnavailable,
)
from .faults import (
    ALL_POINTS,
    FaultInjector,
    FaultRule,
    InjectedFault,
    fault_point,
    inject_faults,
)
from .retry import retry_with_backoff

__all__ = [
    "ALL_POINTS",
    "BudgetExceeded",
    "Cancelled",
    "CancellationToken",
    "ClusterError",
    "DataDirLocked",
    "DeadlineExceeded",
    "EvaluationBudget",
    "EvaluationProgress",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "NonTerminating",
    "RecoveryError",
    "ReproError",
    "RequestTooLarge",
    "UpdateTimeout",
    "ViewDegraded",
    "WorkerUnavailable",
    "fault_point",
    "inject_faults",
    "retry_with_backoff",
]
