"""Evaluation budgets: steps, deadlines, fact counts, cancellation.

An :class:`EvaluationBudget` is the one object threaded through every
fixpoint loop in the engine — grounding, semi-naive evaluation, the
five declarative semantics, IFP iteration, term rewriting, and the
service layer's incremental maintenance.  It bounds

* **steps** — rule firings / derivations (``max_steps``),
* **facts** — derived-fact count (``max_facts``),
* **wall clock** — a monotonic deadline (``deadline``), and
* supports **cooperative cancellation** via a shared token,

and it accumulates :class:`EvaluationProgress` diagnostics so that a
``BudgetExceeded``/``DeadlineExceeded``/``Cancelled`` error reports how
far the evaluation got (iterations done, facts derived, last stratum).

The ticking fast path is deliberately cheap: an unlimited budget only
increments counters, and the deadline clock is consulted once every
``check_interval`` ticks (cancellation, a plain attribute read, is
checked on every tick).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from .errors import BudgetExceeded, Cancelled, DeadlineExceeded

__all__ = [
    "CancellationToken",
    "EvaluationBudget",
    "EvaluationProgress",
]


class CancellationToken:
    """A cooperative cancellation flag shared between threads.

    The owner calls :meth:`cancel`; the evaluation observes it at its
    next budget check and raises :class:`~repro.robustness.errors.
    Cancelled`.  Thread-safe by virtue of being a single boolean write.
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        """Request cancellation (idempotent)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Has cancellation been requested?"""
        return self._cancelled

    def __repr__(self) -> str:
        return f"<CancellationToken cancelled={self._cancelled}>"


@dataclass
class EvaluationProgress:
    """How far an evaluation got — attached to every budget error."""

    steps: int = 0
    facts: int = 0
    iterations: int = 0
    last_stratum: Optional[int] = None
    phase: Optional[str] = None

    def snapshot(self) -> dict:
        """A JSON-friendly copy of the diagnostics."""
        payload = {
            "steps": self.steps,
            "facts": self.facts,
            "iterations": self.iterations,
        }
        if self.last_stratum is not None:
            payload["last_stratum"] = self.last_stratum
        if self.phase is not None:
            payload["phase"] = self.phase
        return payload


@dataclass
class EvaluationBudget:
    """A resource envelope for one evaluation (or one service request).

    Any subset of the bounds may be set; ``EvaluationBudget()`` is
    unlimited and merely accumulates progress.  One budget may be
    shared across phases (grounding then solving) so the bounds apply
    to the evaluation as a whole.
    """

    max_steps: Optional[int] = None
    deadline_seconds: Optional[float] = None
    max_facts: Optional[int] = None
    cancellation: Optional[CancellationToken] = None
    #: How many ticks between wall-clock reads (deadline precision).
    check_interval: int = 256
    progress: EvaluationProgress = field(default_factory=EvaluationProgress)

    def __post_init__(self) -> None:
        self._deadline = (
            time.monotonic() + self.deadline_seconds
            if self.deadline_seconds is not None
            else None
        )
        self._until_clock = self.check_interval

    @classmethod
    def unlimited(cls) -> "EvaluationBudget":
        """A budget with no bounds (progress tracking only)."""
        return cls()

    @classmethod
    def from_millis(
        cls, deadline_ms: Optional[float], **kwargs
    ) -> "EvaluationBudget":
        """Convenience constructor taking the deadline in milliseconds."""
        seconds = deadline_ms / 1000.0 if deadline_ms is not None else None
        return cls(deadline_seconds=seconds, **kwargs)

    # -- bookkeeping ---------------------------------------------------------

    @property
    def deadline(self) -> Optional[float]:
        """The absolute monotonic deadline, or None."""
        return self._deadline

    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the deadline (None when no deadline is set)."""
        if self._deadline is None:
            return None
        return self._deadline - time.monotonic()

    # -- charging ------------------------------------------------------------

    def tick(self, steps: int = 1, phase: Optional[str] = None) -> None:
        """Charge ``steps`` units of work; raise when a bound is crossed."""
        progress = self.progress
        progress.steps += steps
        if phase is not None:
            progress.phase = phase
        if self.cancellation is not None and self.cancellation._cancelled:
            raise Cancelled("evaluation cancelled", progress=progress)
        if self.max_steps is not None and progress.steps > self.max_steps:
            raise BudgetExceeded(
                f"step budget of {self.max_steps} exhausted"
                + (f" during {progress.phase}" if progress.phase else ""),
                progress=progress,
            )
        self._until_clock -= steps
        if self._until_clock <= 0:
            self._until_clock = self.check_interval
            self._check_deadline()

    def charge_facts(self, count: int = 1) -> None:
        """Charge ``count`` newly derived facts."""
        progress = self.progress
        progress.facts += count
        if self.max_facts is not None and progress.facts > self.max_facts:
            raise BudgetExceeded(
                f"derived-fact budget of {self.max_facts} exhausted",
                progress=progress,
            )

    def note_iteration(
        self, stratum: Optional[int] = None, phase: Optional[str] = None
    ) -> None:
        """Record one fixpoint iteration (and check every bound).

        Called once per round of the outer loops, so iteration counts
        and deadlines are honoured even when no step ticked this round.
        """
        progress = self.progress
        progress.iterations += 1
        if stratum is not None:
            progress.last_stratum = stratum
        if phase is not None:
            progress.phase = phase
        self.check()

    def check(self, phase: Optional[str] = None) -> None:
        """Raise if cancelled or past the deadline (always consults the
        clock — use at loop heads, not per-derivation)."""
        if phase is not None:
            self.progress.phase = phase
        if self.cancellation is not None and self.cancellation._cancelled:
            raise Cancelled("evaluation cancelled", progress=self.progress)
        self._check_deadline()

    def _check_deadline(self) -> None:
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise DeadlineExceeded(
                f"deadline of {self.deadline_seconds:.3f}s exceeded"
                + (
                    f" during {self.progress.phase}"
                    if self.progress.phase
                    else ""
                ),
                progress=self.progress,
            )
