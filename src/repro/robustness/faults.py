"""Deterministic fault injection for chaos testing.

The engine and service are instrumented with named **fault points**
(``fault_point("incremental.component")`` etc.).  In production these
are no-ops; under :func:`inject_faults` an active :class:`FaultInjector`
counts how often each point is reached and raises :class:`InjectedFault`
exactly where its plan says to — deterministically, so every chaos
failure reproduces from its seed.

Instrumented points (see ``docs/ROBUSTNESS.md``):

==========================  ================================================
``grounder.round``          each round of the relevant-atom closure
``seminaive.round``         each semi-naive round of the direct evaluator
``incremental.apply``       entry of an incremental update batch
``incremental.component``   before each component of the update schedule
``incremental.initialize``  entry of a from-scratch (re)initialisation
``view.recompute``          entry of a recompute-mode evaluation
``cache.get`` / ``cache.put``  the LRU result cache
``service.lock``            before each per-view/registry lock acquisition
``durability.append``       before each WAL record write
``durability.fsync``        before each WAL fsync
``durability.checkpoint``   entry of a checkpoint capture
``durability.recover``      entry of cold-start recovery
==========================  ================================================

Typical use::

    plan = [FaultRule("incremental.component", at_hit=2)]
    with inject_faults(FaultInjector(plan)):
        view.apply(inserts=[("edge", ("a", "b"))])   # second component blows up

or, seeded for a chaos sweep::

    injector = FaultInjector.random(seed=17, points=ALL_POINTS, rate=0.05)
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from .errors import ReproError

__all__ = [
    "ALL_POINTS",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "fault_point",
    "inject_faults",
]


#: Every fault point instrumented in the engine and service layers.
ALL_POINTS = (
    "grounder.round",
    "seminaive.round",
    "incremental.apply",
    "incremental.component",
    "incremental.initialize",
    "view.recompute",
    "cache.get",
    "cache.put",
    # Appended last so seeded chaos plans over the older points keep
    # drawing the same random rules for them.
    "service.lock",
    # The durability layer (PR 7) — appended after service.lock for the
    # same seed-stability reason.
    "durability.append",
    "durability.fsync",
    "durability.checkpoint",
    "durability.recover",
)


class InjectedFault(ReproError):
    """A failure deliberately triggered by the fault-injection harness."""

    code = "injected-fault"

    def __init__(self, point: str, hit: int):
        super().__init__(f"injected fault at {point!r} (hit #{hit})")
        self.point = point
        self.hit = hit


@dataclass(frozen=True)
class FaultRule:
    """Fire at a named point, starting at its ``at_hit``-th reach.

    ``times`` bounds how many firings the rule produces (``None`` =
    every reach from ``at_hit`` on) — a rule with ``times=1`` models a
    transient failure that a retry survives; ``times=None`` a
    persistent one.
    """

    point: str
    at_hit: int = 1
    times: Optional[int] = 1


class FaultInjector:
    """A deterministic schedule of failures at named points."""

    def __init__(self, rules: Sequence[FaultRule] = ()):
        self.rules = list(rules)
        self.hits: Dict[str, int] = {}
        self.fired: List[InjectedFault] = []

    @classmethod
    def random(
        cls,
        seed: int,
        points: Sequence[str] = ALL_POINTS,
        rate: float = 0.05,
        horizon: int = 50,
        times: Optional[int] = 1,
    ) -> "FaultInjector":
        """A seeded random plan: each (point, hit ≤ horizon) pair fails
        independently with probability ``rate``.  Same seed, same plan."""
        rng = random.Random(seed)
        rules = [
            FaultRule(point, at_hit=hit, times=times)
            for point in points
            for hit in range(1, horizon + 1)
            if rng.random() < rate
        ]
        return cls(rules)

    def fire(self, point: str) -> None:
        """Register one reach of ``point``; raise when the plan says so."""
        hit = self.hits.get(point, 0) + 1
        self.hits[point] = hit
        for rule in self.rules:
            if rule.point != point or hit < rule.at_hit:
                continue
            if rule.times is not None and hit >= rule.at_hit + rule.times:
                continue
            fault = InjectedFault(point, hit)
            self.fired.append(fault)
            raise fault


# The active injector is per-thread so concurrent service connections
# (and the test runner) never leak faults into each other.
_active = threading.local()


def _current() -> Optional[FaultInjector]:
    return getattr(_active, "injector", None)


@contextmanager
def inject_faults(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Activate ``injector`` for the current thread for the ``with`` body."""
    previous = _current()
    _active.injector = injector
    try:
        yield injector
    finally:
        _active.injector = previous


def fault_point(point: str) -> None:
    """Mark an injectable failure site (no-op unless injecting)."""
    injector = _current()
    if injector is not None:
        injector.fire(point)
