"""Retry with exponential backoff for transient evaluation failures.

The service layer's incremental→recompute fallback uses this: a
maintenance failure may be transient (an injected fault, a budget blown
by a cold cache), so the recompute is retried a few times with
exponentially growing pauses before the view degrades to serving its
last consistent model.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple, Type, TypeVar

from .errors import Cancelled, ReproError

__all__ = ["retry_with_backoff"]

T = TypeVar("T")


def retry_with_backoff(
    operation: Callable[[], T],
    attempts: int = 3,
    base_delay: float = 0.01,
    max_delay: float = 0.5,
    retry_on: Tuple[Type[BaseException], ...] = (ReproError,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Run ``operation``, retrying transient failures up to ``attempts``
    times total with delays ``base_delay * 2**k`` (capped at
    ``max_delay``).

    ``Cancelled`` is never retried — cancellation is a decision, not a
    transient fault.  The last failure is re-raised when every attempt
    fails.  ``on_retry(attempt_index, error)`` is called before each
    backoff pause (metrics hooks).
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    delay = base_delay
    for attempt in range(1, attempts + 1):
        try:
            return operation()
        except Cancelled:
            raise
        except retry_on as error:
            if attempt == attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            sleep(min(delay, max_delay))
            delay *= 2
    raise AssertionError("unreachable")  # pragma: no cover
