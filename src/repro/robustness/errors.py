"""The structured error hierarchy for resource-governed evaluation.

The paper's constructions are only semi-computable in general:
``SUCC``-style generators enumerate infinite sets, valid-model
evaluation may iterate transfinitely, and stable-model search is
exponential.  Every evaluation entry point in this reproduction
therefore runs under an :class:`~repro.robustness.budget.
EvaluationBudget`, and every way a bounded evaluation can stop short
is a subtype of :class:`ReproError`:

``ReproError``
    base class; carries the budget's partial-progress diagnostics and
    a stable wire ``code`` the service maps to protocol error replies.

``BudgetExceeded``
    a step/fact/iteration bound was hit.  The legacy limit exceptions
    (``NonTerminating``, ``RewriteLimit``, ``TooManyChoiceAtoms``,
    ``GroundingBudgetExceeded``) are all subtypes, so existing callers
    keep working while new callers can catch the whole family here.

``DeadlineExceeded``
    the wall-clock deadline passed.

``Cancelled``
    the cooperative cancellation token was triggered.

``NonTerminating``
    an iteration cap was hit on a possibly-divergent fixpoint (the
    historical name, kept as a :class:`BudgetExceeded` subtype).

All classes subclass :class:`RuntimeError` so pre-existing ``except
RuntimeError`` guards continue to catch them.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "BudgetExceeded",
    "DeadlineExceeded",
    "Cancelled",
    "NonTerminating",
    "ViewDegraded",
    "UpdateTimeout",
    "RequestTooLarge",
    "ClusterError",
    "WorkerUnavailable",
    "RecoveryError",
    "DataDirLocked",
]


class ReproError(RuntimeError):
    """Base class of every structured evaluation/service error.

    ``progress`` (when present) is an :class:`~repro.robustness.budget.
    EvaluationProgress` snapshot describing how far the evaluation got
    before stopping — iterations done, facts derived, last stratum.
    ``code`` is the stable wire identifier the line protocol reports.
    """

    code = "error"

    def __init__(self, message: str, *, progress: Optional[object] = None):
        super().__init__(message)
        self.progress = progress

    def diagnostics(self) -> dict:
        """A JSON-friendly description (code, message, progress)."""
        payload: dict = {"code": self.code, "message": str(self)}
        snapshot = getattr(self.progress, "snapshot", None)
        if callable(snapshot):
            payload["progress"] = snapshot()
        return payload


class BudgetExceeded(ReproError):
    """A step, fact, or iteration bound of the budget was exhausted."""

    code = "budget-exceeded"


class DeadlineExceeded(ReproError):
    """The wall-clock deadline of the budget passed."""

    code = "deadline-exceeded"


class Cancelled(ReproError):
    """The evaluation's cooperative cancellation token was triggered."""

    code = "cancelled"


class NonTerminating(BudgetExceeded):
    """An iteration cap was hit on a possibly-divergent fixpoint.

    The historical name of this condition (IFP iteration, valid-model
    candidate closure); kept as a :class:`BudgetExceeded` subtype so
    both old and new call sites catch it.
    """

    code = "non-terminating"


class ViewDegraded(ReproError):
    """A materialized view is serving its last consistent model.

    Raised by the update path when a view could not be healed after a
    maintenance failure: queries still work (flagged stale), but
    updates are refused until a recompute succeeds.
    """

    code = "view-degraded"


class UpdateTimeout(ReproError, TimeoutError):
    """A write waited out its deadline in the group-commit queue.

    Raised when a submitted update batch could not even be *enqueued*
    before the request deadline (the bounded queue stayed full), or was
    enqueued but never drained in time — e.g. because the drain leader
    died on an injected fault.  The batch is withdrawn before this is
    raised, so a timed-out write is guaranteed not to apply later.

    Also a :class:`TimeoutError` so pre-existing ``except TimeoutError``
    guards around :meth:`~repro.service.dbsp.queue.Ticket.outcome`
    continue to catch it.
    """

    code = "update-timeout"


class RequestTooLarge(ReproError):
    """A protocol request exceeded the configured size limit."""

    code = "request-too-large"


class ClusterError(ReproError):
    """A sharded-serving-tier operation could not be carried out.

    Raised by the cluster router for topology mistakes — draining an
    unknown or already-drained shard, registering when no shard is
    available to take the view.
    """

    code = "cluster-error"


class WorkerUnavailable(ClusterError):
    """A shard's worker process could not serve the request.

    The router raises this when the connection to a worker dies
    mid-request or cannot be established: the client sees a wire-coded
    error instead of a hang, and may retry once the supervisor has
    respawned the worker.
    """

    code = "worker-unavailable"


class RecoveryError(ReproError):
    """Cold-start recovery from a data directory could not complete.

    Torn WAL tails are *not* errors — they are truncated silently (and
    counted); this is raised for genuine contract violations, e.g. a
    restored view whose database fingerprint disagrees with the
    checkpoint that claims to describe it.
    """

    code = "recovery-failed"


class DataDirLocked(RecoveryError):
    """Another live process holds the data directory's writer lock.

    Two servers journaling into one directory would interleave their
    logs into nonsense, so the second opener is refused up front.
    """

    code = "data-dir-locked"
