"""repro — a reproduction of Beeri & Milo,
*On the Power of Algebras with Recursion* (SIGMOD 1993).

The package implements both query-language paradigms the paper relates
and the translations between them:

* :mod:`repro.relations` — complex-object values, relations, bounded
  universes (the data substrate);
* :mod:`repro.specs` — algebraic specifications with negation, valid
  interpretations, initial-valid-model analysis (Section 2);
* :mod:`repro.datalog` — the deductive engine: safety, stratification,
  grounding, and the minimal / stratified / inflationary / well-founded /
  valid / stable semantics (Section 4);
* :mod:`repro.core` — the algebras (``algebra``, ``IFP-algebra``,
  ``algebra=``, ``IFP-algebra=``), the native three-valued evaluator, and
  the translations of Sections 5 and 6;
* :mod:`repro.lang` — a concrete syntax for ``algebra=`` programs;
* :mod:`repro.corpus` — shared workloads for tests and benchmarks.

Quickstart::

    from repro import (
        parse_algebra_program, parse_program, Dialect,
        valid_evaluate, run, check_algebra_roundtrip,
    )

See ``examples/quickstart.py`` for a complete tour.
"""

from .core import (
    AlgebraProgram,
    Definition,
    Dialect,
    EvalLimits,
    ValidEvalResult,
    check_algebra_roundtrip,
    check_datalog_roundtrip,
    datalog_to_algebra,
    evaluate,
    run_staged,
    translate_expression,
    translate_program,
    translation_registry,
    valid_evaluate,
)
from .datalog import Database, Program, run
from .datalog.parser import parse_program
from .lang import parse_algebra_expr, parse_algebra_program
from .relations import Atom, FSet, Relation, Tup, Universe, fset, standard_registry, tup
from .specs import Specification, analyze_constant_spec, valid_interpretation

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # relations
    "Atom",
    "Tup",
    "FSet",
    "tup",
    "fset",
    "Relation",
    "Universe",
    "standard_registry",
    # datalog
    "Program",
    "Database",
    "run",
    "parse_program",
    # core
    "Dialect",
    "Definition",
    "AlgebraProgram",
    "evaluate",
    "valid_evaluate",
    "ValidEvalResult",
    "EvalLimits",
    "translate_expression",
    "translate_program",
    "datalog_to_algebra",
    "run_staged",
    "translation_registry",
    "check_algebra_roundtrip",
    "check_datalog_roundtrip",
    # lang
    "parse_algebra_program",
    "parse_algebra_expr",
    # specs
    "Specification",
    "valid_interpretation",
    "analyze_constant_spec",
]
