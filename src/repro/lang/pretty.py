"""Pretty-printing algebra programs back into parseable surface syntax.

``parse_algebra_program(pretty_algebra_program(p))`` round-trips.
"""

from __future__ import annotations

from typing import List

from ..core.expressions import (
    Call,
    Diff,
    Expr,
    Ifp,
    Map,
    Product,
    RelVar,
    Select,
    SetConst,
    Union,
)
from ..core.funcs import (
    AndTest,
    Apply,
    Arg,
    Comp,
    CompareTest,
    Lit,
    MkTup,
    NotTest,
    OrTest,
    ScalarExpr,
    Test,
    TrueTest,
)
from ..core.programs import AlgebraProgram
from ..relations.values import Atom, FSet, Tup, Value, sorted_values

__all__ = ["pretty_algebra_expr", "pretty_algebra_program"]


def _pretty_value(value: Value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "\\'") + "'"
    if isinstance(value, Atom):
        return value.name
    if isinstance(value, Tup):
        return "[" + ", ".join(_pretty_value(item) for item in value.items) + "]"
    if isinstance(value, FSet):
        raise ValueError("nested set constants have no surface syntax")
    raise TypeError(f"not a value: {value!r}")


def _pretty_scalar(expr: ScalarExpr) -> str:
    if isinstance(expr, Arg):
        return "it"
    if isinstance(expr, Comp):
        return f"{_pretty_scalar(expr.child)}.{expr.index}"
    if isinstance(expr, Lit):
        return _pretty_value(expr.value)
    if isinstance(expr, MkTup):
        return "[" + ", ".join(_pretty_scalar(item) for item in expr.items) + "]"
    if isinstance(expr, Apply):
        inner = ", ".join(_pretty_scalar(arg) for arg in expr.args)
        return f"{expr.name}({inner})"
    raise TypeError(f"not a scalar expression: {expr!r}")


def _pretty_test(test: Test) -> str:
    if isinstance(test, TrueTest):
        return "true"
    if isinstance(test, CompareTest):
        return f"{_pretty_scalar(test.left)} {test.op} {_pretty_scalar(test.right)}"
    if isinstance(test, NotTest):
        return f"not ({_pretty_test(test.child)})"
    if isinstance(test, AndTest):
        return f"({_pretty_test(test.left)}) and ({_pretty_test(test.right)})"
    if isinstance(test, OrTest):
        return f"({_pretty_test(test.left)}) or ({_pretty_test(test.right)})"
    raise TypeError(f"not a test: {test!r}")


def pretty_algebra_expr(expr: Expr) -> str:
    """Render an expression in the surface syntax."""
    if isinstance(expr, RelVar):
        return expr.name
    if isinstance(expr, SetConst):
        return "{" + ", ".join(_pretty_value(v) for v in sorted_values(expr.values)) + "}"
    if isinstance(expr, Union):
        return f"({pretty_algebra_expr(expr.left)} u {pretty_algebra_expr(expr.right)})"
    if isinstance(expr, Diff):
        return f"({pretty_algebra_expr(expr.left)} - {pretty_algebra_expr(expr.right)})"
    if isinstance(expr, Product):
        return f"({pretty_algebra_expr(expr.left)} * {pretty_algebra_expr(expr.right)})"
    if isinstance(expr, Select):
        return f"sigma[{_pretty_test(expr.test)}]({pretty_algebra_expr(expr.child)})"
    if isinstance(expr, Map):
        return f"map[{_pretty_scalar(expr.func)}]({pretty_algebra_expr(expr.child)})"
    if isinstance(expr, Ifp):
        return f"ifp({expr.param}, {pretty_algebra_expr(expr.body)})"
    if isinstance(expr, Call):
        if not expr.args:
            return expr.name
        inner = ", ".join(pretty_algebra_expr(arg) for arg in expr.args)
        return f"{expr.name}({inner})"
    raise TypeError(f"not an expression: {expr!r}")


def pretty_algebra_program(program: AlgebraProgram) -> str:
    """Render a whole program, declaration header included."""
    lines: List[str] = []
    if program.name:
        lines.append(f"% {program.name}")
    if program.database_relations:
        lines.append("relations " + ", ".join(sorted(program.database_relations)) + ";")
    for definition in program.definitions:
        header = definition.name
        if definition.params:
            header += "(" + ", ".join(definition.params) + ")"
        lines.append(f"{header} = {pretty_algebra_expr(definition.body)};")
    return "\n".join(lines)
