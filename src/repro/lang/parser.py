"""A concrete syntax for ``algebra=`` programs.

Example (the WIN game and a derived operator, Section 3.2)::

    relations MOVE;
    inter(x, y) = x - (x - y);
    WIN = pi1(MOVE - (pi1(MOVE) * WIN));

Grammar::

    program    := [ 'relations' NAME (',' NAME)* ';' ] (definition)*
    definition := NAME [ '(' NAME (',' NAME)* ')' ] '=' expr ';'
    expr       := term (('u' | '+') term | '-' term)*        (union / diff)
    term       := factor ('*' factor)*                        (product)
    factor     := NAME [ '(' expr (',' expr)* ')' ]           (rel / call)
                | '{' [value (',' value)*] '}'                (set constant)
                | 'empty'
                | 'sigma' '[' test ']' '(' expr ')'
                | 'map'   '[' scalar ']' '(' expr ')'
                | 'pi' INT '(' expr ')'
                | 'ifp' '(' NAME ',' expr ')'
                | '(' expr ')'
    scalar     := 'it' ('.' INT)* | INT | STRING | NAME
                | NAME '(' scalar (',' scalar)* ')'
                | '[' scalar (',' scalar)* ']'
    test       := 'true' | comparison | 'not' test
                | test 'and' test | test 'or' test | '(' test ')'
    value      := INT | STRING | NAME | '[' value (',' value)* ']'

Name resolution happens after parsing: a bare name is a parameter of the
enclosing definition, a declared database relation, or a defined
operation (0-ary call), in that order.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..relations.values import Atom, Tup, Value
from ..core.expressions import (
    Call,
    Diff,
    Expr,
    Ifp,
    Map,
    Product,
    RelVar,
    Select,
    SetConst,
    Union,
)
from ..core.funcs import (
    AndTest,
    Apply,
    Arg,
    Comp,
    CompareTest,
    Lit,
    MkTup,
    NotTest,
    OrTest,
    ScalarExpr,
    Test,
    TrueTest,
)
from ..core.programs import AlgebraProgram, Definition, Dialect

__all__ = ["AlgebraParseError", "parse_algebra_program", "parse_algebra_expr"]

_KEYWORDS = {
    "relations",
    "u",
    "sigma",
    "map",
    "ifp",
    "empty",
    "it",
    "not",
    "and",
    "or",
    "true",
}


class AlgebraParseError(ValueError):
    """Syntax or resolution error in an algebra program text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>%[^\n]*)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(){},;.*\[\]-])
  | (?P<int>\d+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<name>[a-zA-Z_][a-zA-Z0-9_]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    index = 0
    while index < len(source):
        matched = _TOKEN_RE.match(source, index)
        if not matched:
            raise AlgebraParseError(f"unexpected character {source[index]!r}")
        kind = matched.lastgroup or ""
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, matched.group()))
        index = matched.end()
    return tokens


@dataclass
class _RawName:
    """A not-yet-resolved name (parameter / relation / 0-ary call)."""

    name: str


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self._tokens = tokens
        self._index = 0

    def _peek(self, ahead: int = 0) -> Optional[_Token]:
        position = self._index + ahead
        if position < len(self._tokens):
            return self._tokens[position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise AlgebraParseError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, text: str) -> None:
        token = self._next()
        if token.text != text:
            raise AlgebraParseError(f"expected {text!r}, found {token.text!r}")

    def _expect_name(self) -> str:
        token = self._next()
        if token.kind != "name":
            raise AlgebraParseError(f"expected a name, found {token.text!r}")
        return token.text

    def at_end(self) -> bool:
        """Have all tokens been consumed?"""
        return self._index >= len(self._tokens)

    # -- values ----------------------------------------------------------------

    def parse_value(self) -> Value:
        """Parse one constant value."""
        token = self._next()
        if token.kind == "int":
            return int(token.text)
        if token.kind == "string":
            return token.text[1:-1].replace("\\'", "'")
        if token.text == "[":
            items: List[Value] = []
            if self._peek() and self._peek().text != "]":
                items.append(self.parse_value())
                while self._peek() and self._peek().text == ",":
                    self._next()
                    items.append(self.parse_value())
            self._expect("]")
            return Tup(tuple(items))
        if token.kind == "name":
            if token.text == "true":
                return True
            if token.text == "false":
                return False
            return Atom(token.text)
        raise AlgebraParseError(f"expected a value, found {token.text!r}")

    # -- scalars -----------------------------------------------------------------

    def parse_scalar(self) -> ScalarExpr:
        """Parse one scalar (restructuring) expression."""
        token = self._next()
        if token.kind == "int":
            return Lit(int(token.text))
        if token.kind == "string":
            return Lit(token.text[1:-1].replace("\\'", "'"))
        if token.text == "[":
            items = [self.parse_scalar()]
            while self._peek() and self._peek().text == ",":
                self._next()
                items.append(self.parse_scalar())
            self._expect("]")
            return MkTup(tuple(items))
        if token.kind == "name":
            if token.text == "it":
                expr: ScalarExpr = Arg()
                while (
                    self._peek()
                    and self._peek().text == "."
                    and self._peek(1)
                    and self._peek(1).kind == "int"
                ):
                    self._next()
                    expr = Comp(expr, int(self._next().text))
                return expr
            if self._peek() and self._peek().text == "(":
                self._next()
                args = [self.parse_scalar()]
                while self._peek() and self._peek().text == ",":
                    self._next()
                    args.append(self.parse_scalar())
                self._expect(")")
                return Apply(token.text, tuple(args))
            if token.text == "true":
                return Lit(True)
            if token.text == "false":
                return Lit(False)
            return Lit(Atom(token.text))
        raise AlgebraParseError(f"expected a scalar expression, found {token.text!r}")

    # -- tests --------------------------------------------------------------------

    def parse_test(self) -> Test:
        """Parse one selection test."""
        return self._parse_or_test()

    def _parse_or_test(self) -> Test:
        left = self._parse_and_test()
        while self._peek() and self._peek().text == "or":
            self._next()
            left = OrTest(left, self._parse_and_test())
        return left

    def _parse_and_test(self) -> Test:
        left = self._parse_not_test()
        while self._peek() and self._peek().text == "and":
            self._next()
            left = AndTest(left, self._parse_not_test())
        return left

    def _parse_not_test(self) -> Test:
        token = self._peek()
        if token and token.text == "not":
            self._next()
            return NotTest(self._parse_not_test())
        if token and token.text == "(":
            # Could be a parenthesised test — try it, rewind on failure.
            saved = self._index
            try:
                self._next()
                inner = self.parse_test()
                self._expect(")")
                return inner
            except AlgebraParseError:
                self._index = saved
        if token and token.text == "true":
            self._next()
            return TrueTest()
        left = self.parse_scalar()
        operator = self._next()
        if operator.kind != "op":
            raise AlgebraParseError(
                f"expected a comparison operator, found {operator.text!r}"
            )
        right = self.parse_scalar()
        return CompareTest(operator.text, left, right)

    # -- expressions -----------------------------------------------------------------

    def parse_expr(self) -> Expr:
        """Parse a union/difference level expression."""
        left = self.parse_term()
        while self._peek() and self._peek().text in ("u", "+", "-"):
            operator = self._next().text
            right = self.parse_term()
            left = Union(left, right) if operator in ("u", "+") else Diff(left, right)
        return left

    def parse_term(self) -> Expr:
        """Parse a product-level expression."""
        left = self.parse_factor()
        while self._peek() and self._peek().text == "*":
            self._next()
            left = Product(left, self.parse_factor())
        return left

    def parse_factor(self) -> Expr:
        """Parse an atomic expression or operator form."""
        token = self._next()
        if token.text == "(":
            inner = self.parse_expr()
            self._expect(")")
            return inner
        if token.text == "{":
            values: List[Value] = []
            if self._peek() and self._peek().text != "}":
                values.append(self.parse_value())
                while self._peek() and self._peek().text == ",":
                    self._next()
                    values.append(self.parse_value())
            self._expect("}")
            return SetConst(frozenset(values))
        if token.kind != "name":
            raise AlgebraParseError(f"expected an expression, found {token.text!r}")
        if token.text == "empty":
            return SetConst(frozenset())
        if token.text == "sigma":
            self._expect("[")
            test = self.parse_test()
            self._expect("]")
            self._expect("(")
            child = self.parse_expr()
            self._expect(")")
            return Select(child, test)
        if token.text == "map":
            self._expect("[")
            scalar = self.parse_scalar()
            self._expect("]")
            self._expect("(")
            child = self.parse_expr()
            self._expect(")")
            return Map(child, scalar)
        if token.text == "ifp":
            self._expect("(")
            param = self._expect_name()
            self._expect(",")
            body = self.parse_expr()
            self._expect(")")
            return Ifp(param, body)
        if re.fullmatch(r"pi[1-9]", token.text):
            index = int(token.text[2:])
            self._expect("(")
            child = self.parse_expr()
            self._expect(")")
            return Map(child, Comp(Arg(), index))
        if self._peek() and self._peek().text == "(":
            self._next()
            args = [self.parse_expr()]
            while self._peek() and self._peek().text == ",":
                self._next()
                args.append(self.parse_expr())
            self._expect(")")
            return Call(token.text, tuple(args))
        return _RawName(token.text)  # type: ignore[return-value]

    # -- program ------------------------------------------------------------------------

    def parse_program(
        self, dialect: Dialect, name: Optional[str]
    ) -> AlgebraProgram:
        """Parse a whole program (header plus definitions)."""
        relations: List[str] = []
        if self._peek() and self._peek().text == "relations":
            self._next()
            relations.append(self._expect_name())
            while self._peek() and self._peek().text == ",":
                self._next()
                relations.append(self._expect_name())
            self._expect(";")

        raw_definitions: List[Tuple[str, Tuple[str, ...], Expr]] = []
        while not self.at_end():
            def_name = self._expect_name()
            params: List[str] = []
            if self._peek() and self._peek().text == "(":
                self._next()
                params.append(self._expect_name())
                while self._peek() and self._peek().text == ",":
                    self._next()
                    params.append(self._expect_name())
                self._expect(")")
            self._expect("=")
            body = self.parse_expr()
            self._expect(";")
            raw_definitions.append((def_name, tuple(params), body))

        defined = {def_name for def_name, _p, _b in raw_definitions}
        definitions = [
            Definition(
                def_name, params, _resolve(body, set(params), set(relations), defined)
            )
            for def_name, params, body in raw_definitions
        ]
        return AlgebraProgram.of(
            *definitions,
            database_relations=relations,
            dialect=dialect,
            name=name,
        )


def _resolve(
    node, params: Set[str], relations: Set[str], defined: Set[str]
) -> Expr:
    """Resolve raw names to RelVar (parameter / relation) or 0-ary Call."""
    if isinstance(node, _RawName):
        if node.name in params or node.name in relations:
            return RelVar(node.name)
        if node.name in defined:
            return Call(node.name)
        raise AlgebraParseError(
            f"unknown name {node.name!r}: not a parameter, declared relation, "
            f"or defined operation"
        )
    if isinstance(node, Union):
        return Union(
            _resolve(node.left, params, relations, defined),
            _resolve(node.right, params, relations, defined),
        )
    if isinstance(node, Diff):
        return Diff(
            _resolve(node.left, params, relations, defined),
            _resolve(node.right, params, relations, defined),
        )
    if isinstance(node, Product):
        return Product(
            _resolve(node.left, params, relations, defined),
            _resolve(node.right, params, relations, defined),
        )
    if isinstance(node, Select):
        return Select(_resolve(node.child, params, relations, defined), node.test)
    if isinstance(node, Map):
        return Map(_resolve(node.child, params, relations, defined), node.func)
    if isinstance(node, Ifp):
        return Ifp(
            node.param,
            _resolve(node.body, params | {node.param}, relations, defined),
        )
    if isinstance(node, Call):
        return Call(
            node.name,
            tuple(_resolve(arg, params, relations, defined) for arg in node.args),
        )
    return node


def parse_algebra_program(
    source: str,
    dialect: Dialect = Dialect.IFP_ALGEBRA_EQ,
    name: Optional[str] = None,
) -> AlgebraProgram:
    """Parse an ``algebra=`` program text."""
    return _Parser(_tokenize(source)).parse_program(dialect, name)


def parse_algebra_expr(
    source: str,
    relations: Sequence[str] = (),
    defined: Sequence[str] = (),
    params: Sequence[str] = (),
) -> Expr:
    """Parse a single expression; names resolve against the given sets."""
    parser = _Parser(_tokenize(source))
    raw = parser.parse_expr()
    if not parser.at_end():
        raise AlgebraParseError("trailing input after expression")
    return _resolve(raw, set(params), set(relations), set(defined))
