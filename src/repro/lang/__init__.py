"""Concrete syntax for ``algebra=`` programs."""

from .parser import AlgebraParseError, parse_algebra_expr, parse_algebra_program
from .pretty import pretty_algebra_expr, pretty_algebra_program

__all__ = [
    "AlgebraParseError",
    "parse_algebra_expr",
    "parse_algebra_program",
    "pretty_algebra_expr",
    "pretty_algebra_program",
]
