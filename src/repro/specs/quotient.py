"""The quotient term algebra (Section 2.1).

"The Herbrand universe, the collection of ground terms over OP, can be
made an (S, OP)-algebra, and its quotient modulo the invariance relation
defined by E, the quotient term algebra, is an initial algebra."

For a finite window into the Herbrand universe and negation-free ground
equation instances, this module materialises that quotient: carriers are
congruence classes, operations map representative-wise, and term
evaluation lands in a class.  It is the concrete initial algebra the
rest of Section 2 quietly stands on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..robustness import BudgetExceeded
from .congruence import CongruenceClosure
from .equations import ConditionalEquation
from .specification import Specification
from .terms import SApp, STerm, ground_terms, is_ground, substitute, term_sort

__all__ = ["QuotientAlgebra", "quotient_term_algebra"]


@dataclass(frozen=True)
class _ClassRef:
    """A congruence class, identified by its canonical representative."""

    representative: SApp

    def __repr__(self) -> str:
        return f"[{self.representative!r}]"


class QuotientAlgebra:
    """The quotient of a ground-term window by a congruence closure."""

    def __init__(self, spec: Specification, closure: CongruenceClosure,
                 universe: Dict[str, List[SApp]]):
        self._spec = spec
        self._closure = closure
        self._universe = universe
        self._rep_cache: Dict[SApp, SApp] = {}
        self._carrier: Dict[str, List[_ClassRef]] = {}
        for sort, terms in universe.items():
            seen: Dict[SApp, _ClassRef] = {}
            for term in terms:
                root = self._canonical(term)
                seen.setdefault(root, _ClassRef(root))
            self._carrier[sort] = sorted(seen.values(), key=repr)

    def _canonical(self, term: SApp) -> SApp:
        root = self._closure.find(term)
        found = self._rep_cache.get(root)
        if found is not None:
            return found
        # Deterministic representative: the repr-least member of the class.
        members = [
            candidate
            for group in self._closure.classes()
            for candidate in group
            if self._closure.find(candidate) == root
        ]
        representative = min(members, key=repr) if members else term
        self._rep_cache[root] = representative
        return representative

    # -- the algebra ----------------------------------------------------------

    def carrier(self, sort: str) -> Tuple[_ClassRef, ...]:
        """The carrier of a sort: its congruence classes."""
        return tuple(self._carrier.get(sort, ()))

    def evaluate(self, term: SApp) -> _ClassRef:
        """Interpret a ground term: its congruence class."""
        if not is_ground(term):
            raise ValueError(f"only ground terms evaluate: {term!r}")
        return _ClassRef(self._canonical(term))

    def apply(self, op: str, *arg_classes: _ClassRef) -> _ClassRef:
        """Apply an operation to classes (representative-wise, which is
        well-defined exactly because the relation is a congruence)."""
        operation = self._spec.signature.operation(op)
        if len(arg_classes) != operation.arity:
            raise ValueError(f"{op} expects {operation.arity} arguments")
        term = SApp(op, tuple(ref.representative for ref in arg_classes))
        return self.evaluate(term)

    def equal(self, left: SApp, right: SApp) -> bool:
        """Truth of ``left = right`` in the algebra."""
        return self._closure.are_equal(left, right)

    def size(self, sort: str) -> int:
        """Number of classes in a sort's carrier."""
        return len(self._carrier.get(sort, ()))

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{sort}:{len(classes)}" for sort, classes in sorted(self._carrier.items())
        )
        return f"<QuotientAlgebra {self._spec.name} carriers {sizes}>"


def quotient_term_algebra(
    spec: Specification,
    depth: int = 2,
    universe: Optional[Dict[str, List[SApp]]] = None,
    max_instances: int = 200_000,
) -> QuotientAlgebra:
    """Build the quotient term algebra of a negation-free specification
    over the depth-bounded Herbrand window.

    Equations are instantiated over the window (Horn reading, saturated
    to a fixpoint by the conditional congruence closure).  Raises
    ``ValueError`` for specifications with disequation premises — those
    need the valid semantics (:mod:`repro.specs.deductive`).
    """
    if spec.uses_negation():
        raise ValueError(
            "the classical quotient construction needs a negation-free "
            "specification; use repro.specs.deductive for the valid semantics"
        )
    universe = universe or ground_terms(spec.signature, depth)

    import itertools

    instances: List[ConditionalEquation] = []
    for equation in spec.equations:
        variables = sorted(equation.variables(), key=lambda v: v.name)
        pools = [universe.get(v.sort, []) for v in variables]
        for combo in itertools.product(*pools):
            instance = equation.instantiate(dict(zip(variables, combo)))
            # Guard: all terms of the instance must stay inside the window
            # (otherwise the closure would silently extend it).
            instances.append(instance)
            if len(instances) > max_instances:
                # A BudgetExceeded (still a RuntimeError) so quotient blow-ups
                # join the uniform resource-exhaustion hierarchy.
                raise BudgetExceeded(
                    f"equation instantiation exceeded the budget of "
                    f"{max_instances} instances"
                )

    all_terms = [term for terms in universe.values() for term in terms]
    closure = CongruenceClosure.from_ground_equations(instances, extra_terms=all_terms)
    return QuotientAlgebra(spec, closure, universe)
