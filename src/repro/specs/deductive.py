"""The deductive version of a specification (Section 2.2).

    "A specification SPEC can be viewed as a deductive program with '='
    being the only predicate.  The rules in the 'deductive version' of
    SPEC are the conditional equations of SPEC, and the standard equality
    axioms (transitivity, symmetry, reflexivity, and substitution)."

Ground terms are encoded as complex-object values (a constant ``c``
becomes the atom ``c``; an application ``f(t̄)`` becomes the tuple
``[f, t̄...]``), the term universe is materialised to a depth bound
(the Herbrand universe is infinite as soon as one operation is
non-constant), and the valid model of the resulting ``eq/2`` program is
the **valid interpretation** of the specification: certainly-equal pairs,
certainly-unequal pairs, and undefined equalities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..datalog.ast import (
    Comparison,
    Const,
    FuncTerm,
    Literal,
    PredAtom,
    Program,
    Rule,
    Term,
    Var,
)
from ..datalog.database import Database
from ..datalog.engine import QueryResult, run
from ..datalog.semantics.interpretations import Truth
from ..relations.universe import FunctionRegistry
from ..relations.values import Atom, Tup, Value
from .equations import EqPremise, NeqPremise
from .specification import Specification
from .terms import SApp, STerm, SVar, ground_terms, is_ground, term_variables

__all__ = [
    "encode_term",
    "decode_value",
    "spec_registry",
    "SpecDeduction",
    "spec_to_deduction",
    "SpecInterpretation",
    "valid_interpretation",
]

EQ = "eq"
UTERM = "uterm"


def encode_term(term: SApp) -> Value:
    """Encode a ground term as a value: ``c ↦ Atom(c)``,
    ``f(t̄) ↦ [f, t̄...]``."""
    if not is_ground(term):
        raise ValueError(f"only ground terms encode to values: {term!r}")
    if not term.args:
        return Atom(term.op)
    return Tup((Atom(term.op),) + tuple(encode_term(arg) for arg in term.args))


def decode_value(value: Value) -> SApp:
    """Inverse of :func:`encode_term`."""
    if isinstance(value, Atom):
        return SApp(value.name, ())
    if isinstance(value, Tup) and value.items and isinstance(value.items[0], Atom):
        return SApp(
            value.items[0].name, tuple(decode_value(item) for item in value.items[1:])
        )
    raise ValueError(f"not an encoded term: {value!r}")


def spec_registry(spec: Specification) -> FunctionRegistry:
    """A registry with one constructor function per non-constant operation."""
    registry = FunctionRegistry()
    for operation in spec.signature.operations():
        if operation.is_constant():
            continue

        def build(*args: Value, _name=operation.name) -> Value:
            return Tup((Atom(_name),) + tuple(args))

        registry.register(operation.name, operation.arity, build)
    return registry


def _term_to_datalog(term: STerm, var_of: Mapping[SVar, Var]) -> Term:
    if isinstance(term, SVar):
        return var_of[term]
    if not term.args:
        return Const(encode_term(term))
    return FuncTerm(term.op, tuple(_term_to_datalog(arg, var_of) for arg in term.args))


def _sort_pred(sort: str) -> str:
    return f"{UTERM}_{sort}"


@dataclass
class SpecDeduction:
    """The deductive version of a specification over a finite universe."""

    spec: Specification
    program: Program
    database: Database
    registry: FunctionRegistry
    universe: Dict[str, List[SApp]]

    def universe_terms(self) -> List[SApp]:
        """Every term of the window, flattened."""
        return [term for terms in self.universe.values() for term in terms]


def spec_to_deduction(
    spec: Specification,
    universe: Optional[Dict[str, List[SApp]]] = None,
    depth: int = 3,
) -> SpecDeduction:
    """Build the ``eq/2`` program and its database.

    ``universe`` defaults to all ground terms of depth ≤ ``depth``.  All
    rule firings are guarded to stay inside the universe, so the result is
    the valid interpretation *restricted to the window* — deep enough
    windows decide all the equalities the examples need.
    """
    universe = universe or ground_terms(spec.signature, depth)
    database = Database()
    for sort, terms in universe.items():
        database.declare(_sort_pred(sort))
        for term in terms:
            encoded = encode_term(term)
            database.add(UTERM, encoded)
            database.add(_sort_pred(sort), encoded)
    database.declare(UTERM)

    # Application facts: app_f(f(t̄), t̄) for every universe term.  The
    # substitution axiom joins over these (small) tables rather than over
    # the quadratic eq relation, keeping grounding tractable.
    app_preds: set = set()
    for terms in universe.values():
        for term in terms:
            if term.args:
                app_preds.add(term.op)
                database.add(
                    f"app_{term.op}",
                    encode_term(term),
                    *(encode_term(arg) for arg in term.args),
                )

    rules: List[Rule] = []
    x, y, z = Var("X"), Var("Y"), Var("Z")
    # Equality axioms.
    rules.append(Rule(PredAtom(EQ, (x, x)), (Literal(PredAtom(UTERM, (x,)), True),)))
    rules.append(Rule(PredAtom(EQ, (x, y)), (Literal(PredAtom(EQ, (y, x)), True),)))
    rules.append(
        Rule(
            PredAtom(EQ, (x, z)),
            (
                Literal(PredAtom(EQ, (x, y)), True),
                Literal(PredAtom(EQ, (y, z)), True),
            ),
        )
    )
    # Substitution (congruence), one rule per non-constant operation that
    # actually occurs in the universe: join the two application tables
    # first (binding both whole terms and all arguments), then check the
    # componentwise equalities.
    for operation in spec.signature.operations():
        if operation.is_constant() or operation.name not in app_preds:
            continue
        xs = tuple(Var(f"A{i}") for i in range(operation.arity))
        ys = tuple(Var(f"B{i}") for i in range(operation.arity))
        left_var, right_var = Var("L"), Var("R")
        body: List = [
            Literal(PredAtom(f"app_{operation.name}", (left_var,) + xs), True),
            Literal(PredAtom(f"app_{operation.name}", (right_var,) + ys), True),
        ]
        for xi, yi in zip(xs, ys):
            body.append(Literal(PredAtom(EQ, (xi, yi)), True))
        rules.append(Rule(PredAtom(EQ, (left_var, right_var)), tuple(body)))

    # The specification's equations.
    for index, eq in enumerate(spec.equations):
        var_of = {v: Var(f"V_{v.name}") for v in eq.variables()}
        body = []
        for variable, datalog_var in var_of.items():
            body.append(Literal(PredAtom(_sort_pred(variable.sort), (datalog_var,)), True))
        left_var, right_var = Var(f"L{index}"), Var(f"R{index}")
        body.append(Comparison("=", left_var, _term_to_datalog(eq.left, var_of)))
        body.append(Comparison("=", right_var, _term_to_datalog(eq.right, var_of)))
        body.append(Literal(PredAtom(UTERM, (left_var,)), True))
        body.append(Literal(PredAtom(UTERM, (right_var,)), True))
        for p_index, premise in enumerate(eq.premises):
            pl, pr = Var(f"PL{index}_{p_index}"), Var(f"PR{index}_{p_index}")
            body.append(Comparison("=", pl, _term_to_datalog(premise.left, var_of)))
            body.append(Comparison("=", pr, _term_to_datalog(premise.right, var_of)))
            body.append(Literal(PredAtom(UTERM, (pl,)), True))
            body.append(Literal(PredAtom(UTERM, (pr,)), True))
            if isinstance(premise, EqPremise):
                body.append(Literal(PredAtom(EQ, (pl, pr)), True))
            elif isinstance(premise, NeqPremise):
                body.append(Literal(PredAtom(EQ, (pl, pr)), False))
            else:  # pragma: no cover
                raise TypeError(f"unknown premise {premise!r}")
        rules.append(Rule(PredAtom(EQ, (left_var, right_var)), tuple(body)))

    program = Program(tuple(rules), name=f"deductive:{spec.name}")
    return SpecDeduction(spec, program, database, spec_registry(spec), universe)


@dataclass
class SpecInterpretation:
    """The valid interpretation of a specification (three-valued ``=``)."""

    deduction: SpecDeduction
    result: QueryResult

    def truth_equal(self, left: SApp, right: SApp) -> Truth:
        """Is ``left = right`` true / false / undefined in the valid
        interpretation (within the window)?"""
        return self.result.truth_of(EQ, encode_term(left), encode_term(right))

    def certainly_equal(self, left: SApp, right: SApp) -> bool:
        """Is ``left = right`` certainly true?"""
        return self.truth_equal(left, right) is Truth.TRUE

    def certainly_unequal(self, left: SApp, right: SApp) -> bool:
        """Is ``left = right`` certainly false?"""
        return self.truth_equal(left, right) is Truth.FALSE

    def undefined_pairs(self) -> List[Tuple[SApp, SApp]]:
        """Term pairs whose equality is undefined."""
        pairs = []
        for row in self.result.undefined_rows(EQ):
            pairs.append((decode_value(row[0]), decode_value(row[1])))
        return pairs

    def is_total(self) -> bool:
        """No equality left undefined?"""
        return not self.result.undefined_rows(EQ)


def valid_interpretation(
    spec: Specification,
    universe: Optional[Dict[str, List[SApp]]] = None,
    depth: int = 3,
    semantics: str = "valid",
    max_atoms: int = 2_000_000,
) -> SpecInterpretation:
    """Compute the valid interpretation of ``spec`` over a finite window."""
    deduction = spec_to_deduction(spec, universe=universe, depth=depth)
    result = run(
        deduction.program,
        deduction.database,
        semantics=semantics,
        registry=deduction.registry,
        max_atoms=max_atoms,
    )
    return SpecInterpretation(deduction, result)
