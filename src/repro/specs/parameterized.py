"""Parameterized specifications (Section 2.1).

"By replacing nat with a type variable data, we obtain a parameterized
specification, which can be instantiated by substituting a concrete type
for data."

Executably: a parameterized specification is an ordinary specification
whose *parameter sorts* are placeholders, and instantiation renames a
sort throughout (sort set, operation arities, nothing in the equations'
terms needs touching since terms carry sorts only via variables).
``instantiate`` combines the renamed body with the actual-parameter
specification and checks the requirement the paper's footnote 1 states:
the actual type must define whatever operations the body imports on the
parameter sort (e.g. ``EQ`` for SET's MEM).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from .equations import ConditionalEquation, EqPremise, NeqPremise
from .sorts import Operation, Signature
from .specification import Specification
from .terms import SApp, STerm, SVar

__all__ = ["rename_sort", "instantiate"]


def _rename_in_term(term: STerm, mapping: Mapping[str, str]) -> STerm:
    if isinstance(term, SVar):
        return SVar(term.name, mapping.get(term.sort, term.sort))
    return SApp(term.op, tuple(_rename_in_term(arg, mapping) for arg in term.args))


def _rename_in_equation(
    equation: ConditionalEquation, mapping: Mapping[str, str]
) -> ConditionalEquation:
    premises = tuple(
        type(premise)(
            _rename_in_term(premise.left, mapping),
            _rename_in_term(premise.right, mapping),
        )
        for premise in equation.premises
    )
    return ConditionalEquation(
        _rename_in_term(equation.left, mapping),
        _rename_in_term(equation.right, mapping),
        premises,
    )


def rename_sort(
    spec: Specification, mapping: Mapping[str, str], name: Optional[str] = None
) -> Specification:
    """Rename sorts throughout a specification.

    ``set(data)``-style compound sort names have their embedded parameter
    rewritten too: renaming ``data → nat`` takes ``set(data)`` to
    ``set(nat)``.
    """

    def rename(sort: str) -> str:
        if sort in mapping:
            return mapping[sort]
        renamed = sort
        for old, new in mapping.items():
            renamed = renamed.replace(f"({old})", f"({new})")
        return renamed

    sorts = {rename(sort) for sort in spec.signature.sorts}
    operations = [
        Operation(
            operation.name,
            tuple(rename(sort) for sort in operation.arg_sorts),
            rename(operation.result_sort),
        )
        for operation in spec.signature.operations()
    ]
    full_map = {sort: rename(sort) for sort in spec.signature.sorts}
    equations = tuple(
        _rename_in_equation(equation, full_map) for equation in spec.equations
    )
    return Specification(
        name or spec.name, Signature(sorts, operations), equations
    )


def instantiate(
    parameterized: Specification,
    parameter_sort: str,
    actual: Specification,
    actual_sort: str,
    name: Optional[str] = None,
) -> Specification:
    """Instantiate a parameterized specification with an actual type.

    Renames ``parameter_sort`` to ``actual_sort`` in the body and combines
    with ``actual``.  ``Signature.combine`` raises when the body's
    imported operations (e.g. ``EQ`` on the parameter sort — footnote 1's
    requirement that equality be definable on the element type) clash
    with the actual type's declarations; the *semantic* adequacy of the
    actual operations (EQ total, etc.) is checked by evaluating the
    combined spec, e.g. with :func:`repro.specs.valid_interpretation`.
    """
    if parameter_sort not in parameterized.signature.sorts:
        raise ValueError(f"{parameter_sort!r} is not a sort of {parameterized.name}")
    renamed = rename_sort(parameterized, {parameter_sort: actual_sort}, name=name)
    return actual.combine(
        renamed, name=name or f"{parameterized.name}[{actual.name}]"
    )
