"""Many-sorted signatures (Section 2.1).

A signature is the ``(S, OP)`` part of a specification: sort names and
operation symbols with arities in ``S* → S``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

__all__ = ["Operation", "Signature"]


@dataclass(frozen=True)
class Operation:
    """An operation symbol ``name : arg_sorts → result_sort``."""

    name: str
    arg_sorts: Tuple[str, ...]
    result_sort: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "arg_sorts", tuple(self.arg_sorts))

    @property
    def arity(self) -> int:
        """Number of argument sorts."""
        return len(self.arg_sorts)

    def is_constant(self) -> bool:
        """Arity zero?"""
        return not self.arg_sorts

    def __repr__(self) -> str:
        if not self.arg_sorts:
            return f"{self.name}: → {self.result_sort}"
        args = ", ".join(self.arg_sorts)
        return f"{self.name}: {args} → {self.result_sort}"


class Signature:
    """Sort names plus operation symbols over them."""

    def __init__(self, sorts: Iterable[str] = (), operations: Iterable[Operation] = ()):
        self._sorts: FrozenSet[str] = frozenset(sorts)
        self._operations: Dict[str, Operation] = {}
        for operation in operations:
            self.check_operation_sorts(operation)
            if operation.name in self._operations:
                raise ValueError(f"duplicate operation {operation.name!r}")
            self._operations[operation.name] = operation

    def check_operation_sorts(self, operation: Operation) -> None:
        """Validate an operation's sorts against this signature."""
        unknown = (set(operation.arg_sorts) | {operation.result_sort}) - self._sorts
        if unknown:
            raise ValueError(
                f"operation {operation.name} mentions unknown sorts {sorted(unknown)}"
            )

    @property
    def sorts(self) -> FrozenSet[str]:
        """The sort names."""
        return self._sorts

    def operations(self) -> Tuple[Operation, ...]:
        """All operations, name-sorted."""
        return tuple(self._operations[name] for name in sorted(self._operations))

    def operation(self, name: str) -> Operation:
        """Look up an operation by name."""
        try:
            return self._operations[name]
        except KeyError:
            raise KeyError(f"unknown operation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._operations

    def constants(self, sort: Optional[str] = None) -> Tuple[Operation, ...]:
        """The 0-ary operations (optionally of one sort)."""
        return tuple(
            op
            for op in self.operations()
            if op.is_constant() and (sort is None or op.result_sort == sort)
        )

    def combine(self, other: "Signature") -> "Signature":
        """The ``nat + bool + ...`` import notation: union of signatures.
        A shared operation name must have an identical declaration."""
        operations: Dict[str, Operation] = dict(self._operations)
        for name, operation in other._operations.items():
            if name in operations and operations[name] != operation:
                raise ValueError(f"conflicting declarations for {name!r}")
            operations[name] = operation
        return Signature(self._sorts | other._sorts, operations.values())

    def __repr__(self) -> str:
        return (
            f"<Signature sorts={sorted(self._sorts)} "
            f"ops={sorted(self._operations)}>"
        )
