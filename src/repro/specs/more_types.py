"""More of Section 2.1's data types: lists and stacks.

"Essentially all known data types, including atomic types like the
characters, the integers, the booleans, and structured types like sets,
lists, stacks, and so on, can be so defined."

These specifications follow the SET(nat) template: constructors, an
observer defined equationally, and (for lists) an equality test —
demonstrating that the framework really is generic in the structured
type, not special to sets.
"""

from __future__ import annotations

from .equations import equation
from .sorts import Operation
from .specification import Specification
from .terms import SApp, sapp, svar

__all__ = [
    "list_spec",
    "stack_spec",
    "list_term",
    "push_all",
    "NIL",
    "EMPTYSTACK",
]

NIL = sapp("NIL")
EMPTYSTACK = sapp("EMPTYSTACK")


def list_term(*elements) -> SApp:
    """``CONS(x1, CONS(..., NIL))``."""
    term = NIL
    for element in reversed(elements):
        term = sapp("CONS", element, term)
    return term


def push_all(*elements) -> SApp:
    """``PUSH(x1, PUSH(..., EMPTYSTACK))`` — x1 ends up on top."""
    term = EMPTYSTACK
    for element in reversed(elements):
        term = sapp("PUSH", element, term)
    return term


def list_spec(data_sort: str = "nat") -> Specification:
    """LIST(data): NIL/CONS constructors with HEAD, TAIL, APPEND, and an
    equationally-defined membership OCCURS (the list analogue of MEM).

    HEAD/TAIL of NIL are deliberately left unspecified — the paper's
    framework has no error values, and underspecified observers simply
    denote fresh classes in the initial algebra.
    """
    list_sort = f"list({data_sort})"
    b = "bool"
    d, d2 = svar("d", data_sort), svar("d2", data_sort)
    rest, other = svar("l", list_sort), svar("m", list_sort)
    return Specification.build(
        f"LIST({data_sort})",
        sorts=[list_sort, data_sort, b],
        operations=[
            Operation("NIL", (), list_sort),
            Operation("CONS", (data_sort, list_sort), list_sort),
            Operation("HEAD", (list_sort,), data_sort),
            Operation("TAIL", (list_sort,), list_sort),
            Operation("APPEND", (list_sort, list_sort), list_sort),
            Operation("OCCURS", (data_sort, list_sort), b),
            Operation("TRUE", (), b),
            Operation("FALSE", (), b),
            Operation("EQ", (data_sort, data_sort), b),
            Operation("ITEB", (b, b, b), b),
        ],
        equations=[
            equation(sapp("HEAD", sapp("CONS", d, rest)), d),
            equation(sapp("TAIL", sapp("CONS", d, rest)), rest),
            equation(sapp("APPEND", NIL, other), other),
            equation(
                sapp("APPEND", sapp("CONS", d, rest), other),
                sapp("CONS", d, sapp("APPEND", rest, other)),
            ),
            equation(sapp("OCCURS", d, NIL), sapp("FALSE")),
            equation(
                sapp("OCCURS", d, sapp("CONS", d2, rest)),
                sapp("ITEB", sapp("EQ", d, d2), sapp("TRUE"), sapp("OCCURS", d, rest)),
            ),
        ],
    )


def stack_spec(data_sort: str = "nat") -> Specification:
    """STACK(data): PUSH/POP/TOP with the classical equations
    ``POP(PUSH(d, s)) = s`` and ``TOP(PUSH(d, s)) = d``, plus ISEMPTY."""
    stack_sort = f"stack({data_sort})"
    b = "bool"
    d = svar("d", data_sort)
    s = svar("s", stack_sort)
    return Specification.build(
        f"STACK({data_sort})",
        sorts=[stack_sort, data_sort, b],
        operations=[
            Operation("EMPTYSTACK", (), stack_sort),
            Operation("PUSH", (data_sort, stack_sort), stack_sort),
            Operation("POP", (stack_sort,), stack_sort),
            Operation("TOP", (stack_sort,), data_sort),
            Operation("ISEMPTY", (stack_sort,), b),
            Operation("TRUE", (), b),
            Operation("FALSE", (), b),
        ],
        equations=[
            equation(sapp("POP", sapp("PUSH", d, s)), s),
            equation(sapp("TOP", sapp("PUSH", d, s)), d),
            equation(sapp("ISEMPTY", EMPTYSTACK), sapp("TRUE")),
            equation(sapp("ISEMPTY", sapp("PUSH", d, s)), sapp("FALSE")),
        ],
    )
