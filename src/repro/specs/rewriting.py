"""Term rewriting for specifications.

"It is easy to see (using term rewriting) that ..." — Section 2.2 uses
rewriting as the operational reading of equations.  This module orients
(conditional) equations left-to-right and normalises terms; conditional
rules fire when their equality premises are joinable (both sides
normalise to the same term), a bounded recursive check.

Rules with disequation premises are *not* rewrite rules (negation needs
the valid semantics; see :mod:`repro.specs.deductive`) and are skipped
with a warning flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..robustness import BudgetExceeded, EvaluationBudget
from .equations import ConditionalEquation, EqPremise
from .terms import SApp, STerm, SVar, match, substitute, subterms, term_variables

__all__ = ["RewriteSystem", "RewriteLimit"]


class RewriteLimit(BudgetExceeded):
    """Normalisation exceeded its step budget (possibly non-terminating,
    e.g. the commutativity equation of INS).

    A :class:`~repro.robustness.BudgetExceeded` subtype, so rewriting
    divergence is caught by the same handlers as every other resource
    exhaustion."""

    code = "rewrite-limit"


@dataclass(frozen=True)
class _Rule:
    left: STerm
    right: STerm
    premises: Tuple[EqPremise, ...]


class RewriteSystem:
    """Equations oriented left → right."""

    def __init__(self, equations: Iterable[ConditionalEquation]):
        self._rules: List[_Rule] = []
        self.skipped_negative: List[ConditionalEquation] = []
        for eq in equations:
            if eq.uses_negation():
                self.skipped_negative.append(eq)
                continue
            extra = term_variables(eq.right) - term_variables(eq.left)
            for premise in eq.premises:
                extra |= (
                    term_variables(premise.left) | term_variables(premise.right)
                ) - term_variables(eq.left)
            if extra:
                # Not orientable as a rewrite rule; skip (it still counts
                # for the deductive reading).
                self.skipped_negative.append(eq)
                continue
            self._rules.append(
                _Rule(eq.left, eq.right, tuple(eq.premises))  # type: ignore[arg-type]
            )

    @property
    def rules(self) -> Tuple[_Rule, ...]:
        """The oriented rewrite rules."""
        return tuple(self._rules)

    def _replace(self, term: STerm, position: Tuple[int, ...], new: STerm) -> STerm:
        if not position:
            return new
        assert isinstance(term, SApp)
        index = position[0]
        args = list(term.args)
        args[index] = self._replace(args[index], position[1:], new)
        return SApp(term.op, tuple(args))

    def rewrite_once(
        self, term: STerm, budget: List[int]
    ) -> Optional[STerm]:
        """One outermost-leftmost rewrite step, or None if in normal form."""
        for position, sub in subterms(term):
            for rule in self._rules:
                binding = match(rule.left, sub)
                if binding is None:
                    continue
                if not self._premises_hold(rule.premises, binding, budget):
                    continue
                replacement = substitute(rule.right, binding)
                return self._replace(term, position, replacement)
        return None

    def _premises_hold(self, premises, binding, budget: List[int]) -> bool:
        for premise in premises:
            left = self.normalize(substitute(premise.left, binding), budget=budget)
            right = self.normalize(substitute(premise.right, binding), budget=budget)
            if left != right:
                return False
        return True

    def normalize(
        self,
        term: STerm,
        max_steps: int = 10_000,
        budget: Optional[List[int]] = None,
        evaluation_budget: Optional[EvaluationBudget] = None,
    ) -> STerm:
        """Rewrite to normal form; raises :class:`RewriteLimit` on budget
        exhaustion.

        ``budget`` is the shared step counter threaded through recursive
        premise checks; ``evaluation_budget`` adds the uniform
        deadline/step/cancellation contract of
        :class:`~repro.robustness.EvaluationBudget` on top."""
        if budget is None:
            budget = [max_steps]
        current = term
        while True:
            if evaluation_budget is not None:
                evaluation_budget.tick(phase="rewriting")
            if budget[0] <= 0:
                raise RewriteLimit(
                    f"rewriting exceeded its step budget at {current!r}",
                    progress=evaluation_budget.progress
                    if evaluation_budget is not None
                    else None,
                )
            budget[0] -= 1
            next_term = self.rewrite_once(current, budget)
            if next_term is None:
                return current
            current = next_term

    def joinable(
        self,
        left: STerm,
        right: STerm,
        max_steps: int = 10_000,
        evaluation_budget: Optional[EvaluationBudget] = None,
    ) -> bool:
        """Do both terms normalise to the same normal form?"""
        budget = [max_steps]
        return self.normalize(
            left, budget=budget, evaluation_budget=evaluation_budget
        ) == self.normalize(
            right, budget=budget, evaluation_budget=evaluation_budget
        )
