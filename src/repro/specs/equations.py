"""(Generalized conditional) equations.

A plain equation is ``l = r``; a conditional equation is
``p_1 ∧ ... ∧ p_k → l = r`` with equality premises.  The paper's
extension ("Negation", Section 2.2) allows *disequation* premises such as

    ``MEM(x, y) ≠ T → MEM(x, y) = F``

which is what makes the initial-model semantics break down and the valid
semantics necessary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Tuple

from .sorts import Signature
from .terms import STerm, SVar, is_ground, substitute, term_sort, term_variables

__all__ = ["Premise", "EqPremise", "NeqPremise", "ConditionalEquation", "equation"]


class Premise:
    """Base class for equation premises."""
    __slots__ = ()


@dataclass(frozen=True, slots=True)
class EqPremise(Premise):
    """``left = right`` must already hold."""

    left: STerm
    right: STerm

    def __repr__(self) -> str:
        return f"{self.left!r} = {self.right!r}"


@dataclass(frozen=True, slots=True)
class NeqPremise(Premise):
    """``left ≠ right``: the equality must be *certainly false* (valid
    semantics) before the equation applies — this is negation."""

    left: STerm
    right: STerm

    def __repr__(self) -> str:
        return f"{self.left!r} ≠ {self.right!r}"


@dataclass(frozen=True)
class ConditionalEquation:
    """``premises → left = right``; empty premises give a plain equation."""

    left: STerm
    right: STerm
    premises: Tuple[Premise, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "premises", tuple(self.premises))

    def uses_negation(self) -> bool:
        """Does any premise require a disequation?"""
        return any(isinstance(premise, NeqPremise) for premise in self.premises)

    def variables(self) -> FrozenSet[SVar]:
        """Variables of the equation, premises included."""
        result = term_variables(self.left) | term_variables(self.right)
        for premise in self.premises:
            result |= term_variables(premise.left) | term_variables(premise.right)
        return result

    def is_ground(self) -> bool:
        """True when no variables occur."""
        return not self.variables()

    def instantiate(self, mapping: Mapping[SVar, STerm]) -> "ConditionalEquation":
        """Apply a variable substitution throughout."""
        new_premises = tuple(
            type(premise)(
                substitute(premise.left, mapping), substitute(premise.right, mapping)
            )
            for premise in self.premises
        )
        return ConditionalEquation(
            substitute(self.left, mapping), substitute(self.right, mapping), new_premises
        )

    def check_sorts(self, signature: Signature) -> None:
        """Both sides of every (dis)equation must have equal sorts."""
        pairs = [(self.left, self.right)] + [
            (premise.left, premise.right) for premise in self.premises
        ]
        for left, right in pairs:
            left_sort = term_sort(left, signature)
            right_sort = term_sort(right, signature)
            if left_sort != right_sort:
                raise ValueError(
                    f"ill-sorted equation {left!r} = {right!r}: "
                    f"{left_sort} vs {right_sort}"
                )

    def __repr__(self) -> str:
        conclusion = f"{self.left!r} = {self.right!r}"
        if not self.premises:
            return conclusion
        premise_text = " ∧ ".join(repr(premise) for premise in self.premises)
        return f"{premise_text} → {conclusion}"


def equation(left: STerm, right: STerm, *premises: Premise) -> ConditionalEquation:
    """Build a (conditional) equation."""
    return ConditionalEquation(left, right, tuple(premises))
