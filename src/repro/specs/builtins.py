"""The paper's own specifications.

* ``bool_spec`` / ``nat_spec`` — the imported atomic types of Section 2.1,
  with an equationally-defined equality test ``EQ`` and ``ITE``
  (if-then-else), which the SET specification's MEM equation uses.
* ``set_spec`` — the SET(data) specification of Section 2.1: EMPTY, INS,
  MEM, with INS-idempotence/commutativity and the MEM equations.
* ``mem_completion`` — the Section 2.2 disequation
  ``MEM(x, y) ≠ T → MEM(x, y) = F`` that totalises membership (negation!).
* ``example2_spec`` — the three-constant specification of Example 2 with
  no initial valid model.
"""

from __future__ import annotations

from typing import Tuple

from .equations import ConditionalEquation, EqPremise, NeqPremise, equation
from .sorts import Operation, Signature
from .specification import Specification
from .terms import SApp, SVar, sapp, svar

__all__ = [
    "bool_spec",
    "nat_spec",
    "set_spec",
    "set_of_nat_spec",
    "mem_completion",
    "example2_spec",
    "TRUE",
    "FALSE",
    "ZERO",
    "succ",
    "nat_term",
    "EMPTY",
    "ins",
    "mem",
    "set_term",
]

TRUE = sapp("TRUE")
FALSE = sapp("FALSE")
ZERO = sapp("0")
EMPTY = sapp("EMPTY")


def succ(term) -> SApp:
    """``SUCC(term)``."""
    return sapp("SUCC", term)


def nat_term(n: int) -> SApp:
    """The numeral ``SUCC^n(0)``."""
    term = ZERO
    for _ in range(n):
        term = succ(term)
    return term


def ins(element, rest) -> SApp:
    """``INS(element, rest)``."""
    return sapp("INS", element, rest)


def mem(element, collection) -> SApp:
    """``MEM(element, collection)``."""
    return sapp("MEM", element, collection)


def set_term(*elements) -> SApp:
    """The paper's ``{x1, ..., xn}`` shorthand for nested INS."""
    term = EMPTY
    for element in reversed(elements):
        term = ins(element, term)
    return term


def bool_spec() -> Specification:
    """Booleans with NOT and if-then-else (ITE) over bool."""
    b = "bool"
    x, y = svar("x", b), svar("y", b)
    return Specification.build(
        "bool",
        sorts=[b],
        operations=[
            Operation("TRUE", (), b),
            Operation("FALSE", (), b),
            Operation("NOT", (b,), b),
            Operation("ITEB", (b, b, b), b),
        ],
        equations=[
            equation(sapp("NOT", TRUE), FALSE),
            equation(sapp("NOT", FALSE), TRUE),
            equation(sapp("ITEB", TRUE, x, y), x),
            equation(sapp("ITEB", FALSE, x, y), y),
        ],
    )


def nat_spec() -> Specification:
    """Naturals with an equationally-defined equality test EQ (the paper
    notes a set's element type must have definable equality [21])."""
    n, b = "nat", "bool"
    x, y = svar("x", n), svar("y", n)
    base = bool_spec()
    mine = Specification.build(
        "nat",
        sorts=[n, b],
        operations=[
            Operation("0", (), n),
            Operation("SUCC", (n,), n),
            Operation("EQ", (n, n), b),
            Operation("TRUE", (), b),
            Operation("FALSE", (), b),
        ],
        equations=[
            equation(sapp("EQ", ZERO, ZERO), TRUE),
            equation(sapp("EQ", sapp("SUCC", x), sapp("SUCC", y)), sapp("EQ", x, y)),
            equation(sapp("EQ", ZERO, sapp("SUCC", x)), FALSE),
            equation(sapp("EQ", sapp("SUCC", x), ZERO), FALSE),
        ],
    )
    return base.combine(mine, name="nat")


def mem_completion(data_sort: str = "nat") -> ConditionalEquation:
    """Section 2.2's totalising disequation:
    ``MEM(x, y) ≠ T → MEM(x, y) = F``."""
    x = svar("x", data_sort)
    s = svar("s", f"set({data_sort})")
    return equation(
        mem(x, s), FALSE, NeqPremise(mem(x, s), TRUE)
    )


def set_spec(data_sort: str = "nat", with_completion: bool = False) -> Specification:
    """SET(data): the Section 2.1 specification, verbatim.

    ``with_completion=True`` appends the Section 2.2 MEM-totalising
    disequation, making the spec use negation.
    """
    set_sort = f"set({data_sort})"
    b = "bool"
    d, d2 = svar("d", data_sort), svar("d2", data_sort)
    s = svar("s", set_sort)
    equations = [
        # INS(d, INS(d, s)) = INS(d, s)
        equation(ins(d, ins(d, s)), ins(d, s)),
        # INS(d, INS(d', s)) = INS(d', INS(d, s))
        equation(ins(d, ins(d2, s)), ins(d2, ins(d, s))),
        # MEM(d, EMPTY) = FALSE
        equation(mem(d, EMPTY), FALSE),
        # MEM(d, INS(d', s)) = IF EQ(d, d') THEN TRUE ELSE MEM(d, s)
        equation(
            mem(d, ins(d2, s)),
            sapp("ITEB", sapp("EQ", d, d2), TRUE, mem(d, s)),
        ),
    ]
    if with_completion:
        equations.append(mem_completion(data_sort))
    mine = Specification.build(
        f"SET({data_sort})",
        sorts=[set_sort, data_sort, b],
        operations=[
            Operation("EMPTY", (), set_sort),
            Operation("INS", (data_sort, set_sort), set_sort),
            Operation("MEM", (data_sort, set_sort), b),
            Operation("TRUE", (), b),
            Operation("FALSE", (), b),
            # Imported from nat + bool (identical declarations merge).
            Operation("EQ", (data_sort, data_sort), b),
            Operation("ITEB", (b, b, b), b),
        ],
        equations=equations,
    )
    return mine


def set_of_nat_spec(with_completion: bool = False) -> Specification:
    """``SET(nat) = nat + bool + ...`` exactly as printed in Section 2.1."""
    return nat_spec().combine(
        set_spec("nat", with_completion=with_completion), name="SET(nat)"
    )


def example2_spec() -> Specification:
    """Example 2: three constants with

        ``a ≠ b → a = c``  and  ``a ≠ c → a = b``

    — three valid models, none initial."""
    s = "s"
    a, b, c = sapp("a"), sapp("b"), sapp("c")
    return Specification.build(
        "example2",
        sorts=[s],
        operations=[
            Operation("a", (), s),
            Operation("b", (), s),
            Operation("c", (), s),
        ],
        equations=[
            equation(a, c, NeqPremise(a, b)),
            equation(a, b, NeqPremise(a, c)),
        ],
    )
