"""Abstract data type specifications (Definition 2.1).

``SPEC = (S, OP, E)``: sorts, operations, and (generalized conditional)
equations.  ``combine`` realises the paper's import notation
``SET(nat) = nat + bool + ...``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

from .equations import ConditionalEquation
from .sorts import Operation, Signature

__all__ = ["Specification"]


@dataclass(frozen=True)
class Specification:
    """An abstract data type specification."""

    name: str
    signature: Signature
    equations: Tuple[ConditionalEquation, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "equations", tuple(self.equations))
        for eq in self.equations:
            eq.check_sorts(self.signature)

    @classmethod
    def build(
        cls,
        name: str,
        sorts: Iterable[str],
        operations: Iterable[Operation],
        equations: Iterable[ConditionalEquation] = (),
    ) -> "Specification":
        """Construct a specification from parts."""
        return cls(name, Signature(sorts, operations), tuple(equations))

    def uses_negation(self) -> bool:
        """Does any equation have a disequation premise (Section 2.2)?"""
        return any(eq.uses_negation() for eq in self.equations)

    def is_constant_only(self) -> bool:
        """Only 0-ary operations — the decidable case of Proposition 2.3."""
        return all(op.is_constant() for op in self.signature.operations())

    def combine(self, other: "Specification", name: Optional[str] = None) -> "Specification":
        """The ``A + B`` import: union of signatures and equations."""
        return Specification(
            name or f"{self.name}+{other.name}",
            self.signature.combine(other.signature),
            self.equations + other.equations,
        )

    def __add__(self, other: "Specification") -> "Specification":
        return self.combine(other)

    def __repr__(self) -> str:
        return (
            f"<Specification {self.name}: {len(self.signature.sorts)} sorts, "
            f"{len(self.signature.operations())} ops, "
            f"{len(self.equations)} equations"
            f"{', with negation' if self.uses_negation() else ''}>"
        )

    def pretty(self) -> str:
        """Render in the paper's spec layout."""
        lines = [f"spec {self.name}"]
        lines.append("sorts: " + ", ".join(sorted(self.signature.sorts)))
        lines.append("opns:")
        for operation in self.signature.operations():
            lines.append(f"  {operation!r}")
        lines.append("eqns:")
        for eq in self.equations:
            lines.append(f"  {eq!r}")
        return "\n".join(lines)
