"""Terms over a many-sorted signature.

Ground terms form the Herbrand universe whose quotient modulo the
invariance relation is the initial algebra (Section 2.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

from .sorts import Signature

__all__ = [
    "SVar",
    "SApp",
    "STerm",
    "svar",
    "sapp",
    "const",
    "term_sort",
    "term_variables",
    "is_ground",
    "substitute",
    "match",
    "subterms",
    "term_size",
    "ground_terms",
]


@dataclass(frozen=True, slots=True)
class SVar:
    """A sorted variable, e.g. ``d ∈ nat``."""

    name: str
    sort: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class SApp:
    """An operation application; constants are 0-ary applications."""

    op: str
    args: Tuple["STerm", ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    def __repr__(self) -> str:
        if not self.args:
            return self.op
        inner = ", ".join(repr(arg) for arg in self.args)
        return f"{self.op}({inner})"


STerm = object  # Union[SVar, SApp] — kept loose for typing simplicity.


def svar(name: str, sort: str) -> SVar:
    """A sorted variable."""
    return SVar(name, sort)


def sapp(op: str, *args: STerm) -> SApp:
    """An operation application term."""
    return SApp(op, tuple(args))


def const(name: str) -> SApp:
    """A constant term (0-ary application)."""
    return SApp(name, ())


def term_sort(term: STerm, signature: Signature) -> str:
    """Infer (and check) the sort of a term."""
    if isinstance(term, SVar):
        return term.sort
    if isinstance(term, SApp):
        operation = signature.operation(term.op)
        if len(term.args) != operation.arity:
            raise ValueError(
                f"{term.op} applied to {len(term.args)} args, arity {operation.arity}"
            )
        for arg, expected in zip(term.args, operation.arg_sorts):
            actual = term_sort(arg, signature)
            if actual != expected:
                raise ValueError(
                    f"in {term!r}: argument {arg!r} has sort {actual}, "
                    f"expected {expected}"
                )
        return operation.result_sort
    raise TypeError(f"not a term: {term!r}")


def term_variables(term: STerm) -> FrozenSet[SVar]:
    """Variables occurring in a term."""
    if isinstance(term, SVar):
        return frozenset((term,))
    result: FrozenSet[SVar] = frozenset()
    for arg in term.args:
        result |= term_variables(arg)
    return result


def is_ground(term: STerm) -> bool:
    """True when no variables occur."""
    return not term_variables(term)


def substitute(term: STerm, mapping: Mapping[SVar, STerm]) -> STerm:
    """Apply a variable substitution."""
    if isinstance(term, SVar):
        return mapping.get(term, term)
    return SApp(term.op, tuple(substitute(arg, mapping) for arg in term.args))


def match(pattern: STerm, subject: STerm) -> Optional[Dict[SVar, STerm]]:
    """One-way syntactic matching: a substitution σ with σ(pattern) ==
    subject, or None."""
    binding: Dict[SVar, STerm] = {}

    def walk(pat: STerm, sub: STerm) -> bool:
        if isinstance(pat, SVar):
            if pat in binding:
                return binding[pat] == sub
            binding[pat] = sub
            return True
        if not isinstance(sub, SApp) or pat.op != sub.op or len(pat.args) != len(sub.args):
            return False
        return all(walk(p, s) for p, s in zip(pat.args, sub.args))

    if walk(pattern, subject):
        return binding
    return None


def subterms(term: STerm) -> Iterator[Tuple[Tuple[int, ...], STerm]]:
    """Yield (position, subterm) pairs, pre-order; positions are paths of
    0-based argument indexes."""
    yield (), term
    if isinstance(term, SApp):
        for index, arg in enumerate(term.args):
            for position, sub in subterms(arg):
                yield (index,) + position, sub


def term_size(term: STerm) -> int:
    """Number of nodes in the term."""
    if isinstance(term, SVar):
        return 1
    return 1 + sum(term_size(arg) for arg in term.args)


def ground_terms(
    signature: Signature, depth: int, max_terms: int = 50_000
) -> Dict[str, List[SApp]]:
    """All ground terms of depth ≤ ``depth``, grouped by sort.

    The executable window into the Herbrand universe — for signatures with
    non-constant operations the full universe is infinite.
    """
    by_sort: Dict[str, List[SApp]] = {sort: [] for sort in signature.sorts}
    seen: set = set()

    def note(term: SApp, sort: str) -> None:
        if term not in seen:
            seen.add(term)
            by_sort[sort].append(term)

    for operation in signature.constants():
        note(SApp(operation.name, ()), operation.result_sort)

    for _round in range(depth):
        additions: List[Tuple[SApp, str]] = []
        for operation in signature.operations():
            if operation.is_constant():
                continue
            pools = [by_sort[sort] for sort in operation.arg_sorts]
            for combo in itertools.product(*pools):
                term = SApp(operation.name, tuple(combo))
                if term not in seen:
                    additions.append((term, operation.result_sort))
            if len(seen) + len(additions) > max_terms:
                raise RuntimeError(
                    f"ground-term enumeration exceeded {max_terms} terms"
                )
        if not additions:
            break
        for term, sort in additions:
            note(term, sort)
    return by_sort
