"""Congruence closure: the invariance relation on ground terms.

"The Herbrand universe ... and its quotient modulo the invariance
relation defined by E, the quotient term algebra, is an initial algebra"
(Section 2.1).  For ground (conditional, negation-free) equations over a
finite term universe, the invariance relation is computed by congruence
closure with a semi-naive conditional loop on top.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .equations import ConditionalEquation, EqPremise
from .terms import SApp, STerm, is_ground, subterms

__all__ = ["CongruenceClosure"]


class CongruenceClosure:
    """Union-find with congruence propagation over ground terms."""

    def __init__(self, terms: Iterable[STerm] = ()):
        self._parent: Dict[STerm, STerm] = {}
        for term in terms:
            self.add_term(term)

    # -- union-find ----------------------------------------------------------

    def add_term(self, term: STerm) -> None:
        """Register a ground term and its subterms."""
        if not is_ground(term):
            raise ValueError(f"congruence closure needs ground terms: {term!r}")
        for _position, sub in subterms(term):
            self._parent.setdefault(sub, sub)

    def find(self, term: STerm) -> STerm:
        """Canonical class root of a term (path-compressing)."""
        self.add_term(term)
        root = term
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[term] != root:  # path compression
            self._parent[term], term = root, self._parent[term]
        return root

    def _union(self, left: STerm, right: STerm) -> bool:
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return False
        self._parent[left_root] = right_root
        return True

    # -- congruence ----------------------------------------------------------

    def merge(self, left: STerm, right: STerm) -> None:
        """Assert ``left = right`` and restore congruence."""
        if self._union(left, right):
            self._propagate()

    def _propagate(self) -> None:
        changed = True
        while changed:
            changed = False
            by_signature: Dict[Tuple, STerm] = {}
            for term in list(self._parent):
                if not isinstance(term, SApp):
                    continue
                signature = (term.op, tuple(self.find(arg) for arg in term.args))
                other = by_signature.get(signature)
                if other is None:
                    by_signature[signature] = term
                elif self.find(other) != self.find(term):
                    self._union(other, term)
                    changed = True

    def are_equal(self, left: STerm, right: STerm) -> bool:
        """Are two terms in the same class?"""
        return self.find(left) == self.find(right)

    def classes(self) -> List[List[STerm]]:
        """The equivalence classes, each sorted."""
        groups: Dict[STerm, List[STerm]] = {}
        for term in self._parent:
            groups.setdefault(self.find(term), []).append(term)
        return [sorted(group, key=repr) for group in groups.values()]

    # -- conditional saturation ----------------------------------------------

    @classmethod
    def from_ground_equations(
        cls,
        equations: Sequence[ConditionalEquation],
        extra_terms: Iterable[STerm] = (),
        max_rounds: int = 10_000,
    ) -> "CongruenceClosure":
        """Saturate ground conditional equations (no negation) to a fixpoint.

        A conditional equation fires once all its equality premises hold in
        the current closure — the minimal-model reading of Horn equations.
        """
        closure = cls(extra_terms)
        pending: List[ConditionalEquation] = []
        for eq in equations:
            if eq.uses_negation():
                raise ValueError(
                    "congruence closure handles negation-free equations only; "
                    "use repro.specs.deductive for the valid semantics"
                )
            if not eq.is_ground():
                raise ValueError(f"equation must be ground: {eq!r}")
            closure.add_term(eq.left)
            closure.add_term(eq.right)
            for premise in eq.premises:
                closure.add_term(premise.left)
                closure.add_term(premise.right)
            pending.append(eq)

        for _round in range(max_rounds):
            fired = False
            for eq in pending:
                if closure.are_equal(eq.left, eq.right):
                    continue
                if all(
                    closure.are_equal(premise.left, premise.right)
                    for premise in eq.premises
                ):
                    closure.merge(eq.left, eq.right)
                    fired = True
            if not fired:
                return closure
        raise RuntimeError("conditional congruence closure did not converge")
