"""Shared fixtures for the test suite."""

import pytest

from repro.core.algebra_to_datalog import translation_registry
from repro.corpus import chain, cycle, edges_to_database, edges_to_relation, random_graph
from repro.relations import Atom, Relation, standard_registry, tup


@pytest.fixture(scope="session")
def registry():
    """The standard registry extended with translation helpers."""
    return translation_registry()


@pytest.fixture()
def abcd():
    return tuple(Atom(name) for name in "abcd")


@pytest.fixture()
def chain_edges():
    return chain(6)


@pytest.fixture()
def cycle_edges():
    return cycle(4)


@pytest.fixture()
def chain_db(chain_edges):
    return edges_to_database(chain_edges)


@pytest.fixture()
def chain_move(chain_edges):
    return edges_to_relation(chain_edges, "MOVE")


@pytest.fixture()
def numbers_relation():
    return Relation([1, 2, 3, 4, 5], name="A")
