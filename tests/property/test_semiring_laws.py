"""Property-based tests: commutative-semiring axioms and homomorphisms.

Every semiring in :data:`repro.semiring.SEMIRINGS` is held to the
commutative-semiring laws — ``⊕``/``⊗`` associative and commutative,
``0`` the ``⊕``-identity and ``⊗``-annihilator, ``1`` the
``⊗``-identity, distributivity — through a **registry-driven**
parametrization: the suite enumerates the live registry, and
:func:`test_every_registered_semiring_has_a_strategy` fails CI the
moment someone registers a new :class:`~repro.semiring.Semiring`
without adding a value strategy here.  That meta-test is the
enforcement half of the extension contract documented in
``docs/SEMIRINGS.md``.

The second half checks the *model-level* homomorphisms on random small
programs: evaluating under a richer semiring and collapsing through a
semiring homomorphism must agree with evaluating under the poorer one
directly (Green–Karvounarakis–Tannen functoriality) — boolean as the
common image of naturals, tropical, and why-provenance, with the
support identical across all of them.

Seed scaling follows the chaos-suite convention: ``REPRO_BENCH_SCALE=
smoke`` shrinks the example budget for quick tripwire runs.
"""

import math
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import annotated_model
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.relations import Atom
from repro.semiring import SEMIRINGS, canonical_annotation, get_semiring

#: The chaos/bench scale convention: smoke runs shrink the budget.
_EXAMPLES = 25 if os.environ.get("REPRO_BENCH_SCALE") == "smoke" else 100

_TOKENS = ["e(a, b)", "e(b, c)", "e(a, c)", "f(a)"]

#: name -> hypothesis strategy over that semiring's carrier.  EVERY
#: registered semiring needs an entry — the meta-test below is the CI
#: gate that keeps this dict in lockstep with the registry.
STRATEGIES = {
    "bool": st.booleans(),
    "naturals": st.integers(min_value=0, max_value=7),
    "tropical": st.one_of(
        st.just(math.inf), st.integers(min_value=0, max_value=7)
    ),
    "why": st.frozensets(
        st.frozensets(st.sampled_from(_TOKENS), max_size=3), max_size=3
    ),
}

SEMIRING_NAMES = sorted(SEMIRINGS)


def test_every_registered_semiring_has_a_strategy():
    """The extension gate: registering a semiring without a laws-suite
    strategy must fail CI, not silently skip the axioms."""
    missing = set(SEMIRINGS) - set(STRATEGIES)
    assert not missing, (
        f"semiring(s) {sorted(missing)} are registered but have no "
        "value strategy in tests/property/test_semiring_laws.py — add "
        "one so the commutative-semiring axioms cover them"
    )


def _elements(name):
    return STRATEGIES[name]


@pytest.mark.parametrize("name", SEMIRING_NAMES)
@settings(max_examples=_EXAMPLES, deadline=None)
@given(data=st.data())
def test_add_commutative_associative(name, data):
    s = get_semiring(name)
    a, b, c = (data.draw(_elements(name)) for _ in range(3))
    assert s.add(a, b) == s.add(b, a)
    assert s.add(s.add(a, b), c) == s.add(a, s.add(b, c))


@pytest.mark.parametrize("name", SEMIRING_NAMES)
@settings(max_examples=_EXAMPLES, deadline=None)
@given(data=st.data())
def test_mul_commutative_associative(name, data):
    s = get_semiring(name)
    a, b, c = (data.draw(_elements(name)) for _ in range(3))
    assert s.mul(a, b) == s.mul(b, a)
    assert s.mul(s.mul(a, b), c) == s.mul(a, s.mul(b, c))


@pytest.mark.parametrize("name", SEMIRING_NAMES)
@settings(max_examples=_EXAMPLES, deadline=None)
@given(data=st.data())
def test_identities_and_annihilator(name, data):
    s = get_semiring(name)
    a = data.draw(_elements(name))
    assert s.add(a, s.zero) == a
    assert s.mul(a, s.one) == a
    assert s.mul(a, s.zero) == s.zero
    assert s.is_zero(s.zero)


@pytest.mark.parametrize("name", SEMIRING_NAMES)
@settings(max_examples=_EXAMPLES, deadline=None)
@given(data=st.data())
def test_mul_distributes_over_add(name, data):
    s = get_semiring(name)
    a, b, c = (data.draw(_elements(name)) for _ in range(3))
    assert s.mul(a, s.add(b, c)) == s.add(s.mul(a, b), s.mul(a, c))


@pytest.mark.parametrize("name", SEMIRING_NAMES)
@settings(max_examples=_EXAMPLES, deadline=None)
@given(data=st.data())
def test_idempotency_flag_is_truthful(name, data):
    """``idempotent`` gates fixpoint-convergence reasoning, so a wrong
    flag is a correctness bug, not a doc nit."""
    s = get_semiring(name)
    a = data.draw(_elements(name))
    if s.idempotent:
        assert s.add(a, a) == a


@pytest.mark.parametrize("name", SEMIRING_NAMES)
@settings(max_examples=_EXAMPLES, deadline=None)
@given(data=st.data())
def test_wire_codec_round_trips(name, data):
    """``parse(format(a)) == a`` wherever parse is supported — WAL
    replay and checkpoint restore re-parse exactly what was formatted,
    so a drifting codec would corrupt recovered fingerprints."""
    s = get_semiring(name)
    a = data.draw(_elements(name))
    text = s.format(a)
    assert isinstance(text, str) and text
    try:
        parsed = s.parse(text)
    except ValueError:
        # Derived-only annotations (why-provenance) refuse parsing by
        # contract; the canonical rendering must still be stable.
        assert canonical_annotation(a) == canonical_annotation(a)
        return
    assert parsed == a, f"{name}: parse(format({a!r})) -> {parsed!r}"
    assert s.format(parsed) == text


def test_canonical_annotation_is_order_insensitive():
    left = frozenset({frozenset({"b", "a"}), frozenset({"c"})})
    right = frozenset({frozenset({"c"}), frozenset({"a", "b"})})
    assert canonical_annotation(left) == canonical_annotation(right)


# ---------------------------------------------------------------------------
# Model-level homomorphisms on random small programs
# ---------------------------------------------------------------------------

#: Non-recursive, so the naturals fixpoint converges on any edge set.
_HOP = parse_program("hop(X, Z) :- edge(X, Y), edge(Y, Z).")
#: Recursive; safe under every *idempotent* semiring (bool, tropical,
#: why) regardless of cycles.
_TC = parse_program(
    "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z)."
)

_NODES = ["a", "b", "c", "d"]
_edges = st.sets(
    st.tuples(st.sampled_from(_NODES), st.sampled_from(_NODES)),
    max_size=7,
)


def _database(edges):
    database = Database()
    database.declare("edge")
    for source, target in sorted(edges):
        database.add("edge", Atom(source), Atom(target))
    return database


def _to_bool(name, value):
    """The semiring homomorphism onto ``bool`` (support collapse)."""
    if name == "naturals":
        return value > 0
    if name == "tropical":
        return value < math.inf
    if name == "why":
        return bool(value)
    return value


@settings(max_examples=_EXAMPLES, deadline=None)
@given(edges=_edges)
def test_naturals_collapse_to_boolean_model(edges):
    """h(n) = (n > 0) is a semiring homomorphism ℕ → 𝔹; evaluating
    under ℕ then collapsing must equal evaluating under 𝔹 directly."""
    database = _database(edges)
    rich = annotated_model(_HOP, database, get_semiring("naturals"))
    plain = annotated_model(_HOP, database, get_semiring("bool"))
    collapsed = {
        predicate: {
            row: _to_bool("naturals", weight)
            for row, weight in rows.items()
        }
        for predicate, rows in rich.items()
    }
    assert collapsed == plain


@pytest.mark.parametrize("name", ["tropical", "why"])
@settings(max_examples=_EXAMPLES, deadline=None)
@given(edges=_edges)
def test_idempotent_semirings_collapse_to_boolean_model(name, edges):
    """Same functoriality through the recursive program: cycles are
    fine because both source semirings are idempotent."""
    database = _database(edges)
    rich = annotated_model(_TC, database, get_semiring(name))
    plain = annotated_model(_TC, database, get_semiring("bool"))
    collapsed = {
        predicate: {
            row: _to_bool(name, weight) for row, weight in rows.items()
        }
        for predicate, rows in rich.items()
    }
    assert collapsed == plain


@settings(max_examples=_EXAMPLES, deadline=None)
@given(edges=_edges)
def test_why_witnesses_are_supported_derivations(edges):
    """Every why-provenance witness of a ``tc`` row must re-derive the
    row on its own: evaluating over just the witness facts keeps the
    row in the model (witnesses are *sufficient* supports)."""
    database = _database(edges)
    model = annotated_model(_TC, database, get_semiring("why"))
    checked = 0
    for row, witnesses in model.get("tc", {}).items():
        for witness in sorted(witnesses, key=canonical_annotation)[:2]:
            support = Database()
            support.declare("edge")
            for token in witness:
                inner = token[len("edge(") : -1]
                source, target = [part.strip() for part in inner.split(",")]
                support.add("edge", Atom(source), Atom(target))
            sub = annotated_model(_TC, support, get_semiring("bool"))
            assert row in sub.get("tc", {}), (
                f"witness {sorted(witness)} does not derive tc{row!r}"
            )
            checked += 1
            if checked >= 6:  # bound the per-example cost
                return
