"""Property-based tests: translation agreement on random algebra programs.

Random ``algebra=`` programs (one recursive constant over two database
relations) are evaluated by the native three-valued evaluator and by the
Proposition 5.4 translation; the answers must coincide — an executable
reading of Theorem 6.2 over a generated program space, not just the
hand-picked corpus.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.algebra_to_datalog import translation_registry
from repro.core.equivalence import (
    algebra_answers_native,
    algebra_answers_translated,
)
from repro.core.expressions import (
    Diff,
    Product,
    Select,
    Union,
    call,
    map_,
    project,
    rel,
    setconst,
)
from repro.core.funcs import Arg, Comp, CompareTest, Lit
from repro.core.positivity import is_monotone_semantically
from repro.core.evaluator import NonTerminating
from repro.core.programs import AlgebraProgram, Definition, Dialect
from repro.core.valid_eval import EvalLimits, valid_evaluate
from repro.relations import Atom, Relation
from repro.robustness import BudgetExceeded

REGISTRY = translation_registry()

a, b, c = Atom("a"), Atom("b"), Atom("c")
ENV = {
    "A": Relation.of(a, b, name="A"),
    "B": Relation.of(b, c, name="B"),
}

leaves = st.sampled_from(
    [rel("A"), rel("B"), call("S"), setconst(a), setconst(b, c)]
)


def _combine(children):
    return st.one_of(
        st.tuples(children, children).map(lambda p: Union(*p)),
        st.tuples(children, children).map(lambda p: Diff(*p)),
        st.tuples(children, children).map(lambda p: Product(*p)),
        children.map(lambda e: Select(e, CompareTest("!=", Arg(), Lit(c)))),
        children.map(lambda e: project(Product(e, setconst(a)), 1)),
    )


bodies = st.recursive(leaves, _combine, max_leaves=6)


# Uniform evaluation bounds for generated programs.  The defaults
# (500 rounds / 200k values / 1M ground atoms) admit rare "legal
# monster" bodies — nested products over the recursive constant whose
# alternating fixpoint runs for tens of minutes and gigabytes before
# any bound trips.  Everything the properties are meant to exercise
# fits comfortably inside these; past them the example is skipped.
LIMITS = EvalLimits(max_rounds=200, max_values=50_000)
MAX_ATOMS = 50_000


def _native_or_skip(program):
    """Native answers, skipping programs that define infinite sets
    (products/maps applied to the recursive constant grow unboundedly —
    the evaluator correctly raises on those without a bounding window)."""
    try:
        return algebra_answers_native(
            program, ENV, registry=REGISTRY, limits=LIMITS
        )
    except NonTerminating:
        assume(False)


def _translated_or_skip(program, **kwargs):
    """Translated-route answers under the same bounds as the native
    route; a body too large to ground or evaluate is skipped, not
    ground to death."""
    try:
        return algebra_answers_translated(
            program, ENV, registry=REGISTRY, max_atoms=MAX_ATOMS, **kwargs
        )
    except (NonTerminating, BudgetExceeded):
        assume(False)


def _program(body):
    return AlgebraProgram.of(
        Definition("S", (), body),
        database_relations=["A", "B"],
        dialect=Dialect.ALGEBRA_EQ,
    )


@given(bodies)
@settings(max_examples=60, deadline=None)
def test_native_equals_translated(body):
    program = _program(body)
    native = _native_or_skip(program)
    translated = _translated_or_skip(program)
    assert native == translated, repr(body)


@given(bodies)
@settings(max_examples=60, deadline=None)
def test_wellfounded_route_agrees_too(body):
    """Section 7: the results adjust to the well-founded semantics."""
    program = _program(body)
    native = _native_or_skip(program)
    wfs = _translated_or_skip(program, semantics="wellfounded")
    assert native == wfs, repr(body)


@given(bodies)
@settings(max_examples=60, deadline=None)
def test_syntactically_positive_bodies_are_total(body):
    """Proposition 3.4 on random bodies, with the *syntactic* positivity
    hypothesis: if S never occurs in a subtracted sub-expression of the
    body, the valid model of S = body(S) is total.

    Semantic monotonicity (Def 3.3) is NOT enough: hypothesis found
    ``S = σ_{x≠c}(S ∪ (A − S))`` — semantically monotone (it always
    contains σ(A)), yet its valid model leaves A's members undefined,
    because the §2.2 computation is proof-theoretic: the derivation of
    ``a ∈ A − S`` genuinely needs ``a ∉ S`` to be certainly false, no
    matter that the *value* of the expression doesn't.  (Double
    subtraction, by contrast, cancels at the occurrence level and stays
    total.)  See EXPERIMENTS.md, reproduction note 5.
    """
    from repro.core.expressions import substitute
    from repro.core.positivity import is_positive_in

    as_param = _call_to_param(body)
    if not is_positive_in(as_param, "x"):
        assume(False)
    try:
        result = valid_evaluate(
            _program(body), ENV, registry=REGISTRY, limits=LIMITS
        )
    except NonTerminating:
        # Programs like S = A ∪ (A × S) define genuinely infinite
        # sets; the evaluator correctly refuses them unbounded.
        assume(False)
    assert result.is_well_defined(), repr(body)


def _call_to_param(expr):
    from repro.core.expressions import (
        Call,
        Diff,
        Map,
        Product,
        RelVar,
        Select,
        Union,
    )

    if isinstance(expr, Call) and expr.name == "S":
        return RelVar("x")
    if isinstance(expr, Union):
        return Union(_call_to_param(expr.left), _call_to_param(expr.right))
    if isinstance(expr, Diff):
        return Diff(_call_to_param(expr.left), _call_to_param(expr.right))
    if isinstance(expr, Product):
        return Product(_call_to_param(expr.left), _call_to_param(expr.right))
    if isinstance(expr, Select):
        return Select(_call_to_param(expr.child), expr.test)
    if isinstance(expr, Map):
        return Map(_call_to_param(expr.child), expr.func)
    return expr


def _is_pair(value):
    from repro.relations import Tup

    return isinstance(value, Tup)
