"""Property-based round trips for both surface syntaxes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expressions import (
    Diff,
    Ifp,
    Map,
    Product,
    RelVar,
    Select,
    SetConst,
    Union,
)
from repro.core.funcs import (
    AndTest,
    Apply,
    Arg,
    Comp,
    CompareTest,
    Lit,
    MkTup,
    NotTest,
    OrTest,
    TrueTest,
)
from repro.datalog.ast import Comparison, Const, FuncTerm, Literal, PredAtom, Rule, Var
from repro.datalog.parser import parse_program
from repro.datalog.pretty import pretty_program
from repro.lang import parse_algebra_expr, pretty_algebra_expr
from repro.relations import Atom, Tup

# ---------------------------------------------------------------------------
# Algebra expressions
# ---------------------------------------------------------------------------

atoms = st.sampled_from([Atom("a"), Atom("b"), Atom("c")])
scalar_values = st.one_of(st.integers(0, 9), atoms, st.sampled_from(["s", "t"]))
values = st.one_of(
    scalar_values,
    st.tuples(scalar_values, scalar_values).map(lambda p: Tup(p)),
)

scalars = st.recursive(
    st.one_of(
        st.just(Arg()),
        scalar_values.map(Lit),
        st.builds(Comp, st.just(Arg()), st.integers(1, 3)),
    ),
    lambda children: st.one_of(
        st.tuples(children, children).map(MkTup),
        st.tuples(children).map(lambda args: Apply("succ", args)),
    ),
    max_leaves=3,
)

tests = st.recursive(
    st.one_of(
        st.just(TrueTest()),
        st.builds(
            CompareTest,
            st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
            scalars,
            scalars,
        ),
    ),
    lambda children: st.one_of(
        children.map(NotTest),
        st.tuples(children, children).map(lambda p: AndTest(*p)),
        st.tuples(children, children).map(lambda p: OrTest(*p)),
    ),
    max_leaves=3,
)

expressions = st.recursive(
    st.one_of(
        st.sampled_from([RelVar("A"), RelVar("B")]),
        st.frozensets(values, max_size=3).map(SetConst),
    ),
    lambda children: st.one_of(
        st.tuples(children, children).map(lambda p: Union(*p)),
        st.tuples(children, children).map(lambda p: Diff(*p)),
        st.tuples(children, children).map(lambda p: Product(*p)),
        st.tuples(children, tests).map(lambda p: Select(*p)),
        st.tuples(children, scalars).map(lambda p: Map(*p)),
        children.map(lambda e: Ifp("w", e)),
    ),
    max_leaves=6,
)


@given(expressions)
@settings(max_examples=200, deadline=None)
def test_algebra_expression_roundtrip(expr):
    text = pretty_algebra_expr(expr)
    reparsed = parse_algebra_expr(text, relations=["A", "B"], params=["w"])
    assert reparsed == expr, text


# ---------------------------------------------------------------------------
# Datalog rules
# ---------------------------------------------------------------------------

variables = st.sampled_from([Var("X"), Var("Y"), Var("Z")])
terms = st.recursive(
    st.one_of(
        variables,
        scalar_values.map(Const),
        st.booleans().map(Const),
    ),
    lambda children: st.one_of(
        st.tuples(children).map(lambda args: FuncTerm("succ", args)),
        st.lists(children, min_size=1, max_size=2).map(
            lambda args: FuncTerm("tuple", tuple(args))
        ),
    ),
    max_leaves=3,
)

pred_atoms = st.builds(
    PredAtom,
    st.sampled_from(["p", "q", "edge"]),
    st.lists(terms, max_size=2).map(tuple),
)

body_items = st.one_of(
    st.builds(Literal, pred_atoms, st.booleans()),
    st.builds(
        Comparison, st.sampled_from(["=", "!=", "<", "<=", ">", ">="]), terms, terms
    ),
)


def _groundable_head(head, body):
    """Heads must not introduce fresh variables relative to nothing — the
    pretty/parse round trip doesn't care about safety, so anything goes."""
    return Rule(head, tuple(body))


rules = st.builds(_groundable_head, pred_atoms, st.lists(body_items, max_size=3))


def _fold_ground_tuples(term):
    """The parser's canonical form: a ground ``tuple(...)`` term *is* a
    tuple constant (``[0]`` parses to ``Const(Tup((0,)))``)."""
    if isinstance(term, FuncTerm):
        args = tuple(_fold_ground_tuples(arg) for arg in term.args)
        if term.name == "tuple" and all(isinstance(a, Const) for a in args):
            return Const(Tup(tuple(a.value for a in args)))
        return FuncTerm(term.name, args)
    return term


def _canonical(rule):
    def fold_atom(atom):
        return PredAtom(atom.predicate, tuple(_fold_ground_tuples(a) for a in atom.args))

    body = []
    for item in rule.body:
        if isinstance(item, Literal):
            body.append(Literal(fold_atom(item.atom), item.positive))
        else:
            body.append(
                Comparison(
                    item.op,
                    _fold_ground_tuples(item.left),
                    _fold_ground_tuples(item.right),
                )
            )
    return Rule(fold_atom(rule.head), tuple(body))


@given(st.lists(rules, min_size=1, max_size=4))
@settings(max_examples=200, deadline=None)
def test_datalog_program_roundtrip(rule_list):
    from repro.datalog.ast import Program

    program = Program(tuple(rule_list))
    text = pretty_program(program)
    reparsed = parse_program(text)
    assert reparsed.rules == tuple(_canonical(r) for r in program.rules), text
