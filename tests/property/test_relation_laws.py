"""Property-based tests: algebraic laws of the relation operators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relations import Atom, Relation, Tup, fset, tup, value_key

# A small pool of scalar values keeps overlap between generated sets high.
scalars = st.one_of(
    st.integers(min_value=0, max_value=5),
    st.sampled_from([Atom("a"), Atom("b"), Atom("c")]),
    st.sampled_from(["x", "y"]),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.tuples(children, children).map(lambda pair: tup(*pair)),
        st.frozensets(children, max_size=3).map(lambda s: fset(*s)),
    ),
    max_leaves=4,
)

relations = st.frozensets(values, max_size=6).map(Relation)


@given(relations, relations)
def test_union_commutative(left, right):
    assert left | right == right | left


@given(relations, relations, relations)
def test_union_associative(a, b, c):
    assert (a | b) | c == a | (b | c)


@given(relations)
def test_union_idempotent(a):
    assert a | a == a


@given(relations, relations)
def test_difference_subset(a, b):
    assert (a - b).items <= a.items
    assert not ((a - b).items & b.items)


@given(relations)
def test_difference_self_empty(a):
    assert a - a == Relation.empty()


@given(relations, relations)
def test_intersection_via_double_difference(a, b):
    """Example 3's definition really is intersection."""
    assert a - (a - b) == a & b


@given(relations, relations)
def test_xor_via_differences(a, b):
    assert (a - b) | (b - a) == a ^ b


@given(relations, relations)
def test_de_morgan_for_difference(a, b):
    universe = a | b
    assert universe - (a & b) == (universe - a) | (universe - b)


@given(relations, relations)
def test_product_size(a, b):
    assert len(a * b) == len(a) * len(b)


@given(relations, relations)
def test_product_projections_recover(a, b):
    product = a * b
    assert product.project(1).items <= a.items
    assert product.project(2).items <= b.items
    if a and b:
        assert product.project(1) == a
        assert product.project(2) == b


@given(relations)
def test_select_true_is_identity(a):
    assert a.select(lambda _v: True) == a
    assert a.select(lambda _v: False) == Relation.empty()


@given(relations, relations)
def test_select_distributes_over_union(a, b):
    test = lambda v: value_key(v)[0] <= 2  # noqa: E731 — scalar-only filter
    assert (a | b).select(test) == a.select(test) | b.select(test)


@given(relations)
def test_map_identity(a):
    assert a.map(lambda v: v) == a


@given(relations, relations)
def test_map_distributes_over_union(a, b):
    func = lambda v: tup(v, v)  # noqa: E731
    assert (a | b).map(func) == a.map(func) | b.map(func)


@given(st.frozensets(values, max_size=6))
def test_relation_equals_its_members(members):
    assert Relation(members).items == frozenset(members)
