"""Property-based tests on random ground programs: invariants relating
the semantics engines.

These are the load-bearing invariants of the paper's semantic landscape:

* the valid computation (§2.2) coincides with the alternating fixpoint;
* WFS truths sit inside every stable model, WFS falsities outside all;
* on locally stratified programs the valid model is total;
* the inflationary fixpoint contains the WFS truths (negation-as-not-yet
  derives at least as much as negation-as-never);
* all engines agree on negation-free programs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.grounding import GroundProgram, GroundRule, _AtomTable
from repro.datalog.semantics import (
    inflationary_fixpoint,
    least_model_naive,
    least_model_with_oracle,
    minimal_model,
    stable_models,
    valid_model,
    well_founded_model,
)
from repro.datalog.stratification import is_locally_stratified

ATOMS = 6


def _make_program(rule_specs):
    """Build a GroundProgram over atoms p0..p{ATOMS-1} from
    (head, pos-tuple, neg-tuple) index triples."""
    table = _AtomTable()
    for index in range(ATOMS):
        table.intern((f"p{index}", ()))
    rules = [GroundRule(head, tuple(pos), tuple(neg)) for head, pos, neg in rule_specs]
    return GroundProgram(
        rules=rules, complete=True, idb_predicates=frozenset(), _table=table
    )


atom_indexes = st.integers(min_value=0, max_value=ATOMS - 1)
rule_specs = st.tuples(
    atom_indexes,
    st.frozensets(atom_indexes, max_size=2).map(tuple),
    st.frozensets(atom_indexes, max_size=2).map(tuple),
)
programs = st.lists(rule_specs, min_size=1, max_size=10).map(_make_program)
positive_rule_specs = st.tuples(
    atom_indexes,
    st.frozensets(atom_indexes, max_size=2).map(tuple),
    st.just(()),
)
positive_programs = st.lists(positive_rule_specs, min_size=1, max_size=10).map(
    _make_program
)


@given(programs)
@settings(max_examples=150, deadline=None)
def test_valid_equals_wellfounded(program):
    assert valid_model(program).agrees_with(well_founded_model(program))


@given(programs)
@settings(max_examples=150, deadline=None)
def test_wfs_bounds_every_stable_model(program):
    wfs = well_founded_model(program)
    for model in stable_models(program, max_choice_atoms=ATOMS):
        assert wfs.true <= model.true
        assert not (wfs.false & model.true)


@given(programs)
@settings(max_examples=150, deadline=None)
def test_total_wfs_is_the_unique_stable_model(program):
    wfs = well_founded_model(program)
    if wfs.is_total_for(program):
        models = stable_models(program, max_choice_atoms=ATOMS)
        assert len(models) == 1
        assert models[0].true == wfs.true


@given(programs)
@settings(max_examples=150, deadline=None)
def test_locally_stratified_implies_total_valid(program):
    if is_locally_stratified(program):
        assert valid_model(program).is_total_for(program)


@given(programs)
@settings(max_examples=150, deadline=None)
def test_truths_within_positive_projection(program):
    """The invariant the grounder's relevance pruning rests on: every
    semantics' truths sit inside the least model of the positive
    projection (dropping negative literals only loosens rules).

    Note: WFS truths are NOT in general a subset of the inflationary
    fixpoint — e.g. {p0. ; p1 :- not p0. ; p2 :- p0, not p1.} derives p1
    inflationarily in round one (p0 "not yet" derived), which then blocks
    p2, while the WFS makes p2 true.  Hypothesis found that
    counterexample to an earlier, wrong version of this property.
    """
    projection_rules = [
        GroundRule(rule.head, rule.pos, ()) for rule in program.rules
    ]
    overapprox = least_model_with_oracle(projection_rules, lambda _a: True)
    assert well_founded_model(program).true <= overapprox
    assert inflationary_fixpoint(program) <= overapprox
    for model in stable_models(program, max_choice_atoms=ATOMS):
        assert model.true <= overapprox


@given(positive_programs)
@settings(max_examples=100, deadline=None)
def test_negation_free_engines_agree(program):
    model = minimal_model(program)
    assert inflationary_fixpoint(program) == model
    wfs = well_founded_model(program)
    assert wfs.true == model
    assert wfs.is_total_for(program)
    stables = stable_models(program)
    assert len(stables) == 1 and stables[0].true == model


@given(programs, st.frozensets(atom_indexes, max_size=ATOMS))
@settings(max_examples=150, deadline=None)
def test_naive_and_counting_least_models_agree(program, admitted):
    oracle = lambda atom: atom in admitted  # noqa: E731
    assert least_model_naive(program.rules, oracle) == least_model_with_oracle(
        program.rules, oracle
    )


@given(programs)
@settings(max_examples=100, deadline=None)
def test_stable_models_pass_gl_check(program):
    from repro.datalog.semantics import is_stable_model

    for model in stable_models(program, max_choice_atoms=ATOMS):
        assert is_stable_model(program, model.true)
