"""Property-based tests: Proposition 6.1 on randomly generated safe rules.

A generator of random *safe* deductive programs (structured so that
Definition 4.1 holds by construction) drives the deduction → algebra=
translation; the algebra evaluation must reproduce the deductive answers
three-valued-exactly.  This generalises the corpus-based E11 to a
program space.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algebra_to_datalog import translation_registry
from repro.core.equivalence import check_datalog_roundtrip
from repro.datalog.ast import (
    Comparison,
    Const,
    FuncTerm,
    Literal,
    PredAtom,
    Program,
    Rule,
    Var,
)
from repro.datalog.database import Database
from repro.datalog.safety import is_safe_program
from repro.relations import Atom

REGISTRY = translation_registry()

X, Y, Z = Var("X"), Var("Y"), Var("Z")
a, b, c = Atom("a"), Atom("b"), Atom("c")

# EDB: e/1 and r/2 with fixed contents (the randomness is in the rules).
DATABASE = (
    Database()
    .add("e", a)
    .add("e", b)
    .add("e", c)
    .add("r", a, b)
    .add("r", b, c)
    .add("r", c, a)
)

IDB_PREDICATES = ("p", "q")


def _guards(variables):
    """Positive literals binding every variable (safety by construction)."""
    return tuple(Literal(PredAtom("e", (variable,)), True) for variable in variables)


positive_extras = st.lists(
    st.one_of(
        st.builds(
            lambda pred, args: Literal(PredAtom(pred, args), True),
            st.sampled_from(["e", "p", "q"]),
            st.sampled_from([(X,), (Y,)]),
        ),
        st.builds(
            lambda args: Literal(PredAtom("r", args), True),
            st.sampled_from([(X, Y), (Y, X), (X, X)]),
        ),
    ),
    max_size=2,
)

negative_extras = st.lists(
    st.builds(
        lambda pred, args: Literal(PredAtom(pred, args), False),
        st.sampled_from(["p", "q"]),
        st.sampled_from([(X,), (Y,)]),
    ),
    max_size=2,
)

comparisons = st.lists(
    st.builds(
        Comparison,
        st.sampled_from(["!=", "="]),
        st.sampled_from([X, Y]),
        st.sampled_from([X, Y, Const(a), Const(b)]),
    ),
    max_size=1,
)

heads = st.sampled_from(
    [PredAtom("p", (X,)), PredAtom("q", (X,)), PredAtom("q", (Y,))]
)


def _build_rule(head, pos, neg, cmps):
    variables = sorted(
        head.vars()
        | {v for item in pos + neg + cmps for v in item.vars()},
        key=lambda v: v.name,
    )
    return Rule(head, _guards(variables) + tuple(pos) + tuple(neg) + tuple(cmps))


rules = st.builds(_build_rule, heads, positive_extras, negative_extras, comparisons)
programs = st.lists(rules, min_size=1, max_size=4).map(
    lambda rule_list: Program(tuple(rule_list))
)


@given(programs)
@settings(max_examples=60, deadline=None)
def test_generated_programs_are_safe(program):
    assert is_safe_program(program)


@given(programs)
@settings(max_examples=60, deadline=None)
def test_prop_6_1_on_random_safe_programs(program):
    report = check_datalog_roundtrip(program, DATABASE, registry=REGISTRY)
    assert report.matches, (program.pretty(), report.mismatches())
