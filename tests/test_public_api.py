"""Smoke tests for the public API surface.

Every name advertised in an ``__all__`` must resolve, the README
quickstart must run, and the version must be set — the checks a release
pipeline would gate on.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.relations",
    "repro.datalog",
    "repro.datalog.semantics",
    "repro.core",
    "repro.specs",
    "repro.lang",
    "repro.corpus",
    "repro.service",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__")
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_version():
    import repro

    assert repro.__version__


def test_readme_quickstart_runs():
    from repro import (
        Atom,
        Dialect,
        parse_algebra_program,
        parse_program,
        translation_registry,
        valid_evaluate,
    )
    from repro.relations import Relation, tup

    registry = translation_registry()
    a, b, c, d = (Atom(x) for x in "abcd")
    move = Relation([tup(a, b), tup(a, c), tup(c, d)], name="MOVE")
    win = parse_algebra_program(
        "relations MOVE;  WIN = pi1(MOVE - (pi1(MOVE) * WIN));",
        dialect=Dialect.ALGEBRA_EQ,
    )
    result = valid_evaluate(win, {"MOVE": move}, registry=registry)
    assert result.relation("WIN") == Relation.of(a, c)
    assert result.is_well_defined()
    parse_program("win(X) :- move(X, Y), not win(Y).")


def test_cli_help_mentions_subcommands():
    from repro.cli import build_parser

    helptext = build_parser().format_help()
    for command in ("datalog", "algebra", "translate", "check", "serve"):
        assert command in helptext


def test_no_public_item_without_docstring_in_core():
    """Deliverable (e): doc comments on every public item — spot-audit
    the core package programmatically."""
    import ast
    import pathlib

    import repro.core

    root = pathlib.Path(repro.core.__file__).parent
    offenders = []
    for path in sorted(root.glob("*.py")):
        tree = ast.parse(path.read_text())

        def visit(node, in_func=False):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.ClassDef)):
                    if (
                        not in_func
                        and not child.name.startswith("_")
                        and not ast.get_docstring(child)
                    ):
                        offenders.append(f"{path.name}:{child.name}")
                    visit(child, in_func or isinstance(child, ast.FunctionDef))

        visit(tree)
    assert not offenders, offenders
