"""Unit tests for the algebra surface syntax."""

import pytest

from repro.core.expressions import (
    Call,
    Diff,
    Ifp,
    Map,
    Product,
    RelVar,
    Select,
    SetConst,
    Union,
)
from repro.core.funcs import Apply, Arg, Comp, CompareTest, Lit, MkTup
from repro.core.programs import Dialect, ProgramError
from repro.lang import AlgebraParseError, parse_algebra_expr, parse_algebra_program
from repro.relations import Atom, Tup


class TestExpressions:
    def test_union_diff_left_assoc(self):
        expr = parse_algebra_expr("A u B - C", relations=["A", "B", "C"])
        assert expr == Diff(Union(RelVar("A"), RelVar("B")), RelVar("C"))

    def test_product_binds_tighter(self):
        expr = parse_algebra_expr("A u B * C", relations=["A", "B", "C"])
        assert expr == Union(RelVar("A"), Product(RelVar("B"), RelVar("C")))

    def test_parentheses(self):
        expr = parse_algebra_expr("A - (B u C)", relations=["A", "B", "C"])
        assert expr == Diff(RelVar("A"), Union(RelVar("B"), RelVar("C")))

    def test_set_constants(self):
        expr = parse_algebra_expr("{a, 1, 'x', [a, b]}")
        assert isinstance(expr, SetConst)
        assert Atom("a") in expr.values
        assert 1 in expr.values
        assert "x" in expr.values
        assert Tup((Atom("a"), Atom("b"))) in expr.values

    def test_empty(self):
        assert parse_algebra_expr("empty") == SetConst(frozenset())
        assert parse_algebra_expr("{}") == SetConst(frozenset())

    def test_sigma(self):
        expr = parse_algebra_expr("sigma[it.1 = a](R)", relations=["R"])
        assert isinstance(expr, Select)
        assert expr.test == CompareTest("=", Comp(Arg(), 1), Lit(Atom("a")))

    def test_sigma_connectives(self):
        expr = parse_algebra_expr(
            "sigma[it > 1 and not (it > 5)](R)", relations=["R"]
        )
        assert isinstance(expr, Select)

    def test_map_scalars(self):
        expr = parse_algebra_expr("map[[it.2, succ(it.1)]](R)", relations=["R"])
        assert isinstance(expr, Map)
        assert expr.func == MkTup(
            (Comp(Arg(), 2), Apply("succ", (Comp(Arg(), 1),)))
        )

    def test_pi_sugar(self):
        expr = parse_algebra_expr("pi2(R)", relations=["R"])
        assert expr == Map(RelVar("R"), Comp(Arg(), 2))

    def test_ifp(self):
        expr = parse_algebra_expr("ifp(w, {a} - w)")
        assert isinstance(expr, Ifp)
        assert expr.param == "w"
        assert expr.body == Diff(SetConst(frozenset({Atom("a")})), RelVar("w"))

    def test_call_with_args(self):
        expr = parse_algebra_expr(
            "inter(A, B)", relations=["A", "B"], defined=["inter"]
        )
        assert expr == Call("inter", (RelVar("A"), RelVar("B")))

    def test_unknown_name_rejected(self):
        with pytest.raises(AlgebraParseError, match="unknown name"):
            parse_algebra_expr("MYSTERY")

    def test_trailing_input_rejected(self):
        with pytest.raises(AlgebraParseError):
            parse_algebra_expr("A A", relations=["A"])


class TestPrograms:
    def test_relations_header(self):
        program = parse_algebra_program(
            "relations R, S;\nT = R u S;", dialect=Dialect.ALGEBRA_EQ
        )
        assert program.database_relations == {"R", "S"}

    def test_parameters_resolve(self):
        program = parse_algebra_program(
            "inter(x, y) = x - (x - y);", dialect=Dialect.ALGEBRA_EQ
        )
        definition = program.definition("inter")
        assert definition.params == ("x", "y")
        assert definition.body == Diff(
            RelVar("x"), Diff(RelVar("x"), RelVar("y"))
        )

    def test_zero_ary_recursion_resolves_to_call(self):
        program = parse_algebra_program(
            "relations MOVE;\nWIN = pi1(MOVE - (pi1(MOVE) * WIN));",
            dialect=Dialect.ALGEBRA_EQ,
        )
        from repro.core.expressions import called_names

        assert called_names(program.definition("WIN").body) == {"WIN"}

    def test_comments(self):
        program = parse_algebra_program("% header\nS = {a}; % tail\n")
        assert len(program.definitions) == 1

    def test_dialect_enforced(self):
        with pytest.raises(ProgramError):
            parse_algebra_program(
                "S = ifp(x, x u {a});", dialect=Dialect.ALGEBRA_EQ
            )

    def test_ifp_param_scopes_inside_body_only(self):
        program = parse_algebra_program("S = ifp(w, w u {a});")
        body = program.definition("S").body
        assert isinstance(body, Ifp)
        assert isinstance(body.body.left, RelVar)
