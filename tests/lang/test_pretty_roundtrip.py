"""Pretty-printer round trips for the algebra surface syntax."""

import pytest

from repro.corpus import ALGEBRA_CORPUS
from repro.core.expressions import diff, ifp, map_, product, select, setconst, union, rel
from repro.core.funcs import AndTest, Apply, Arg, Comp, CompareTest, Lit, MkTup, NotTest, OrTest, TrueTest
from repro.lang import parse_algebra_expr, parse_algebra_program, pretty_algebra_expr, pretty_algebra_program
from repro.relations import Atom


@pytest.mark.parametrize("name", sorted(ALGEBRA_CORPUS))
def test_corpus_round_trips(name):
    case = ALGEBRA_CORPUS[name]
    program = case.program
    reparsed = parse_algebra_program(
        pretty_algebra_program(program), dialect=program.dialect
    )
    assert reparsed.definitions == program.definitions
    assert reparsed.database_relations == program.database_relations


@pytest.mark.parametrize(
    "expr",
    [
        union(rel("A"), diff(rel("B"), rel("C"))),
        product(rel("A"), setconst(Atom("a"), 1, "s")),
        select(rel("A"), AndTest(CompareTest("<", Arg(), Lit(3)), NotTest(TrueTest()))),
        select(rel("A"), OrTest(TrueTest(), CompareTest("!=", Comp(Arg(), 1), Lit(1)))),
        map_(rel("A"), MkTup((Comp(Arg(), 2), Apply("succ", (Arg(),))))),
        ifp("w", diff(setconst(Atom("a")), rel("w"))),
    ],
)
def test_expression_round_trips(expr):
    text = pretty_algebra_expr(expr)
    reparsed = parse_algebra_expr(text, relations=["A", "B", "C"])
    assert reparsed == expr


def test_empty_setconst():
    assert pretty_algebra_expr(setconst()) == "{}"
    assert parse_algebra_expr("{}") == setconst()
