"""Unit tests: EvaluationBudget, CancellationToken, the error hierarchy."""

import time

import pytest

from repro.robustness import (
    BudgetExceeded,
    Cancelled,
    CancellationToken,
    DeadlineExceeded,
    EvaluationBudget,
    EvaluationProgress,
    NonTerminating,
    ReproError,
    RequestTooLarge,
    ViewDegraded,
)


class TestErrorHierarchy:
    def test_everything_is_a_repro_error_and_runtime_error(self):
        for cls in (
            BudgetExceeded,
            DeadlineExceeded,
            Cancelled,
            NonTerminating,
            ViewDegraded,
            RequestTooLarge,
        ):
            assert issubclass(cls, ReproError)
            assert issubclass(cls, RuntimeError)

    def test_specialised_budget_errors(self):
        from repro.datalog.grounding import GroundingBudgetExceeded, GroundingError
        from repro.datalog.semantics.stable import TooManyChoiceAtoms
        from repro.specs.rewriting import RewriteLimit

        assert issubclass(NonTerminating, BudgetExceeded)
        assert issubclass(RewriteLimit, BudgetExceeded)
        assert issubclass(TooManyChoiceAtoms, BudgetExceeded)
        assert issubclass(GroundingBudgetExceeded, BudgetExceeded)
        assert issubclass(GroundingBudgetExceeded, GroundingError)

    def test_distinct_wire_codes(self):
        codes = {
            cls.code
            for cls in (
                BudgetExceeded,
                DeadlineExceeded,
                Cancelled,
                NonTerminating,
                ViewDegraded,
                RequestTooLarge,
            )
        }
        assert len(codes) == 6

    def test_diagnostics_payload(self):
        progress = EvaluationProgress(steps=7, facts=3, iterations=2, phase="x")
        error = BudgetExceeded("out of steps", progress=progress)
        payload = error.diagnostics()
        assert payload["code"] == "budget-exceeded"
        assert payload["message"] == "out of steps"
        assert payload["progress"]["steps"] == 7
        assert payload["progress"]["facts"] == 3
        assert payload["progress"]["phase"] == "x"

    def test_diagnostics_without_progress(self):
        payload = ReproError("plain").diagnostics()
        assert payload == {"code": "error", "message": "plain"}


class TestEvaluationBudget:
    def test_unlimited_only_accumulates(self):
        budget = EvaluationBudget.unlimited()
        for _ in range(1000):
            budget.tick()
        budget.charge_facts(50)
        budget.note_iteration(stratum=3, phase="solve")
        assert budget.progress.steps == 1000
        assert budget.progress.facts == 50
        assert budget.progress.iterations == 1
        assert budget.progress.last_stratum == 3

    def test_step_budget(self):
        budget = EvaluationBudget(max_steps=10)
        with pytest.raises(BudgetExceeded) as info:
            for _ in range(11):
                budget.tick(phase="testing")
        assert info.value.progress.steps == 11
        assert "testing" in str(info.value)

    def test_fact_budget(self):
        budget = EvaluationBudget(max_facts=5)
        with pytest.raises(BudgetExceeded):
            budget.charge_facts(6)

    def test_deadline_is_checked_at_iterations(self):
        budget = EvaluationBudget(deadline_seconds=0.01)
        time.sleep(0.02)
        with pytest.raises(DeadlineExceeded):
            budget.note_iteration()

    def test_deadline_is_checked_every_interval_ticks(self):
        budget = EvaluationBudget(deadline_seconds=0.01, check_interval=8)
        time.sleep(0.02)
        with pytest.raises(DeadlineExceeded):
            for _ in range(9):
                budget.tick()
        # Fewer ticks than the interval never consult the clock.
        fresh = EvaluationBudget(deadline_seconds=0.01, check_interval=1000)
        time.sleep(0.02)
        for _ in range(5):
            fresh.tick()

    def test_cancellation_observed_on_tick_and_check(self):
        token = CancellationToken()
        budget = EvaluationBudget(cancellation=token)
        budget.tick()
        token.cancel()
        assert token.cancelled
        with pytest.raises(Cancelled):
            budget.tick()
        with pytest.raises(Cancelled):
            budget.check()

    def test_from_millis(self):
        budget = EvaluationBudget.from_millis(1500.0)
        assert 1.0 < budget.remaining_seconds() <= 1.5
        assert EvaluationBudget.from_millis(None).deadline is None

    def test_remaining_seconds_without_deadline(self):
        assert EvaluationBudget().remaining_seconds() is None

    def test_shared_budget_spans_phases(self):
        budget = EvaluationBudget(max_steps=10)
        budget.tick(6, phase="grounding")
        with pytest.raises(BudgetExceeded):
            budget.tick(6, phase="solving")
