"""Unit tests: the deterministic fault-injection harness."""

import threading

import pytest

from repro.corpus import DEDUCTIVE_CORPUS, chain, edges_to_database
from repro.datalog import ground
from repro.datalog.seminaive import seminaive_stratified
from repro.robustness import (
    ALL_POINTS,
    FaultInjector,
    FaultRule,
    InjectedFault,
    fault_point,
    inject_faults,
)


class TestFaultInjector:
    def test_fires_at_the_named_hit(self):
        injector = FaultInjector([FaultRule("p", at_hit=3)])
        injector.fire("p")
        injector.fire("p")
        with pytest.raises(InjectedFault) as info:
            injector.fire("p")
        assert info.value.point == "p"
        assert info.value.hit == 3
        assert info.value.code == "injected-fault"

    def test_times_bounds_firings(self):
        injector = FaultInjector([FaultRule("p", at_hit=1, times=2)])
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.fire("p")
        injector.fire("p")  # the transient fault has burnt out
        assert len(injector.fired) == 2

    def test_persistent_fault(self):
        injector = FaultInjector([FaultRule("p", times=None)])
        for _ in range(5):
            with pytest.raises(InjectedFault):
                injector.fire("p")

    def test_other_points_unaffected(self):
        injector = FaultInjector([FaultRule("p")])
        injector.fire("q")
        assert injector.hits == {"q": 1}

    def test_random_plans_are_deterministic(self):
        first = FaultInjector.random(seed=42, rate=0.2)
        second = FaultInjector.random(seed=42, rate=0.2)
        assert first.rules == second.rules
        different = FaultInjector.random(seed=43, rate=0.2)
        assert first.rules != different.rules

    def test_random_plan_respects_points(self):
        injector = FaultInjector.random(seed=7, points=("a", "b"), rate=0.5)
        assert {rule.point for rule in injector.rules} <= {"a", "b"}


class TestInjectionScoping:
    def test_noop_without_active_injector(self):
        fault_point("grounder.round")  # must not raise

    def test_context_manager_activates_and_restores(self):
        injector = FaultInjector([FaultRule("x")])
        with inject_faults(injector):
            with pytest.raises(InjectedFault):
                fault_point("x")
        fault_point("x")  # deactivated again

    def test_nested_injectors_restore_the_outer_one(self):
        outer = FaultInjector()
        inner = FaultInjector()
        with inject_faults(outer):
            with inject_faults(inner):
                fault_point("y")
            fault_point("y")
        assert inner.hits == {"y": 1}
        assert outer.hits == {"y": 1}

    def test_injection_is_thread_local(self):
        injector = FaultInjector([FaultRule("z", times=None)])
        seen = []

        def other_thread():
            fault_point("z")  # no injector active on this thread
            seen.append("survived")

        with inject_faults(injector):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert seen == ["survived"]


class TestEnginePoints:
    def test_grounder_round_is_injectable(self):
        program = DEDUCTIVE_CORPUS["transitive-closure"].program
        database = edges_to_database(chain(4))
        with inject_faults(FaultInjector([FaultRule("grounder.round")])):
            with pytest.raises(InjectedFault):
                ground(program, database)

    def test_seminaive_round_is_injectable(self):
        program = DEDUCTIVE_CORPUS["transitive-closure"].program
        database = edges_to_database(chain(4))
        with inject_faults(FaultInjector([FaultRule("seminaive.round")])):
            with pytest.raises(InjectedFault):
                seminaive_stratified(program, database)

    def test_all_points_are_reachable_somewhere(self):
        # The registry of names is closed: every instrumented call site
        # uses a name from ALL_POINTS (grep-enforced by this list).
        assert set(ALL_POINTS) == {
            "grounder.round",
            "seminaive.round",
            "incremental.apply",
            "incremental.component",
            "incremental.initialize",
            "view.recompute",
            "cache.get",
            "cache.put",
            "service.lock",
            "durability.append",
            "durability.fsync",
            "durability.checkpoint",
            "durability.recover",
        }

    def test_service_lock_is_injectable(self):
        from repro.service.locks import InstrumentedLock

        lock = InstrumentedLock("v")
        with inject_faults(FaultInjector([FaultRule("service.lock")])):
            with pytest.raises(InjectedFault):
                with lock.held():
                    pass
        # The fault fires *before* acquisition, so the lock never leaks:
        # another thread (the lock is reentrant) can still take it.
        acquired = []

        def probe():
            if lock._lock.acquire(blocking=False):
                lock._lock.release()
                acquired.append(True)

        worker = threading.Thread(target=probe)
        worker.start()
        worker.join()
        assert acquired == [True]
