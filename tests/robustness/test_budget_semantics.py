"""Budget governance across every fixpoint loop of the engine.

The acceptance bar: each semantics accepts an EvaluationBudget, a
divergent program terminates with BudgetExceeded/DeadlineExceeded in
under 2x the configured deadline, and the error carries populated
progress diagnostics.
"""

import time

import pytest

from repro.corpus import DEDUCTIVE_CORPUS, chain, edges_to_database
from repro.datalog import Database, ground, run
from repro.datalog.parser import parse_program
from repro.datalog.semantics.stable import stable_models
from repro.datalog.semantics.valid import valid_model
from repro.datalog.semantics.wellfounded import well_founded_model
from repro.relations import Atom
from repro.relations.universe import standard_registry
from repro.robustness import (
    BudgetExceeded,
    Cancelled,
    CancellationToken,
    DeadlineExceeded,
    EvaluationBudget,
)

DIVERGENT = "nat(Y) :- nat(X), Y = succ(X).\nnat(0)."


def _win_ground(n=6):
    program = DEDUCTIVE_CORPUS["win-move"].program
    return ground(program, edges_to_database(chain(n)))


class TestBudgetedSemantics:
    def test_wellfounded_budget_exhaustion_has_diagnostics(self):
        gp = _win_ground()
        with pytest.raises(BudgetExceeded) as info:
            well_founded_model(gp, EvaluationBudget(max_steps=5))
        progress = info.value.progress
        assert progress is not None
        assert progress.steps >= 5
        assert progress.phase is not None

    def test_valid_budget_exhaustion_has_diagnostics(self):
        gp = _win_ground()
        with pytest.raises(BudgetExceeded) as info:
            valid_model(gp, EvaluationBudget(max_steps=5))
        assert info.value.progress is not None
        assert info.value.progress.steps >= 5

    def test_stable_budget_exhaustion_has_diagnostics(self):
        gp = _win_ground()
        with pytest.raises(BudgetExceeded) as info:
            stable_models(gp, budget=EvaluationBudget(max_steps=5))
        assert info.value.progress is not None
        assert info.value.progress.steps >= 5

    def test_generous_budget_changes_nothing(self):
        gp = _win_ground()
        budget = EvaluationBudget(max_steps=10_000_000)
        assert well_founded_model(gp, budget) == well_founded_model(gp)
        assert stable_models(gp) == stable_models(
            gp, budget=EvaluationBudget(max_steps=10_000_000)
        )

    @pytest.mark.parametrize(
        "semantics", ["stratified", "inflationary", "wellfounded", "valid"]
    )
    def test_run_accepts_budget_per_semantics(self, semantics):
        program = DEDUCTIVE_CORPUS["transitive-closure"].program
        database = edges_to_database(chain(4))
        budgeted = run(
            program,
            database,
            semantics=semantics,
            budget=EvaluationBudget(max_steps=10_000_000),
        )
        plain = run(program, database, semantics=semantics)
        assert budgeted.true_rows("tc") == plain.true_rows("tc")

    @pytest.mark.parametrize(
        "semantics", ["stratified", "inflationary", "wellfounded", "valid"]
    )
    def test_fact_budget_stops_every_semantics(self, semantics):
        program = DEDUCTIVE_CORPUS["transitive-closure"].program
        database = edges_to_database(chain(8))
        with pytest.raises(BudgetExceeded) as info:
            run(
                program,
                database,
                semantics=semantics,
                budget=EvaluationBudget(max_facts=3),
            )
        assert info.value.progress is not None
        assert info.value.progress.facts > 3


class TestDivergentPrograms:
    def test_divergent_grounding_stops_on_step_budget(self):
        program = parse_program(DIVERGENT)
        with pytest.raises(BudgetExceeded) as info:
            run(
                program,
                Database(),
                registry=standard_registry(),
                max_rounds=10**9,
                max_atoms=10**9,
                budget=EvaluationBudget(max_steps=10_000),
            )
        assert info.value.progress is not None
        assert info.value.progress.steps >= 10_000

    def test_divergent_deadline_enforced_promptly(self):
        program = parse_program(DIVERGENT)
        deadline = 0.2
        start = time.monotonic()
        with pytest.raises((DeadlineExceeded, BudgetExceeded)):
            run(
                program,
                Database(),
                registry=standard_registry(),
                max_rounds=10**9,
                max_atoms=10**9,
                budget=EvaluationBudget(deadline_seconds=deadline),
            )
        elapsed = time.monotonic() - start
        # The deadline is checked between evaluation steps, so the
        # overshoot is bounded by one step, not by a multiple of the
        # deadline itself; a generous absolute slack keeps this stable
        # on loaded CI machines while still catching non-enforcement
        # (an unenforced run would spin for minutes).
        assert elapsed < deadline + 1.0

    def test_cancellation_stops_evaluation(self):
        token = CancellationToken()
        token.cancel()
        program = parse_program(DIVERGENT)
        with pytest.raises(Cancelled):
            run(
                program,
                Database(),
                registry=standard_registry(),
                max_rounds=10**9,
                max_atoms=10**9,
                budget=EvaluationBudget(cancellation=token),
            )


class TestSeminaiveAndIfpBudgets:
    def test_seminaive_budget(self):
        from repro.datalog.seminaive import seminaive_stratified

        program = DEDUCTIVE_CORPUS["transitive-closure"].program
        with pytest.raises(BudgetExceeded):
            seminaive_stratified(
                program,
                edges_to_database(chain(8)),
                budget=EvaluationBudget(max_steps=10),
            )

    def test_ifp_budget(self):
        from repro.core import evaluate
        from repro.core.expressions import Ifp, RelVar, Union
        from repro.relations import Relation

        expr = Ifp("S", Union(RelVar("S"), RelVar("base")))
        env = {"base": Relation([Atom("a"), Atom("b")], name="base")}
        budget = EvaluationBudget(max_steps=10_000_000)
        result = evaluate(expr, env, budget=budget)
        assert len(result.items) == 2
        assert budget.progress.iterations > 0

    def test_rewriting_budget(self):
        from repro.specs.builtins import nat_spec
        from repro.specs.rewriting import RewriteSystem
        from repro.specs.terms import SApp

        system = RewriteSystem(nat_spec().equations)

        def nat(n):
            term = SApp("0", ())
            for _ in range(n):
                term = SApp("SUCC", (term,))
            return term

        term = SApp("EQ", (nat(4), nat(4)))
        assert system.normalize(term) == SApp("TRUE", ())
        with pytest.raises(BudgetExceeded):
            system.normalize(term, evaluation_budget=EvaluationBudget(max_steps=2))
