"""Chaos suite: randomized fault injection against the query service.

Each run takes a fresh service, a seeded random sequence of insert /
delete / query operations, and a seeded random fault plan over every
instrumented point.  The invariant under test is the response
trichotomy — every single response is one of

* the **exact** model (equal to a from-scratch evaluation of the
  current database),
* the **last consistent** model, explicitly flagged stale, or
* a **structured** :class:`~repro.robustness.ReproError`,

and never a silently corrupted model.  The sweep runs well over 200
seeded scenarios (the ISSUE's acceptance bar) and additionally checks
that after the faults clear, recovery restores exact service.
"""

import random

import pytest

from repro.datalog import Database
from repro.datalog.engine import run
from repro.datalog.parser import parse_program
from repro.relations import Atom
from repro.robustness import (
    ALL_POINTS,
    FaultInjector,
    ReproError,
    inject_faults,
)
from repro.service import QueryService

RULES = (
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Z) :- tc(X, Y), edge(Y, Z).\n"
    "unreachable(X, Y) :- node(X), node(Y), not tc(X, Y).\n"
)
PROGRAM = parse_program(RULES)
NODES = [Atom(name) for name in "abcde"]
QUERY_PREDICATES = ("tc", "unreachable")

SEEDS = range(220)
OPS_PER_RUN = 6


def _seed_database():
    database = Database()
    for node in NODES:
        database.add("node", node)
    database.add("edge", NODES[0], NODES[1])
    database.add("edge", NODES[1], NODES[2])
    return database


def _expected(database):
    # The oracle must never be faulted itself: evaluate under an empty
    # (never-firing) injector to shadow any active chaos plan.
    with inject_faults(FaultInjector()):
        result = run(PROGRAM, database, semantics="stratified")
    return {
        predicate: result.true_rows(predicate) for predicate in QUERY_PREDICATES
    }


def _copy(database):
    return database.copy()


def _run_one_scenario(seed):
    """One chaos run; returns (#fired faults, #stale responses)."""
    rng = random.Random(seed)
    service = QueryService(cache_capacity=8)
    database = _seed_database()
    service.register("g", RULES, database=database)

    # Shadow bookkeeping: `shadow` tracks the database the service has
    # acknowledged; `last_good` the state backing the last consistent
    # model a degraded view would serve.
    shadow = _copy(database)
    last_good = _copy(database)

    injector = FaultInjector.random(
        seed=seed, points=ALL_POINTS, rate=0.06, horizon=40
    )
    stale_seen = 0

    with inject_faults(injector):
        for _step in range(OPS_PER_RUN):
            op = rng.choice(("insert", "delete", "query", "query"))
            if op in ("insert", "delete"):
                source, target = rng.choice(NODES), rng.choice(NODES)
                row = (source, target)
                try:
                    summary = (
                        service.insert("g", "edge", *row)
                        if op == "insert"
                        else service.delete("g", "edge", *row)
                    )
                except ReproError:
                    # Structured failure: the batch must have been
                    # rejected atomically — the shadow doesn't move.
                    continue
                if op == "insert":
                    shadow.add("edge", *row)
                else:
                    shadow.discard("edge", *row)
                if not service.view("g").stale:
                    last_good = _copy(shadow)
                    assert summary["mode"] in (
                        "incremental",
                        "reinitialized",
                        "recompute",
                    )
            else:
                predicate = rng.choice(QUERY_PREDICATES)
                view = service.view("g")
                try:
                    rows = service.query("g", predicate)
                except ReproError:
                    continue
                if view.stale:
                    stale_seen += 1
                    reference = _expected(last_good)[predicate]
                else:
                    reference = _expected(shadow)[predicate]
                assert rows == reference, (
                    f"seed {seed}: corrupted {predicate} rows "
                    f"(stale={view.stale})"
                )

    # Faults cleared: the service must recover to exact answers.
    view = service.view("g")
    if view.stale:
        assert view.recover()
    service.cache.clear()
    expected = _expected(shadow)
    for predicate in QUERY_PREDICATES:
        assert service.query("g", predicate) == expected[predicate], (
            f"seed {seed}: post-recovery mismatch on {predicate}"
        )
    assert view.fingerprint() == shadow.fingerprint(), (
        f"seed {seed}: EDB diverged from the acknowledged updates"
    )
    return len(injector.fired), stale_seen


@pytest.mark.parametrize("seed_block", range(0, len(SEEDS), 20))
def test_chaos_block(seed_block):
    """20 seeded scenarios per block — 220 runs across the sweep."""
    for seed in range(seed_block, min(seed_block + 20, len(SEEDS))):
        _run_one_scenario(seed)


def test_chaos_sweep_actually_injects_faults():
    """Sanity: the sweep exercises faults (it isn't a green no-op)."""
    fired_total = 0
    for seed in range(0, 220, 7):
        fired, _stale = _run_one_scenario(seed)
        fired_total += fired
    assert fired_total > 0
