"""Rollback, degraded-mode serving, and recovery of materialized views."""

import pytest

from repro.datalog import Database
from repro.relations import Atom
from repro.datalog.engine import run
from repro.datalog.parser import parse_program
from repro.robustness import (
    FaultInjector,
    FaultRule,
    InjectedFault,
    ViewDegraded,
    inject_faults,
)
from repro.service import MaterializedView, QueryService, prepare_program, serve_stream

TC_SOURCE = (
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Z) :- tc(X, Y), edge(Y, Z).\n"
    "edge(a, b).\nedge(b, c).\n"
)


def _tc_view(**kwargs):
    prepared = prepare_program("tc", TC_SOURCE)
    return MaterializedView(prepared, **kwargs)


def _expected_tc(database):
    program = parse_program(
        "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- tc(X, Y), edge(Y, Z).\n"
    )
    return run(program, database, semantics="stratified").true_rows("tc")


class TestRollback:
    def test_failed_batch_rolls_back_the_edb(self):
        view = _tc_view()
        before = view.fingerprint()
        before_rows = view.rows("tc")
        plan = FaultInjector([FaultRule("incremental.component")])
        with inject_faults(plan):
            with pytest.raises(InjectedFault):
                view.apply(inserts=[("edge", (Atom("c"), Atom("d")))])
        # The batch was rejected atomically: EDB back to the pre-batch
        # state, model consistent with it, view still healthy.
        assert view.fingerprint() == before
        assert view.rows("tc") == before_rows
        assert not view.stale
        assert view.rows("tc") == _expected_tc(view.database)

    def test_failed_delete_batch_rolls_back_too(self):
        view = _tc_view()
        before = view.fingerprint()
        plan = FaultInjector([FaultRule("incremental.component")])
        with inject_faults(plan):
            with pytest.raises(InjectedFault):
                view.apply(deletes=[("edge", (Atom("a"), Atom("b")))])
        assert view.fingerprint() == before
        assert view.rows("tc") == _expected_tc(view.database)

    def test_view_works_normally_after_rollback(self):
        view = _tc_view()
        with inject_faults(FaultInjector([FaultRule("incremental.component")])):
            with pytest.raises(InjectedFault):
                view.apply(inserts=[("edge", (Atom("c"), Atom("d")))])
        summary = view.apply(inserts=[("edge", (Atom("c"), Atom("d")))])
        assert summary["mode"] == "incremental"
        assert (Atom("a"), Atom("d")) in view.rows("tc")


class TestDegradedIncremental:
    def test_persistent_failure_degrades_to_stale_service(self):
        view = _tc_view()
        good_rows = view.rows("tc")
        # Every maintenance attempt *and* every rebuild fails.
        plan = FaultInjector(
            [
                FaultRule("incremental.component", times=None),
                FaultRule("incremental.initialize", times=None),
            ]
        )
        with inject_faults(plan):
            with pytest.raises(ViewDegraded):
                view.apply(inserts=[("edge", (Atom("c"), Atom("d")))])
            assert view.stale
            # Degraded service: the last consistent model, not a crash.
            assert view.rows("tc") == good_rows
            stats = view.stats()
            assert stats["stale"] is True
            assert "last_error" in stats
        # Outside the blast radius, recovery restores exact service.
        assert view.recover()
        assert not view.stale
        assert view.rows("tc") == _expected_tc(view.database)

    def test_next_successful_update_clears_staleness(self):
        view = _tc_view()
        plan = FaultInjector(
            [
                FaultRule("incremental.component", times=None),
                FaultRule("incremental.initialize", times=None),
            ]
        )
        with inject_faults(plan):
            with pytest.raises(ViewDegraded):
                view.apply(inserts=[("edge", (Atom("c"), Atom("d")))])
        assert view.stale
        summary = view.apply(inserts=[("edge", (Atom("c"), Atom("d")))])
        assert summary["mode"] == "incremental"
        assert not view.stale
        assert (Atom("a"), Atom("d")) in view.rows("tc")

    def test_transient_rebuild_failure_is_retried(self):
        view = _tc_view()
        # Maintenance fails persistently, the rebuild only once — the
        # retry loop must absorb the transient and stay healthy.
        plan = FaultInjector(
            [
                FaultRule("incremental.component", times=None),
                FaultRule("incremental.initialize", times=1),
            ]
        )
        with inject_faults(plan):
            with pytest.raises(InjectedFault):
                view.apply(inserts=[("edge", (Atom("c"), Atom("d")))])
        assert not view.stale
        assert view.rows("tc") == _expected_tc(view.database)


class TestDegradedRecompute:
    def test_recompute_view_serves_stale_when_evaluation_fails(self):
        view = _tc_view(semantics="valid", incremental=False)
        good_rows = view.rows("tc")  # populates the last-good snapshot
        view.apply(inserts=[("edge", (Atom("c"), Atom("d")))])
        with inject_faults(
            FaultInjector([FaultRule("view.recompute", times=None)])
        ):
            rows = view.rows("tc")
        assert view.stale
        assert rows == good_rows
        assert view.undefined_rows("tc") == frozenset()
        # Recovery: the next fault-free query recomputes exactly.
        assert view.recover()
        assert not view.stale
        assert (Atom("a"), Atom("d")) in view.rows("tc")

    def test_recompute_failure_without_snapshot_raises(self):
        view = _tc_view(semantics="valid", incremental=False)
        with inject_faults(
            FaultInjector([FaultRule("view.recompute", times=None)])
        ):
            with pytest.raises(InjectedFault):
                view.rows("tc")
        assert not view.stale  # nothing to serve, so no degraded mode

    def test_stale_service_preserves_undefined_rows(self):
        # Regression: the degraded snapshot used to keep only the
        # certainly-true rows, so undefined_rows() answered empty while
        # stale — collapsing the three-valued distinction the valid
        # semantics (Theorem 4.2) turns on.
        prepared = prepare_program(
            "win", "win(X) :- move(X, Y), not win(Y).\n"
        )
        database = (
            Database()
            .add("move", Atom("a"), Atom("b"))
            .add("move", Atom("b"), Atom("c"))
            .add("move", Atom("d"), Atom("d"))
        )
        view = MaterializedView(prepared, database, semantics="valid")
        healthy_true = view.rows("win")
        healthy_undefined = view.undefined_rows("win")
        assert healthy_true == {(Atom("b"),)}
        assert healthy_undefined == {(Atom("d"),)}  # the d→d loop
        view.apply(inserts=[("move", (Atom("c"), Atom("e")))])
        with inject_faults(
            FaultInjector([FaultRule("view.recompute", times=None)])
        ):
            stale_true = view.rows("win")
            stale_undefined = view.undefined_rows("win")
        assert view.stale
        # Both truth statuses of the last healthy model survive.
        assert stale_true == healthy_true
        assert stale_undefined == healthy_undefined

    def test_failed_recovery_stays_degraded(self):
        # Regression: recover() used to mark the view healthy *before*
        # attempting the rebuild, so a failed recovery briefly reported
        # healthy and reset the time-in-degraded clock.
        view = _tc_view(semantics="valid", incremental=False)
        view.rows("tc")
        view.apply(inserts=[("edge", (Atom("c"), Atom("d")))])
        with inject_faults(
            FaultInjector([FaultRule("view.recompute", times=None)])
        ):
            view.rows("tc")
            assert view.stale
            degraded_since = view.metrics._degraded_since
            assert degraded_since is not None
            assert view.recover() is False
            assert view.stale
            # The degraded clock kept running through the whole failed
            # attempt — it was never stopped and restarted.
            assert view.metrics._degraded_since == degraded_since
        assert view.recover() is True
        assert not view.stale


class TestWireProtocol:
    def _serve(self, service, script):
        replies = []
        serve_stream(service, script.splitlines(), replies.append)
        return replies

    def test_repro_errors_carry_wire_codes(self):
        service = QueryService()
        service.register("tc", TC_SOURCE)
        plan = FaultInjector([FaultRule("incremental.component", times=None)])
        with inject_faults(plan):
            replies = self._serve(service, "+tc edge(c, d)\n")
        assert len(replies) == 1
        assert replies[0].startswith("error injected-fault InjectedFault:")

    def test_non_repro_errors_keep_the_legacy_shape(self):
        service = QueryService()
        replies = self._serve(service, "query nope tc\n")
        assert replies[0].startswith("error KeyError:")

    def test_oversized_requests_are_rejected(self):
        service = QueryService()
        service.register("tc", TC_SOURCE)
        replies = []
        serve_stream(
            service,
            ["query tc " + "x" * 100 + "\n", "query tc tc\n"],
            replies.append,
            max_request_bytes=64,
        )
        assert replies[0].startswith("error request-too-large RequestTooLarge:")
        assert replies[-1] == "ok 3 rows"  # the server survived

    def test_stale_views_are_flagged_on_the_wire(self):
        service = QueryService()
        service.register("tc", TC_SOURCE)
        plan = FaultInjector(
            [
                FaultRule("incremental.component", times=None),
                FaultRule("incremental.initialize", times=None),
            ]
        )
        with inject_faults(plan):
            replies = self._serve(service, "+tc edge(c, d)\nquery tc tc\n")
        assert replies[0].startswith("error view-degraded ViewDegraded:")
        assert replies[-1] == "ok 3 rows stale"
        assert "row tc(a, c)" in replies

    def test_stale_answers_are_not_cached(self):
        service = QueryService()
        service.register("tc", TC_SOURCE)
        plan = FaultInjector(
            [
                FaultRule("incremental.component", times=None),
                FaultRule("incremental.initialize", times=None),
            ]
        )
        with inject_faults(plan):
            self._serve(service, "+tc edge(c, d)\nquery tc tc\n")
        view = service.view("tc")
        assert view.recover()
        # A post-recovery query must not see a cached stale answer.
        rows = service.query("tc", "tc")
        assert rows == _expected_tc(view.database)


class TestDatabaseFingerprintInvalidation:
    def test_mutators_invalidate_the_cached_fingerprint(self):
        database = Database().add("edge", *parse_fact_row("a", "b"))
        first = database.fingerprint()
        database.add("edge", *parse_fact_row("b", "c"))
        second = database.fingerprint()
        assert first != second
        database.remove("edge", *parse_fact_row("b", "c"))
        assert database.fingerprint() == first
        database.discard("edge", *parse_fact_row("a", "b"))
        assert database.fingerprint() != first

    def test_discard_of_absent_fact_keeps_fingerprint(self):
        database = Database().add("edge", *parse_fact_row("a", "b"))
        first = database.fingerprint()
        database.discard("edge", *parse_fact_row("z", "z"))
        assert database.fingerprint() == first


def parse_fact_row(*names):
    from repro.relations import Atom

    return tuple(Atom(name) for name in names)
