"""Unit tests: retry_with_backoff."""

import pytest

from repro.robustness import (
    BudgetExceeded,
    Cancelled,
    ReproError,
    retry_with_backoff,
)


class TestRetryWithBackoff:
    def test_returns_first_success(self):
        calls = []
        result = retry_with_backoff(lambda: calls.append(1) or "done")
        assert result == "done"
        assert len(calls) == 1

    def test_retries_transient_failures_with_doubling_delays(self):
        attempts = []
        delays = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise BudgetExceeded("transient")
            return "recovered"

        result = retry_with_backoff(
            flaky, attempts=3, base_delay=0.01, sleep=delays.append
        )
        assert result == "recovered"
        assert len(attempts) == 3
        assert delays == [0.01, 0.02]

    def test_delay_is_capped(self):
        delays = []
        boom = [0]

        def always_fails():
            boom[0] += 1
            raise BudgetExceeded("nope")

        with pytest.raises(BudgetExceeded):
            retry_with_backoff(
                always_fails,
                attempts=6,
                base_delay=0.1,
                max_delay=0.25,
                sleep=delays.append,
            )
        assert boom[0] == 6
        assert max(delays) == 0.25

    def test_cancelled_is_never_retried(self):
        attempts = []

        def cancelled():
            attempts.append(1)
            raise Cancelled("user gave up")

        with pytest.raises(Cancelled):
            retry_with_backoff(cancelled, attempts=5, sleep=lambda _d: None)
        assert len(attempts) == 1

    def test_non_retryable_errors_propagate_immediately(self):
        attempts = []

        def typo():
            attempts.append(1)
            raise KeyError("not a resource problem")

        with pytest.raises(KeyError):
            retry_with_backoff(typo, attempts=5, sleep=lambda _d: None)
        assert len(attempts) == 1

    def test_on_retry_callback_sees_each_failure(self):
        observed = []

        def always_fails():
            raise ReproError("down")

        with pytest.raises(ReproError):
            retry_with_backoff(
                always_fails,
                attempts=3,
                sleep=lambda _d: None,
                on_retry=lambda attempt, exc: observed.append((attempt, str(exc))),
            )
        assert len(observed) == 2  # no callback after the final failure
