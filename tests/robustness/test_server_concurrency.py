"""Bounded concurrent connections and graceful drain on the socket server."""

import socket
import threading
import time

from repro.service import QueryService, serve_unix_socket

SCRIPT = (
    b"register tc stratified tc(X,Y) :- e(X,Y). tc(X,Z) :- tc(X,Y), e(Y,Z). "
    b"e(a,b). e(b,c).\n"
    b"query tc tc\n"
    b"quit\n"
)


def _connect(path, attempts=300):
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    for _ in range(attempts):
        try:
            client.connect(path)
            return client
        except (FileNotFoundError, ConnectionRefusedError):
            time.sleep(0.01)
    raise AssertionError(f"could not connect to {path}")


class TestConcurrentSocketServing:
    def test_connections_are_served_concurrently_and_drained(self, tmp_path):
        path = str(tmp_path / "svc.sock")
        service = QueryService()
        server = threading.Thread(
            target=serve_unix_socket,
            args=(service, path),
            kwargs={"max_connections": 4, "max_concurrent": 2},
        )
        server.start()
        try:
            results = []
            lock = threading.Lock()

            def client_session(index):
                client = _connect(path)
                with client:
                    client.sendall(SCRIPT)
                    reader = client.makefile("r", encoding="utf-8")
                    replies = [line.strip() for line in reader]
                with lock:
                    results.append((index, replies))

            clients = [
                threading.Thread(target=client_session, args=(i,))
                for i in range(4)
            ]
            for thread in clients:
                thread.start()
            for thread in clients:
                thread.join(timeout=10)
        finally:
            server.join(timeout=10)
        # Drain semantics: the server only exits after every accepted
        # connection got its full reply stream.
        assert not server.is_alive()
        assert len(results) == 4
        for _index, replies in results:
            assert any(reply == "ok 3 rows" for reply in replies)
            assert replies[-1] == "ok bye"

    def test_oversized_lines_rejected_on_socket(self, tmp_path):
        path = str(tmp_path / "limits.sock")
        service = QueryService()
        server = threading.Thread(
            target=serve_unix_socket,
            args=(service, path),
            kwargs={"max_connections": 1, "max_request_bytes": 64},
        )
        server.start()
        try:
            client = _connect(path)
            with client:
                client.sendall(b"query tc " + b"x" * 200 + b"\nquit\n")
                reader = client.makefile("r", encoding="utf-8")
                replies = [line.strip() for line in reader]
        finally:
            server.join(timeout=10)
        assert replies[0].startswith("error request-too-large RequestTooLarge:")
        assert replies[-1] == "ok bye"
